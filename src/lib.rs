//! # adaptive-dsm
//!
//! A home-based software Distributed Shared Memory (DSM) with an **adaptive
//! home migration protocol**, reproducing *"A Novel Adaptive Home Migration
//! Protocol in Home-based DSM"* (Fang, Wang, Zhu, Lau — IEEE CLUSTER 2004).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — virtual time, the Hockney communication model, the home
//!   access coefficient (Appendix A of the paper);
//! * [`objspace`] — shared objects, twins, diffs, access states, home
//!   assignment, and the [`prelude::DsmError`] taxonomy;
//! * [`net`] — the cluster fabrics (threaded loopback, deterministic
//!   seeded simulation with fault injection, and real TCP sockets) and
//!   message statistics;
//! * [`protocol`] — the home-based LRC coherence engine and the pluggable
//!   home-migration policy API: the [`prelude::HomeMigrationPolicy`] trait
//!   with built-in impls for the paper's policies (`NoMigration`,
//!   `FixedThreshold`, `AdaptiveThreshold`, JUMP-style `MigrateOnRequest`,
//!   Jackal-style `LazyFlushing`) plus the beyond-the-paper
//!   [`prelude::HysteresisPolicy`] and [`prelude::EwmaWriteRatioPolicy`],
//!   per-object policy overrides, and decision telemetry
//!   ([`prelude::PolicyTelemetry`]);
//! * [`runtime`] — the threaded cluster runtime and the typed GOS API:
//!   the seeded [`prelude::ClusterBuilder`], the handle family
//!   ([`prelude::ArrayHandle`], [`prelude::ScalarHandle`],
//!   [`prelude::Matrix2dHandle`]) and the zero-copy
//!   [`prelude::ReadView`]/[`prelude::WriteView`] guards;
//! * [`apps`] — the paper's workloads (ASP, SOR, Barnes–Hut Nbody, TSP and
//!   the synthetic single-writer benchmark) plus the Zipfian KV serving
//!   workload behind the wall-clock throughput harness.
//!
//! ## Quick start
//!
//! Construction goes through the chainable, seeded cluster builder; object
//! access goes through zero-copy views that borrow the engine's storage in
//! place (`&[T]` / `&mut [T]`), so accesses at an object's home node never
//! copy the payload:
//!
//! ```no_run
//! use adaptive_dsm::prelude::*;
//!
//! // Declare the cluster and its shared objects in one chain. Every node
//! // derives the same object ids, so no handle exchange is needed.
//! let mut builder = Cluster::builder()
//!     .nodes(8)
//!     .migration(MigrationPolicy::adaptive())
//!     .seed(2004)
//!     .default_home(HomeAssignment::Master);
//! let counter = builder.register_array::<u64>("counter", 1);
//!
//! // Run the same closure on every node, exactly like a Java thread
//! // dispatched to each node of the paper's distributed JVM.
//! let report = builder.build().run(move |ctx| {
//!     let lock = LockId::derive("counter.lock");
//!     for _ in 0..100 {
//!         ctx.acquire(lock);
//!         // A scoped write view: `&mut [u64]` borrowed straight from the
//!         // engine's object storage; the twin/diff bookkeeping commits
//!         // when the view drops.
//!         ctx.view_mut(&counter)[0] += 1;
//!         ctx.release(lock);
//!     }
//!     // Misuse is recoverable through the fallible surface:
//!     let bogus: ArrayHandle<u64> = ArrayHandle::lookup("unregistered", 0, 4);
//!     assert!(matches!(ctx.try_view(&bogus), Err(DsmError::UnknownObject { .. })));
//! });
//! println!("virtual time: {}, messages: {}, migrations: {}",
//!          report.execution_time, report.total_messages(), report.migrations());
//! ```
//!
//! After the home of `counter` migrates to its single writer, every further
//! `view_mut` in that loop is a purely local operation on the home copy —
//! the paper's "accesses at the home never communicate", realized with no
//! decode/encode round-trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dsm_apps as apps;
pub use dsm_core as protocol;
pub use dsm_model as model;
pub use dsm_net as net;
pub use dsm_objspace as objspace;
pub use dsm_runtime as runtime;

/// The most commonly used types, re-exported in one place.
pub mod prelude {
    pub use dsm_core::{
        AdaptiveThresholdPolicy, Decision, EwmaWriteRatioPolicy, FixedThresholdPolicy,
        HomeMigrationPolicy, HysteresisPolicy, IntoMigrationPolicy, LazyFlushingPolicy,
        MigrateOnRequestPolicy, MigrationPolicy, NoMigrationPolicy, NotificationMechanism,
        PolicyInputs, PolicyOverrides, PolicyTelemetry, ProtocolConfig,
    };
    pub use dsm_model::{ComputeModel, HockneyModel, NetworkParams, SimDuration, SimTime};
    pub use dsm_net::MsgCategory;
    pub use dsm_objspace::{
        BarrierId, DsmError, DsmResult, HomeAssignment, LockId, NodeId, ObjectId, ObjectRegistry,
    };
    pub use dsm_runtime::{
        ArrayHandle, Cluster, ClusterBuilder, ClusterConfig, ExecutionReport, Matrix2dHandle,
        NodeCtx, ReadView, ScalarHandle, WriteView,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut builder = Cluster::builder()
            .nodes(2)
            .protocol(ProtocolConfig::adaptive())
            .compute(ComputeModel::free())
            .seed(7)
            .default_home(HomeAssignment::Master);
        let handle = builder.register_array::<u64>("facade.test", 4);
        let report = builder.build().run(move |ctx| {
            assert_eq!(ctx.seed(), 7);
            if ctx.is_master() {
                ctx.view_mut(&handle)[0] = 7;
            }
            ctx.barrier(BarrierId(1));
            assert_eq!(ctx.view(&handle)[0], 7);
        });
        assert_eq!(report.num_nodes, 2);
    }

    #[test]
    fn facade_surfaces_typed_errors() {
        let mut builder = Cluster::builder().nodes(1).compute(ComputeModel::free());
        let _known = builder.register_array::<u64>("known", 2);
        builder.build().run(|ctx| {
            let bogus: ArrayHandle<u64> = ArrayHandle::lookup("unknown", 0, 2);
            assert!(matches!(
                ctx.try_view(&bogus),
                Err(DsmError::UnknownObject { .. })
            ));
            let wrong: ArrayHandle<u64> = ArrayHandle::lookup("known", 0, 3);
            assert!(matches!(
                ctx.try_view(&wrong),
                Err(DsmError::SizeMismatch { .. })
            ));
        });
    }
}
