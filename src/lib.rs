//! # adaptive-dsm
//!
//! A home-based software Distributed Shared Memory (DSM) with an **adaptive
//! home migration protocol**, reproducing *"A Novel Adaptive Home Migration
//! Protocol in Home-based DSM"* (Fang, Wang, Zhu, Lau — IEEE CLUSTER 2004).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — virtual time, the Hockney communication model, the home
//!   access coefficient (Appendix A of the paper);
//! * [`objspace`] — shared objects, twins, diffs, access states, home
//!   assignment;
//! * [`net`] — the simulated cluster fabric and message statistics;
//! * [`protocol`] — the home-based LRC coherence engine and the migration
//!   policies (`NoMigration`, `FixedThreshold`, `AdaptiveThreshold`,
//!   `MigrateOnRequest`, `LazyFlushing`);
//! * [`runtime`] — the threaded cluster runtime and the typed GOS API
//!   (`NodeCtx`, `ArrayHandle`, locks, barriers);
//! * [`apps`] — the paper's workloads (ASP, SOR, Barnes–Hut Nbody, TSP and
//!   the synthetic single-writer benchmark).
//!
//! ## Quick start
//!
//! ```no_run
//! use adaptive_dsm::prelude::*;
//!
//! // Declare the shared objects (every node derives the same ids).
//! let mut registry = ObjectRegistry::new();
//! let counter: ArrayHandle<u64> = ArrayHandle::register(
//!     &mut registry, "counter", 0, 1, NodeId::MASTER, HomeAssignment::Master);
//!
//! // Pick a cluster size and a home-migration policy.
//! let config = ClusterConfig::new(8, ProtocolConfig::adaptive());
//!
//! // Run the same closure on every node, exactly like a Java thread
//! // dispatched to each node of the paper's distributed JVM.
//! let report = Cluster::new(config, registry).run(move |ctx| {
//!     let lock = LockId::derive("counter.lock");
//!     for _ in 0..100 {
//!         ctx.synchronized(lock, || ctx.update(&counter, |v| v[0] += 1));
//!     }
//! });
//! println!("virtual time: {}, messages: {}, migrations: {}",
//!          report.execution_time, report.total_messages(), report.migrations());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dsm_apps as apps;
pub use dsm_core as protocol;
pub use dsm_model as model;
pub use dsm_net as net;
pub use dsm_objspace as objspace;
pub use dsm_runtime as runtime;

/// The most commonly used types, re-exported in one place.
pub mod prelude {
    pub use dsm_core::{MigrationPolicy, NotificationMechanism, ProtocolConfig};
    pub use dsm_model::{ComputeModel, HockneyModel, NetworkParams, SimDuration, SimTime};
    pub use dsm_net::MsgCategory;
    pub use dsm_objspace::{
        BarrierId, HomeAssignment, LockId, NodeId, ObjectId, ObjectRegistry,
    };
    pub use dsm_runtime::{ArrayHandle, Cluster, ClusterConfig, ExecutionReport, NodeCtx};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let mut registry = ObjectRegistry::new();
        let handle: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "facade.test",
            0,
            4,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let config = ClusterConfig::new(2, ProtocolConfig::adaptive())
            .with_compute(ComputeModel::free());
        let report = Cluster::new(config, registry).run(move |ctx| {
            if ctx.is_master() {
                ctx.update(&handle, |v| v[0] = 7);
            }
            ctx.barrier(BarrierId(1));
            assert_eq!(ctx.read(&handle)[0], 7);
        });
        assert_eq!(report.num_nodes, 2);
    }
}
