#!/usr/bin/env bash
# Run both benchmark gates locally — the same entry points CI's bench-gate
# and throughput-gate jobs use, sharing one BENCH_PR.json document:
#
#   1. bench_gate — the deterministic modeled gate (fig2/fig3 SOR + ASP and
#      the ablation's synthetic pattern, both flush-batching modes); fails
#      if modeled message counts or modeled time regress >5% against
#      bench/baseline.json.
#   2. throughput --gate — the wall-clock KV serving gate (Zipfian skew,
#      every migration policy); checks behavioural invariants, compares
#      message counts and fingerprints against
#      bench/throughput_baseline.json, and applies a generous ops/sec band.
#
#   scripts/bench_gate.sh                   # check both gates
#   scripts/bench_gate.sh --tolerance 10    # loosen both gates to 10%
#
# To refresh a baseline, run the matching binary directly:
#   cargo run -p dsm-bench --release --bin bench_gate  -- --write-baseline
#   cargo run -p dsm-bench --release --bin throughput -- --gate --write-baseline
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run -p dsm-bench --release --bin bench_gate -- "$@"
cargo run -p dsm-bench --release --bin throughput -- --gate "$@"
