#!/usr/bin/env bash
# Run the benchmark-regression gate locally — the same entry point CI's
# bench-gate job uses. Builds the deterministic gate workloads in release
# mode, writes BENCH_PR.json, and fails if modeled message counts or
# modeled time regress >5% against bench/baseline.json.
#
#   scripts/bench_gate.sh                   # check against the baseline
#   scripts/bench_gate.sh --write-baseline  # refresh bench/baseline.json
#   scripts/bench_gate.sh --tolerance 10    # loosen the gate to 10%
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -p dsm-bench --release --bin bench_gate -- "$@"
