//! Domain example: sweep the whole home-migration policy layer — the
//! paper's set, the related-work baselines (JUMP migrating-home, Jackal
//! lazy flushing) and the beyond-the-paper trait policies (hysteresis,
//! EWMA write-ratio) — on the ASP workload with full decision telemetry,
//! run a **mixed cluster** where per-object overrides give different
//! objects different policies, show the effect of the new-home notification
//! mechanism, and demonstrate what release-time flush batching saves per
//! interval under the paper's start-up-dominated cost model.
//!
//! Run with: `cargo run --release --example policy_playground`

use adaptive_dsm::apps::asp::{self, AspParams};
use adaptive_dsm::apps::sor::{self, SorParams};
use adaptive_dsm::prelude::*;
use std::sync::Arc;

fn main() {
    let params = AspParams::small(96);
    println!("ASP on a {}-vertex graph, 8 nodes\n", params.vertices);

    println!("-- migration policies (forwarding-pointer notification) --");
    let policies: Vec<(&str, Arc<dyn HomeMigrationPolicy>)> = vec![
        ("NoMigration", MigrationPolicy::NoMigration.into_policy()),
        ("FixedThreshold(1)", MigrationPolicy::fixed(1).into_policy()),
        ("FixedThreshold(2)", MigrationPolicy::fixed(2).into_policy()),
        (
            "AdaptiveThreshold",
            MigrationPolicy::adaptive().into_policy(),
        ),
        (
            "JUMP MigrateOnRequest",
            MigrationPolicy::MigrateOnRequest.into_policy(),
        ),
        (
            "Jackal LazyFlushing",
            MigrationPolicy::lazy_flushing().into_policy(),
        ),
        (
            "Hysteresis(1,+2)",
            HysteresisPolicy::default().into_policy(),
        ),
        (
            "EwmaWriteRatio(.5,.8)",
            EwmaWriteRatioPolicy::default().into_policy(),
        ),
    ];
    for (name, policy) in policies {
        let config = Cluster::builder().nodes(8).migration(policy).config();
        let run = asp::run(config, &params);
        let telemetry = run.report.policy_telemetry();
        println!(
            "{name:>22} [{:>7}]: time {:>10}  msgs {:>7}  migrations {:>5}  \
             migrate-backs {:>3}  decisions {:>5}/{:<5}  redirections {:>5}",
            run.report.policy_label,
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.migrations(),
            telemetry.migrate_backs,
            telemetry.decisions_migrate,
            telemetry.decisions_considered,
            run.report.messages(MsgCategory::Redirect),
        );
    }

    // SOR's rows are written by one fixed band owner forever — the lasting
    // single-writer pattern. Every migrating policy relocates the
    // round-robin row homes to their writers here, including the EWMA
    // write-ratio policy (three unbroken remote writes arm it), which the
    // ASP sweep above never triggers because ASP pivots write at home.
    println!("\n-- lasting single-writer pattern (SOR, 4 nodes) --");
    let sweep_params = SorParams::small(64, 4);
    let sweep: Vec<(&str, Arc<dyn HomeMigrationPolicy>)> = vec![
        (
            "AdaptiveThreshold",
            MigrationPolicy::adaptive().into_policy(),
        ),
        (
            "Hysteresis(1,+2)",
            HysteresisPolicy::default().into_policy(),
        ),
        (
            "EwmaWriteRatio(.5,.8)",
            EwmaWriteRatioPolicy::default().into_policy(),
        ),
    ];
    for (name, policy) in sweep {
        let config = Cluster::builder().nodes(4).migration(policy).config();
        let run = sor::run(config, &sweep_params);
        let telemetry = run.report.policy_telemetry();
        println!(
            "{name:>22} [{:>7}]: time {:>10}  msgs {:>7}  migrations {:>5}  \
             decisions {:>4}/{:<4}",
            run.report.policy_label,
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.migrations(),
            telemetry.decisions_migrate,
            telemetry.decisions_considered,
        );
    }

    // A mixed cluster: the default policy is NoMigration, but the "hot"
    // array — repeatedly written by one worker — is overridden per object
    // to the adaptive policy. Only the override migrates: the cold array
    // stays pinned to its initial home, while the hot array's home moves to
    // its single writer and its fault-in/diff traffic disappears.
    println!("\n-- mixed cluster: per-object policy overrides (3 nodes) --");
    let mut builder = Cluster::builder()
        .nodes(3)
        .migration(MigrationPolicy::NoMigration)
        .seed(2004);
    let hot = builder.register_array::<u64>("playground.hot", 32);
    let cold = builder.register_array::<u64>("playground.cold", 32);
    let builder = builder.object_policy(hot.id, MigrationPolicy::adaptive());
    let report = builder.build().run(move |ctx| {
        let lock = LockId::derive("playground.lock");
        for round in 0..24u64 {
            ctx.acquire(lock);
            if ctx.node_id().index() == 1 {
                // One worker hammers both arrays; only `hot` may migrate.
                ctx.view_mut(&hot)[0] += round + 1;
                ctx.view_mut(&cold)[0] += round + 1;
            }
            ctx.release(lock);
        }
    });
    let telemetry = report.policy_telemetry();
    println!(
        "default {:>4}, override AT on `hot`: migrations {:>2} (all from the override)  \
         decisions {}/{}  mean threshold {:.2}",
        report.policy_label,
        report.migrations(),
        telemetry.decisions_migrate,
        telemetry.decisions_considered,
        telemetry.mean_threshold(),
    );

    println!("\n-- notification mechanisms (adaptive threshold) --");
    for (name, mechanism) in [
        (
            "ForwardingPointer",
            NotificationMechanism::ForwardingPointer,
        ),
        ("HomeManager", NotificationMechanism::HomeManager),
        ("Broadcast", NotificationMechanism::Broadcast),
    ] {
        let config = Cluster::builder().nodes(8).notification(mechanism).config();
        let run = asp::run(config, &params);
        println!(
            "{name:>22}: time {:>10}  msgs {:>7}  redirections {:>5}  notifications {:>5}",
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.messages(MsgCategory::Redirect),
            run.report.messages(MsgCategory::HomeNotify)
                + run.report.messages(MsgCategory::HomeLookup),
        );
    }

    // SOR writes a whole band of rows per interval, so each release flushes
    // many diffs at once — the workload the flush batcher exists for. Under
    // the Hockney model every message beyond the first to the same home
    // costs a full start-up time t0 (100 µs on the paper's Fast Ethernet),
    // which is exactly what the per-interval message counts below show
    // batching paying back. NoHM keeps the remote homes (rows stay on their
    // round-robin nodes), so flushes never stop and the saving persists.
    println!("\n-- release-time flush batching (SOR, NoHM, 4 nodes) --");
    let sor_params = SorParams::small(64, 4);
    for (name, batching) in [("unbatched (paper wire)", false), ("batched", true)] {
        let config = Cluster::builder()
            .nodes(4)
            .migration(MigrationPolicy::NoMigration)
            .flush_batching(batching)
            .config();
        let run = sor::run(config, &sor_params);
        // One interval per barrier crossing per node.
        let intervals = run.report.protocol.barriers.max(1);
        let diff_msgs =
            run.report.messages(MsgCategory::Diff) + run.report.messages(MsgCategory::DiffBatch);
        println!(
            "{name:>22}: time {:>10}  diff msgs {:>5} ({:.2}/interval)  \
             batches {:>4}  entries/batch {:.1}",
            format!("{}", run.report.execution_time),
            diff_msgs,
            diff_msgs as f64 / intervals as f64,
            run.report.protocol.batched_flushes,
            if run.report.protocol.batched_flushes > 0 {
                run.report.protocol.batch_entries as f64
                    / run.report.protocol.batched_flushes as f64
            } else {
                0.0
            },
        );
    }
}
