//! Domain example: compare every implemented home-migration policy —
//! including the related-work baselines (JUMP migrating-home, Jackal lazy
//! flushing) — on the ASP workload, show the effect of the new-home
//! notification mechanism, and demonstrate what release-time flush batching
//! saves per interval under the paper's start-up-dominated cost model.
//!
//! Run with: `cargo run --release --example policy_playground`

use adaptive_dsm::apps::asp::{self, AspParams};
use adaptive_dsm::apps::sor::{self, SorParams};
use adaptive_dsm::prelude::*;

fn main() {
    let params = AspParams::small(96);
    println!("ASP on a {}-vertex graph, 8 nodes\n", params.vertices);

    println!("-- migration policies (forwarding-pointer notification) --");
    for (name, policy) in [
        ("NoMigration", MigrationPolicy::NoMigration),
        ("FixedThreshold(1)", MigrationPolicy::fixed(1)),
        ("FixedThreshold(2)", MigrationPolicy::fixed(2)),
        ("AdaptiveThreshold", MigrationPolicy::adaptive()),
        ("JUMP MigrateOnRequest", MigrationPolicy::MigrateOnRequest),
        ("Jackal LazyFlushing", MigrationPolicy::lazy_flushing()),
    ] {
        let config = Cluster::builder().nodes(8).migration(policy).config();
        let run = asp::run(config, &params);
        println!(
            "{name:>22}: time {:>10}  msgs {:>7}  migrations {:>5}  redirections {:>5}",
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.migrations(),
            run.report.messages(MsgCategory::Redirect),
        );
    }

    println!("\n-- notification mechanisms (adaptive threshold) --");
    for (name, mechanism) in [
        (
            "ForwardingPointer",
            NotificationMechanism::ForwardingPointer,
        ),
        ("HomeManager", NotificationMechanism::HomeManager),
        ("Broadcast", NotificationMechanism::Broadcast),
    ] {
        let config = Cluster::builder().nodes(8).notification(mechanism).config();
        let run = asp::run(config, &params);
        println!(
            "{name:>22}: time {:>10}  msgs {:>7}  redirections {:>5}  notifications {:>5}",
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.messages(MsgCategory::Redirect),
            run.report.messages(MsgCategory::HomeNotify)
                + run.report.messages(MsgCategory::HomeLookup),
        );
    }

    // SOR writes a whole band of rows per interval, so each release flushes
    // many diffs at once — the workload the flush batcher exists for. Under
    // the Hockney model every message beyond the first to the same home
    // costs a full start-up time t0 (100 µs on the paper's Fast Ethernet),
    // which is exactly what the per-interval message counts below show
    // batching paying back. NoHM keeps the remote homes (rows stay on their
    // round-robin nodes), so flushes never stop and the saving persists.
    println!("\n-- release-time flush batching (SOR, NoHM, 4 nodes) --");
    let sor_params = SorParams::small(64, 4);
    for (name, batching) in [("unbatched (paper wire)", false), ("batched", true)] {
        let config = Cluster::builder()
            .nodes(4)
            .migration(MigrationPolicy::NoMigration)
            .flush_batching(batching)
            .config();
        let run = sor::run(config, &sor_params);
        // One interval per barrier crossing per node.
        let intervals = run.report.protocol.barriers.max(1);
        let diff_msgs =
            run.report.messages(MsgCategory::Diff) + run.report.messages(MsgCategory::DiffBatch);
        println!(
            "{name:>22}: time {:>10}  diff msgs {:>5} ({:.2}/interval)  \
             batches {:>4}  entries/batch {:.1}",
            format!("{}", run.report.execution_time),
            diff_msgs,
            diff_msgs as f64 / intervals as f64,
            run.report.protocol.batched_flushes,
            if run.report.protocol.batched_flushes > 0 {
                run.report.protocol.batch_entries as f64
                    / run.report.protocol.batched_flushes as f64
            } else {
                0.0
            },
        );
    }
}
