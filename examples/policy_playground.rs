//! Domain example: compare every implemented home-migration policy —
//! including the related-work baselines (JUMP migrating-home, Jackal lazy
//! flushing) — on the ASP workload, and show the effect of the new-home
//! notification mechanism.
//!
//! Run with: `cargo run --release --example policy_playground`

use adaptive_dsm::apps::asp::{self, AspParams};
use adaptive_dsm::prelude::*;

fn main() {
    let params = AspParams::small(96);
    println!("ASP on a {}-vertex graph, 8 nodes\n", params.vertices);

    println!("-- migration policies (forwarding-pointer notification) --");
    for (name, policy) in [
        ("NoMigration", MigrationPolicy::NoMigration),
        ("FixedThreshold(1)", MigrationPolicy::fixed(1)),
        ("FixedThreshold(2)", MigrationPolicy::fixed(2)),
        ("AdaptiveThreshold", MigrationPolicy::adaptive()),
        ("JUMP MigrateOnRequest", MigrationPolicy::MigrateOnRequest),
        ("Jackal LazyFlushing", MigrationPolicy::lazy_flushing()),
    ] {
        let config = Cluster::builder().nodes(8).migration(policy).config();
        let run = asp::run(config, &params);
        println!(
            "{name:>22}: time {:>10}  msgs {:>7}  migrations {:>5}  redirections {:>5}",
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.migrations(),
            run.report.messages(MsgCategory::Redirect),
        );
    }

    println!("\n-- notification mechanisms (adaptive threshold) --");
    for (name, mechanism) in [
        (
            "ForwardingPointer",
            NotificationMechanism::ForwardingPointer,
        ),
        ("HomeManager", NotificationMechanism::HomeManager),
        ("Broadcast", NotificationMechanism::Broadcast),
    ] {
        let config = Cluster::builder().nodes(8).notification(mechanism).config();
        let run = asp::run(config, &params);
        println!(
            "{name:>22}: time {:>10}  msgs {:>7}  redirections {:>5}  notifications {:>5}",
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.messages(MsgCategory::Redirect),
            run.report.messages(MsgCategory::HomeNotify)
                + run.report.messages(MsgCategory::HomeLookup),
        );
    }
}
