//! Domain example: the paper's synthetic benchmark (Figure 4). Sweeps the
//! repetition of the single-writer pattern and shows how the adaptive
//! threshold stays sensitive to lasting patterns while suppressing
//! migration under transient ones.
//!
//! Run with: `cargo run --release --example single_writer_patterns`

use adaptive_dsm::apps::synthetic::{self, SyntheticParams};
use adaptive_dsm::prelude::*;

fn main() {
    let nodes = 5; // one master + four workers
    println!("synthetic single-writer benchmark, {nodes} nodes\n");
    println!(
        "{:>4} {:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "r", "policy", "time", "obj+mig", "diff", "redir", "migr"
    );
    for repetition in [2usize, 4, 8, 16] {
        for (name, protocol) in [
            ("NM", ProtocolConfig::no_migration()),
            ("FT1", ProtocolConfig::fixed_threshold(1)),
            ("FT2", ProtocolConfig::fixed_threshold(2)),
            ("AT", ProtocolConfig::adaptive()),
        ] {
            let params = SyntheticParams {
                repetition,
                total_updates: (repetition * (nodes - 1) * 10) as u64,
                compute_ops: 2_000,
            };
            let config = Cluster::builder().nodes(nodes).protocol(protocol).config();
            let run = synthetic::run(config, &params);
            println!(
                "{:>4} {:>6} {:>12} {:>8} {:>8} {:>8} {:>8}",
                repetition,
                name,
                format!("{}", run.report.execution_time),
                run.report.messages(MsgCategory::ObjReply)
                    + run.report.messages(MsgCategory::ObjReplyMigrate),
                run.report.messages(MsgCategory::Diff),
                run.report.messages(MsgCategory::Redirect),
                run.report.migrations(),
            );
        }
        println!();
    }
}
