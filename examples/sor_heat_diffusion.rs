//! Domain example: red-black SOR heat diffusion on a shared matrix whose
//! rows start on the "wrong" nodes (round-robin homes), demonstrating how
//! the adaptive protocol relocates each row to its writer.
//!
//! Run with: `cargo run --release --example sor_heat_diffusion`

use adaptive_dsm::apps::sor::{self, SorParams};
use adaptive_dsm::prelude::*;

fn main() {
    let params = SorParams::small(128, 8);
    println!(
        "SOR {}x{} for {} iterations on 8 nodes\n",
        params.size, params.size, params.iterations
    );
    for (name, protocol) in [
        ("NoHM", ProtocolConfig::no_migration()),
        ("FT2", ProtocolConfig::fixed_threshold(2)),
        ("AT", ProtocolConfig::adaptive()),
    ] {
        let config = Cluster::builder().nodes(8).protocol(protocol).config();
        let run = sor::run(config, &params);
        println!(
            "{name:>5}: time {:>10}  coherence msgs {:>7}  traffic {:>9} B  migrations {:>5}  checksum {:.6}",
            format!("{}", run.report.execution_time),
            run.report.breakdown_messages(),
            run.report.total_traffic_bytes(),
            run.report.migrations(),
            sor::checksum(&run.result),
        );
    }
    println!("\nThe checksums are identical: home migration never changes results, only costs.");
}
