//! Quick start: a lock-protected shared counter on a simulated 8-node
//! cluster, comparing the adaptive home migration protocol with migration
//! disabled — on the zero-copy view API.
//!
//! Run with: `cargo run --release --example quickstart`

use adaptive_dsm::prelude::*;

fn run_once(policy_name: &str, policy: MigrationPolicy) -> ExecutionReport {
    // The seeded builder owns the registry: declare the cluster shape and
    // its shared objects in one chain.
    let mut builder = Cluster::builder()
        .nodes(8)
        .migration(policy)
        .seed(2004)
        .default_home(HomeAssignment::Master);
    let counter = builder.register_array::<u64>("counter", 1);
    let lock = LockId::derive("counter.lock");

    let report = builder.build().run(move |ctx| {
        // Only the non-master nodes work, like the paper's synthetic
        // benchmark: the counter starts homed on the master, so every update
        // is remote until the home migrates.
        if !ctx.is_master() {
            for _ in 0..40 {
                ctx.acquire(lock);
                // Zero-copy write view: `&mut [u64]` borrowed directly from
                // the engine's storage. Once the home migrates here, this
                // touches the home copy in place — no messages, no copies.
                ctx.view_mut(&counter)[0] += 1;
                ctx.release(lock);
                ctx.compute(5_000);
            }
        }
        ctx.barrier(BarrierId(1));
        let total = ctx.view(&counter)[0];
        assert_eq!(total, 7 * 40, "no update may be lost");
    });

    println!(
        "{policy_name:>6}: virtual time {:>10}, messages {:>6}, traffic {:>8} B, migrations {:>3}",
        format!("{}", report.execution_time),
        report.total_messages(),
        report.total_traffic_bytes(),
        report.migrations()
    );
    report
}

fn main() {
    println!("shared counter, 8 nodes, 7 workers x 40 lock-protected increments\n");
    let adaptive = run_once("AT", MigrationPolicy::adaptive());
    let none = run_once("NoHM", MigrationPolicy::NoMigration);
    println!(
        "\nadaptive home migration removed {:.1}% of the coherence messages",
        100.0 * (1.0 - adaptive.breakdown_messages() as f64 / none.breakdown_messages() as f64)
    );
}
