//! Quick start: a lock-protected shared counter on a simulated 8-node
//! cluster, comparing the adaptive home migration protocol with migration
//! disabled.
//!
//! Run with: `cargo run --release --example quickstart`

use adaptive_dsm::prelude::*;

fn run_once(policy_name: &str, protocol: ProtocolConfig) -> ExecutionReport {
    let mut registry = ObjectRegistry::new();
    let counter: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "counter",
        0,
        1,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("counter.lock");
    let config = ClusterConfig::new(8, protocol);

    let report = Cluster::new(config, registry).run(move |ctx| {
        // Only the non-master nodes work, like the paper's synthetic
        // benchmark: the counter starts homed on the master, so every update
        // is remote until the home migrates.
        if !ctx.is_master() {
            for _ in 0..40 {
                ctx.synchronized(lock, || ctx.update(&counter, |v| v[0] += 1));
                ctx.compute(5_000);
            }
        }
        ctx.barrier(BarrierId(1));
        let total = ctx.read(&counter)[0];
        assert_eq!(total, 7 * 40, "no update may be lost");
    });

    println!(
        "{policy_name:>6}: virtual time {:>10}, messages {:>6}, traffic {:>8} B, migrations {:>3}",
        format!("{}", report.execution_time),
        report.total_messages(),
        report.total_traffic_bytes(),
        report.migrations()
    );
    report
}

fn main() {
    println!("shared counter, 8 nodes, 7 workers x 40 lock-protected increments\n");
    let adaptive = run_once("AT", ProtocolConfig::adaptive());
    let none = run_once("NoHM", ProtocolConfig::no_migration());
    println!(
        "\nadaptive home migration removed {:.1}% of the coherence messages",
        100.0 * (1.0 - adaptive.breakdown_messages() as f64 / none.breakdown_messages() as f64)
    );
}
