//! The *home access coefficient* α (paper Appendix A).
//!
//! The adaptive home migration protocol weighs positive feedback (exclusive
//! home writes, each of which proves that a previous migration eliminated one
//! object fault-in + diff propagation pair) against negative feedback
//! (redirected object requests, each of which costs one unit-sized round
//! trip). Because the two kinds of feedback have different communication
//! costs, the paper scales the positive feedback by the *home access
//! coefficient*:
//!
//! ```text
//!         t(o) + t(d)       (t0 + o/r_inf) + (t0 + d/r_inf)            o + d
//! alpha = ------------  =  ---------------------------------  ≈  2 + ---------
//!            t(1)                    t0 + 1/r_inf                      m_1/2
//! ```
//!
//! where `o` is the object size, `d` the diff size, and `m_1/2 = t0·r_inf`
//! the half-peak message length. The approximation uses `m_1/2 ≫ 1` (true
//! for every real interconnect) so `t(1) ≈ t0`. Both the exact ratio and the
//! approximation are provided; the protocol uses the approximation, matching
//! Equation (4) of the paper, but the exact value is available for the
//! sensitivity ablation.

use crate::network::HockneyModel;

/// Inputs to the coefficient computation for one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoefficientInputs {
    /// Object size `o` in bytes (payload of one object fault-in reply).
    pub object_bytes: u64,
    /// Typical diff size `d` in bytes (payload of one diff propagation).
    /// The paper assumes `o > d`; callers typically use a running average of
    /// observed diff sizes, falling back to the object size.
    pub diff_bytes: u64,
}

impl CoefficientInputs {
    /// Convenience constructor.
    pub fn new(object_bytes: u64, diff_bytes: u64) -> Self {
        CoefficientInputs {
            object_bytes,
            diff_bytes,
        }
    }
}

/// Exact home access coefficient `(t(o) + t(d)) / t(1)` under the given
/// Hockney model.
pub fn home_access_coefficient(model: &HockneyModel, inputs: CoefficientInputs) -> f64 {
    let num = model.time_us(inputs.object_bytes) + model.time_us(inputs.diff_bytes);
    let den = model.time_us(1);
    num / den
}

/// Approximate home access coefficient `2 + (o + d) / m_1/2` (Equation (4)
/// of the paper, valid when `m_1/2 ≫ 1`).
pub fn home_access_coefficient_approx(model: &HockneyModel, inputs: CoefficientInputs) -> f64 {
    2.0 + (inputs.object_bytes + inputs.diff_bytes) as f64 / model.half_peak_length()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkParams;

    fn fe() -> HockneyModel {
        NetworkParams::fast_ethernet().hockney
    }

    #[test]
    fn coefficient_is_at_least_two() {
        // Eliminating a fault-in + diff pair always saves at least two
        // message start-ups, while a redirection costs one.
        let a = home_access_coefficient(&fe(), CoefficientInputs::new(0, 0));
        assert!(a > 1.99 && a < 2.01);
        let approx = home_access_coefficient_approx(&fe(), CoefficientInputs::new(0, 0));
        assert!((approx - 2.0).abs() < 1e-12);
    }

    #[test]
    fn grows_with_object_and_diff_size() {
        let small = home_access_coefficient(&fe(), CoefficientInputs::new(256, 64));
        let large = home_access_coefficient(&fe(), CoefficientInputs::new(16_384, 4_096));
        assert!(large > small);
    }

    #[test]
    fn approximation_close_to_exact_for_fast_ethernet() {
        // m_1/2 for Fast Ethernet is ~1150 bytes >> 1, so the relative error
        // of the approximation must be small.
        for (o, d) in [(128u64, 32u64), (1024, 256), (8192, 2048), (65536, 8192)] {
            let exact = home_access_coefficient(&fe(), CoefficientInputs::new(o, d));
            let approx = home_access_coefficient_approx(&fe(), CoefficientInputs::new(o, d));
            let rel = (exact - approx).abs() / exact;
            assert!(rel < 0.01, "o={o} d={d} exact={exact} approx={approx}");
        }
    }

    #[test]
    fn coefficient_reflects_network_speed() {
        // On a faster network (larger m_1/2) the per-byte benefit of
        // eliminating data transfers shrinks relative to a redirection,
        // so alpha decreases.
        let fe = NetworkParams::fast_ethernet().hockney;
        let my = NetworkParams::myrinet().hockney;
        let inputs = CoefficientInputs::new(8192, 1024);
        let a_fe = home_access_coefficient_approx(&fe, inputs);
        let a_my = home_access_coefficient_approx(&my, inputs);
        assert!(a_fe > a_my);
    }

    #[test]
    fn larger_objects_favor_migration_more() {
        // A 2048-element f64 row (16 KB) should have a clearly larger
        // coefficient than a 128-element row (1 KB) on Fast Ethernet.
        let small = home_access_coefficient_approx(&fe(), CoefficientInputs::new(1024, 512));
        let large = home_access_coefficient_approx(&fe(), CoefficientInputs::new(16_384, 8_192));
        assert!(large > 2.0 * small);
    }
}
