//! The Hockney point-to-point communication model and cluster network
//! parameter presets.
//!
//! The paper's Appendix A characterizes the communication time of a
//! point-to-point operation as the linear function
//!
//! ```text
//! t(m) = t0 + m / r_inf        (microseconds)
//! ```
//!
//! where `t0` is the start-up time in microseconds, `r_inf` the asymptotic
//! bandwidth in MB/s and `m` the message length in bytes. The *half-peak
//! length* `m_1/2 = t0 * r_inf` is the message length at which half of the
//! asymptotic bandwidth is achieved; it appears directly in the adaptive
//! protocol's home access coefficient (see [`crate::coefficient`]).
//!
//! The same model is used by the runtime to advance virtual time for every
//! protocol message, so that the analytical coefficient and the simulated
//! network are consistent with each other — exactly the property the paper
//! relies on.

use crate::time::SimDuration;

/// Parameters of the Hockney model for one interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HockneyModel {
    /// Start-up time `t0` in microseconds (per-message fixed overhead).
    pub startup_us: f64,
    /// Asymptotic bandwidth `r_inf` in MB/s (1 MB = 1e6 bytes here, so this
    /// is equivalently bytes per microsecond).
    pub bandwidth_mb_s: f64,
}

impl HockneyModel {
    /// Create a model from a start-up time (µs) and asymptotic bandwidth (MB/s).
    ///
    /// # Panics
    /// Panics if either parameter is non-positive or non-finite: a zero
    /// bandwidth would make every message take infinite time and a zero
    /// start-up time makes the half-peak length degenerate.
    pub fn new(startup_us: f64, bandwidth_mb_s: f64) -> Self {
        assert!(
            startup_us.is_finite() && startup_us > 0.0,
            "start-up time must be positive and finite, got {startup_us}"
        );
        assert!(
            bandwidth_mb_s.is_finite() && bandwidth_mb_s > 0.0,
            "bandwidth must be positive and finite, got {bandwidth_mb_s}"
        );
        HockneyModel {
            startup_us,
            bandwidth_mb_s,
        }
    }

    /// Communication time `t(m) = t0 + m / r_inf` for a message of `m` bytes,
    /// in microseconds.
    ///
    /// With `r_inf` in MB/s (= bytes/µs), `m / r_inf` is directly in µs.
    pub fn time_us(&self, message_bytes: u64) -> f64 {
        self.startup_us + message_bytes as f64 / self.bandwidth_mb_s
    }

    /// Communication time as a virtual-time duration.
    pub fn latency(&self, message_bytes: u64) -> SimDuration {
        SimDuration::from_micros(self.time_us(message_bytes))
    }

    /// Round-trip time for a request of `req_bytes` answered by a reply of
    /// `reply_bytes`.
    pub fn round_trip(&self, req_bytes: u64, reply_bytes: u64) -> SimDuration {
        self.latency(req_bytes) + self.latency(reply_bytes)
    }

    /// Communication time for `k` logical payloads shipped as **one**
    /// message: a single start-up time `t0` plus the summed byte cost,
    /// `t0 + (Σ mᵢ) / r_inf`. This is the cost the release-time flush
    /// batcher pays for a `DiffBatch`, where sending each payload
    /// individually would cost `Σ (t0 + mᵢ / r_inf)` — `k` start-ups.
    pub fn batched_time_us(&self, entry_bytes: &[u64]) -> f64 {
        self.time_us(entry_bytes.iter().sum())
    }

    /// Start-up time saved by batching `entries` payloads into one message
    /// instead of sending them individually: `(k − 1) · t0`. On interconnects
    /// where `t0` dominates (the paper's Fast Ethernet: `t0 = 100 µs`,
    /// `m_1/2 ≈ 1.2 KB`), this is almost the entire per-message cost of every
    /// flush beyond the first.
    pub fn batch_startup_saving_us(&self, entries: usize) -> f64 {
        self.startup_us * entries.saturating_sub(1) as f64
    }

    /// The half-peak message length `m_1/2 = t0 * r_inf` in bytes: the
    /// message length required to achieve half of the asymptotic bandwidth.
    pub fn half_peak_length(&self) -> f64 {
        self.startup_us * self.bandwidth_mb_s
    }

    /// Effective bandwidth (MB/s) achieved for a message of `m` bytes.
    /// Approaches `bandwidth_mb_s` for large `m` and is exactly half of it at
    /// `m = m_1/2`.
    pub fn effective_bandwidth(&self, message_bytes: u64) -> f64 {
        if message_bytes == 0 {
            return 0.0;
        }
        message_bytes as f64 / self.time_us(message_bytes)
    }
}

/// A named interconnect configuration used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// Point-to-point cost model.
    pub hockney: HockneyModel,
    /// Fixed per-message protocol handling cost charged at the receiver, in
    /// microseconds (message unpacking, handler dispatch). The paper notes
    /// that the adaptive-threshold arithmetic itself is negligible compared
    /// with communication; this constant captures the fixed software
    /// overhead of serving any request.
    pub per_message_handling_us: f64,
    /// Cost charged for a broadcast, expressed as a multiplier on the number
    /// of destination nodes (a well-implemented broadcast is cheaper than N
    /// point-to-point sends; the paper calls broadcast "heavyweight" but
    /// efficient when all nodes need the update).
    pub broadcast_fanout_factor: f64,
}

impl NetworkParams {
    /// Fast Ethernet, matching the paper's testbed (16 × Pentium 4 nodes on a
    /// Foundry Fast-Ethernet switch). TCP/IP over 100 Mb/s Fast Ethernet at
    /// the time had a one-way small-message latency of roughly 100 µs and an
    /// asymptotic bandwidth of ~11.5 MB/s, giving a half-peak length of
    /// ~1.2 KB — comfortably "much greater than 1 byte" as the Appendix
    /// assumes.
    pub fn fast_ethernet() -> Self {
        NetworkParams {
            hockney: HockneyModel::new(100.0, 11.5),
            per_message_handling_us: 8.0,
            broadcast_fanout_factor: 0.6,
        }
    }

    /// Gigabit Ethernet: lower start-up, ~10× bandwidth. Used for
    /// sensitivity/ablation experiments (the coefficient α depends on
    /// `m_1/2`).
    pub fn gigabit_ethernet() -> Self {
        NetworkParams {
            hockney: HockneyModel::new(45.0, 110.0),
            per_message_handling_us: 5.0,
            broadcast_fanout_factor: 0.6,
        }
    }

    /// A low-latency SAN (Myrinet-class) configuration.
    pub fn myrinet() -> Self {
        NetworkParams {
            hockney: HockneyModel::new(9.0, 240.0),
            per_message_handling_us: 2.0,
            broadcast_fanout_factor: 0.5,
        }
    }

    /// An idealised zero-cost-free network used by unit tests that only care
    /// about message *counts*, not time: 1 µs start-up, 1 GB/s.
    pub fn ideal() -> Self {
        NetworkParams {
            hockney: HockneyModel::new(1.0, 1000.0),
            per_message_handling_us: 0.0,
            broadcast_fanout_factor: 1.0,
        }
    }

    /// Per-message handling cost as a duration.
    pub fn handling_cost(&self) -> SimDuration {
        SimDuration::from_micros(self.per_message_handling_us)
    }

    /// Total cost charged to the sender for a broadcast of `message_bytes`
    /// to `destinations` nodes.
    pub fn broadcast_cost(&self, message_bytes: u64, destinations: usize) -> SimDuration {
        let single = self.hockney.time_us(message_bytes);
        SimDuration::from_micros(single * self.broadcast_fanout_factor * destinations as f64)
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams::fast_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_message_costs_startup() {
        let m = HockneyModel::new(100.0, 11.5);
        assert!((m.time_us(0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_linear_in_length() {
        let m = HockneyModel::new(50.0, 10.0);
        let t1 = m.time_us(1_000);
        let t2 = m.time_us(2_000);
        let t3 = m.time_us(3_000);
        assert!(((t2 - t1) - (t3 - t2)).abs() < 1e-9);
        assert!((t1 - (50.0 + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn half_peak_length_matches_definition() {
        // At m = m_1/2 the effective bandwidth is half the asymptotic one.
        let m = HockneyModel::new(100.0, 11.5);
        let half = m.half_peak_length();
        assert!((half - 1150.0).abs() < 1e-9);
        let eff = m.effective_bandwidth(half.round() as u64);
        assert!((eff - m.bandwidth_mb_s / 2.0).abs() < 0.01);
    }

    #[test]
    fn effective_bandwidth_monotone_and_bounded() {
        let m = HockneyModel::new(100.0, 11.5);
        let mut prev = 0.0;
        for bytes in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            let eff = m.effective_bandwidth(bytes);
            assert!(eff > prev, "effective bandwidth must grow with size");
            assert!(eff < m.bandwidth_mb_s, "never exceeds asymptotic bandwidth");
            prev = eff;
        }
        assert_eq!(m.effective_bandwidth(0), 0.0);
    }

    #[test]
    fn batched_send_pays_one_startup() {
        let m = HockneyModel::new(100.0, 11.5);
        let entries = [400u64, 120, 64, 1000];
        let individually: f64 = entries.iter().map(|b| m.time_us(*b)).sum();
        let batched = m.batched_time_us(&entries);
        // One start-up instead of four: the saving is exactly (k-1) * t0.
        let saving = individually - batched;
        assert!((saving - m.batch_startup_saving_us(entries.len())).abs() < 1e-9);
        assert!((saving - 300.0).abs() < 1e-9);
        // Byte cost is preserved — batching only removes start-ups.
        assert!((batched - (100.0 + 1584.0 / 11.5)).abs() < 1e-9);
        // Degenerate batches save nothing.
        assert_eq!(m.batch_startup_saving_us(1), 0.0);
        assert_eq!(m.batch_startup_saving_us(0), 0.0);
        assert!((m.batched_time_us(&[64]) - m.time_us(64)).abs() < 1e-12);
    }

    #[test]
    fn latency_and_round_trip() {
        let m = HockneyModel::new(10.0, 100.0);
        // 1000 bytes at 100 MB/s = 10 us, plus 10 us startup = 20 us.
        assert_eq!(m.latency(1_000).as_nanos(), 20_000);
        // round trip of two unit-size messages ~ 2 * t0
        let rt = m.round_trip(1, 1);
        assert!((rt.as_micros() - 20.02).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "start-up time must be positive")]
    fn rejects_zero_startup() {
        let _ = HockneyModel::new(0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = HockneyModel::new(10.0, 0.0);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let fe = NetworkParams::fast_ethernet();
        let ge = NetworkParams::gigabit_ethernet();
        let my = NetworkParams::myrinet();
        let bytes = 4096;
        assert!(fe.hockney.time_us(bytes) > ge.hockney.time_us(bytes));
        assert!(ge.hockney.time_us(bytes) > my.hockney.time_us(bytes));
    }

    #[test]
    fn fast_ethernet_half_peak_is_much_larger_than_one_byte() {
        // The Appendix's approximation requires m_1/2 >> 1.
        assert!(NetworkParams::fast_ethernet().hockney.half_peak_length() > 100.0);
    }

    #[test]
    fn broadcast_cost_scales_with_destinations() {
        let p = NetworkParams::fast_ethernet();
        let one = p.broadcast_cost(64, 1);
        let eight = p.broadcast_cost(64, 8);
        let diff = (eight.as_nanos() as i64 - one.as_nanos() as i64 * 8).abs();
        assert!(
            diff <= 8,
            "broadcast cost should scale ~linearly, diff={diff}ns"
        );
    }

    #[test]
    fn default_is_fast_ethernet() {
        assert_eq!(NetworkParams::default(), NetworkParams::fast_ethernet());
    }
}
