//! # dsm-model — analytical models for the DSM cluster substrate
//!
//! This crate contains the *analytical* pieces of the reproduction of
//! "A Novel Adaptive Home Migration Protocol in Home-based DSM"
//! (Fang, Wang, Zhu, Lau — IEEE CLUSTER 2004):
//!
//! * [`SimTime`] / [`SimDuration`] — the virtual-time base used by the whole
//!   workspace. The paper reports wall-clock execution times measured on a
//!   16-node Pentium-4 / Fast-Ethernet cluster; we replace the physical
//!   cluster with per-node logical clocks advanced by the models below.
//! * [`HockneyModel`] — the point-to-point communication cost model
//!   `t(m) = t0 + m / r_inf` used by the paper's Appendix A to derive the
//!   *home access coefficient*. We use the same model both to advance
//!   virtual time on every message and to compute the coefficient.
//! * [`ComputeModel`] — a simple per-operation computation cost model used to
//!   charge application compute phases to the virtual clock, so that the
//!   communication/computation ratio (and therefore the *shape* of the
//!   paper's figures) is preserved.
//! * [`home_access_coefficient`] — Appendix A of the paper: the overhead
//!   ratio of one eliminated (object fault-in + diff propagation) pair to one
//!   home redirection.
//!
//! Everything in this crate is deterministic and free of I/O so that the
//! experiment harness produces reproducible numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coefficient;
pub mod compute;
pub mod network;
pub mod time;

pub use coefficient::{home_access_coefficient, home_access_coefficient_approx, CoefficientInputs};
pub use compute::ComputeModel;
pub use network::{HockneyModel, NetworkParams};
pub use time::{SimDuration, SimTime};
