//! Virtual time.
//!
//! The runtime keeps one logical clock per simulated cluster node. Clocks are
//! expressed in integer nanoseconds so that virtual-time arithmetic is exact
//! and reproducible; helper constructors/accessors convert to and from the
//! microsecond/millisecond/second units that the paper's figures use.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in nanoseconds since the start of the
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Construct from microseconds (the unit of the Hockney model).
    pub fn from_micros(micros: f64) -> Self {
        SimTime((micros * 1_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds since the experiment origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the experiment origin.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since the experiment origin.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since the experiment origin (the unit of the paper's Figure 2).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants. Used to merge clocks when a message with a
    /// later send+latency timestamp arrives at a node.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from microseconds.
    pub fn from_micros(micros: f64) -> Self {
        SimDuration((micros * 1_000.0).round().max(0.0) as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(millis: f64) -> Self {
        SimDuration((millis * 1_000_000.0).round().max(0.0) as u64)
    }

    /// Construct from seconds.
    pub fn from_secs(secs: f64) -> Self {
        SimDuration((secs * 1_000_000_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Multiply by an integer count (e.g. `n` identical messages).
    pub fn times(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).round().max(0.0) as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis())
        } else {
            write!(f, "{:.3}us", self.as_micros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_origin() {
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
        assert_eq!(SimDuration::ZERO.as_nanos(), 0);
    }

    #[test]
    fn micros_roundtrip() {
        let t = SimTime::from_micros(12.5);
        assert_eq!(t.as_nanos(), 12_500);
        assert!((t.as_micros() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(10.0) + SimDuration::from_micros(5.0);
        assert_eq!(t.as_nanos(), 15_000);
    }

    #[test]
    fn time_difference_saturates() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!((b - a).as_nanos(), 150);
        assert_eq!((a - b).as_nanos(), 0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn max_picks_later_instant() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(250);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_micros(3.0);
        assert_eq!((d * 4).as_micros(), 12.0);
        assert_eq!((d * 2.5).as_nanos(), 7_500);
        assert_eq!((d / 3).as_micros(), 1.0);
        assert_eq!(d.times(3).as_micros(), 9.0);
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total.as_micros(), 9.0);
    }

    #[test]
    fn unit_conversions() {
        let d = SimDuration::from_secs(1.5);
        assert!((d.as_millis() - 1500.0).abs() < 1e-9);
        assert!((d.as_micros() - 1_500_000.0).abs() < 1e-9);
        let d2 = SimDuration::from_millis(2.0);
        assert_eq!(d2.as_nanos(), 2_000_000);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(SimDuration::from_micros(-5.0).as_nanos(), 0);
        assert_eq!(SimTime::from_micros(-5.0).as_nanos(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(5.0)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5.0)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5.0)), "5.000s");
    }

    #[test]
    fn ordering_is_by_instant() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert!(SimDuration::from_nanos(1) < SimDuration::from_nanos(2));
    }
}
