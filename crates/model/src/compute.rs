//! Per-node computation cost model.
//!
//! The paper's applications interleave computation (matrix updates, force
//! calculations, tour expansion) with DSM communication. Because we replace
//! the physical 2 GHz Pentium-4 nodes with virtual clocks, compute phases
//! must be charged analytically: the runtime exposes
//! `NodeCtx::compute(model.ops(n))` and each application charges a cost
//! proportional to the work it actually performs (which it also *really*
//! performs, so results can be verified against sequential references).
//!
//! Only the *ratio* of computation to communication matters for the shape of
//! the paper's figures; the default model approximates a 2 GHz superscalar
//! processor sustaining roughly one useful arithmetic operation per
//! nanosecond on these memory-bound kernels.

use crate::time::SimDuration;

/// Linear computation cost model: `cost(n_ops) = n_ops * ns_per_op`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeModel {
    /// Cost of one abstract application operation, in nanoseconds.
    pub ns_per_op: f64,
}

impl ComputeModel {
    /// A model approximating the paper's 2 GHz Pentium 4 on memory-bound
    /// kernels (~1 ns per useful operation).
    pub fn pentium4_2ghz() -> Self {
        ComputeModel { ns_per_op: 1.0 }
    }

    /// A model where computation is free; useful for tests and for isolating
    /// pure communication behaviour.
    pub fn free() -> Self {
        ComputeModel { ns_per_op: 0.0 }
    }

    /// Build a model from an explicit per-operation cost in nanoseconds.
    ///
    /// # Panics
    /// Panics if the cost is negative or not finite.
    pub fn new(ns_per_op: f64) -> Self {
        assert!(
            ns_per_op.is_finite() && ns_per_op >= 0.0,
            "per-op cost must be finite and non-negative, got {ns_per_op}"
        );
        ComputeModel { ns_per_op }
    }

    /// Cost of `n` abstract operations.
    pub fn ops(&self, n: u64) -> SimDuration {
        SimDuration::from_nanos((n as f64 * self.ns_per_op).round() as u64)
    }

    /// Cost of touching `n` f64 elements with a small constant amount of
    /// arithmetic each (the common case for SOR/ASP inner loops): charged as
    /// `per_element_ops` operations per element.
    pub fn elements(&self, n: u64, per_element_ops: u64) -> SimDuration {
        self.ops(n.saturating_mul(per_element_ops))
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        ComputeModel::pentium4_2ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        assert_eq!(ComputeModel::free().ops(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn default_model_is_one_ns_per_op() {
        let m = ComputeModel::default();
        assert_eq!(m.ops(1_000).as_nanos(), 1_000);
        assert_eq!(m, ComputeModel::pentium4_2ghz());
    }

    #[test]
    fn cost_scales_linearly() {
        let m = ComputeModel::new(2.5);
        assert_eq!(m.ops(4).as_nanos(), 10);
        assert_eq!(m.elements(10, 3).as_nanos(), 75);
    }

    #[test]
    fn elements_helper_multiplies() {
        let m = ComputeModel::new(1.0);
        assert_eq!(m.elements(2048, 4).as_nanos(), 8192);
    }

    #[test]
    #[should_panic(expected = "per-op cost must be finite and non-negative")]
    fn rejects_negative_cost() {
        let _ = ComputeModel::new(-1.0);
    }
}
