//! The application-facing node context.
//!
//! A [`NodeCtx`] is handed to the application closure on every node. It is
//! the analogue of the paper's GOS runtime interface as seen by a Java
//! thread: transparent object access (fault-ins, twins and diffs happen
//! behind the scenes), `synchronized`-style locking, barriers, and a hook to
//! charge modelled computation time.
//!
//! ## Access model
//!
//! The primary surface is the **zero-copy view API**: [`NodeCtx::view`]
//! returns a [`ReadView`] and [`NodeCtx::view_mut`] a [`WriteView`], scoped
//! guards that `Deref` to `&[T]` / `&mut [T]` borrowed straight from the
//! engine's object storage. At the home node an access through a view
//! touches the home copy in place — "accesses at the home never
//! communicate", with no whole-object decode/encode round-trip. Dropping a
//! `WriteView` arms the twin/diff bookkeeping so the interval's next
//! release flushes exactly one diff for the object.
//!
//! Every access has a **fallible form** (`try_view`, `try_view_mut`,
//! `try_acquire`, `try_release`, `try_barrier`) returning
//! [`DsmResult`]; protocol misuse — unknown objects, size-mismatched
//! handles, conflicting views, synchronizing with live views — surfaces as
//! a typed [`DsmError`] instead of tearing down the node thread. The
//! panicking short forms (`view`, `acquire`, ...) are thin wrappers kept
//! for application code where misuse is a bug.

use crate::handle::ArrayHandle;
use crate::node::{dispatch_barrier_release, dispatch_lock_grant, NodeShared};
use crate::view::{ReadView, WriteView};
use dsm_core::sync::{BarrierOutcome, LockAcquireOutcome};
use dsm_core::{
    group_flush_plans, AccessPlan, DiffBatchEntry, DiffEntryStatus, FlushBatch, FlushPlan,
    ProtocolMsg,
};
use dsm_model::{SimDuration, SimTime};
use dsm_objspace::{BarrierId, DsmError, DsmResult, Element, LockId, NodeId, ObjectData, ObjectId};
use dsm_util::SmallRng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Node of the cluster that hosts the distributed lock and barrier managers.
/// The paper's applications start on one node and send all distributed
/// synchronization there.
const SYNC_MANAGER: NodeId = NodeId::MASTER;

/// Live-view bookkeeping: a positive count of shared views, or -1 for the
/// exclusive write view.
const WRITER: isize = -1;

/// The per-node application context.
pub struct NodeCtx {
    shared: Arc<NodeShared>,
    barrier_epochs: RefCell<HashMap<BarrierId, u64>>,
    /// Objects with live views in this context (see [`WRITER`]). Guards
    /// same-thread aliasing so a conflict surfaces as a typed error instead
    /// of a lock-up on the payload lease.
    active_views: RefCell<HashMap<ObjectId, isize>>,
}

impl NodeCtx {
    pub(crate) fn new(shared: Arc<NodeShared>) -> Self {
        NodeCtx {
            shared,
            barrier_epochs: RefCell::new(HashMap::new()),
            active_views: RefCell::new(HashMap::new()),
        }
    }

    /// This node's identity.
    pub fn node_id(&self) -> NodeId {
        self.shared.node
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.shared.num_nodes
    }

    /// Whether this node is the master (the node the application starts on).
    pub fn is_master(&self) -> bool {
        self.shared.node == NodeId::MASTER
    }

    /// The cluster's configured seed (see `ClusterBuilder::seed`).
    pub fn seed(&self) -> u64 {
        self.shared.seed
    }

    /// A deterministic per-node random generator derived from the cluster
    /// seed: every run of the same configuration sees the same streams.
    pub fn node_rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.shared.seed ^ (0x9E37 + self.shared.node.0 as u64 * 0x1_0001))
    }

    /// Current virtual time at this node.
    pub fn now(&self) -> SimTime {
        self.shared.clock.now()
    }

    /// Charge `ops` abstract operations of computation to the virtual clock.
    pub fn compute(&self, ops: u64) {
        let cost = self.shared.compute.ops(ops);
        self.shared.clock.advance(cost);
    }

    /// Charge computation for touching `elements` elements with
    /// `ops_per_element` operations each.
    pub fn compute_elements(&self, elements: u64, ops_per_element: u64) {
        let cost = self.shared.compute.elements(elements, ops_per_element);
        self.shared.clock.advance(cost);
    }

    /// Charge an explicit virtual duration (used by workloads that model
    /// phases not expressed in element counts).
    pub fn charge(&self, duration: SimDuration) {
        self.shared.clock.advance(duration);
    }

    // ------------------------------------------------------------------
    // Shared object access — zero-copy views
    // ------------------------------------------------------------------

    /// Validate a handle against the registry: the object must be known and
    /// the handle's element count must agree with the registered payload
    /// size (a `lookup` with the wrong length would otherwise corrupt
    /// element decoding).
    fn validate_handle<T: Element>(&self, handle: &ArrayHandle<T>) -> DsmResult<()> {
        handle.validate(&self.shared.registry)
    }

    /// Take a zero-copy read view of the object (faulting it in if needed).
    ///
    /// Multiple read views — of the same or different objects — may be live
    /// at once; a read view only conflicts with a live write view of the
    /// same object.
    pub fn try_view<'ctx, T: Element>(
        &'ctx self,
        handle: &ArrayHandle<T>,
    ) -> DsmResult<ReadView<'ctx, T>> {
        self.validate_handle(handle)?;
        let obj = handle.id;
        if self.active_views.borrow().get(&obj).copied().unwrap_or(0) < 0 {
            return Err(DsmError::ViewConflict { obj });
        }
        // Plan, then take the payload guard *atomically* under the shard
        // lock: the server thread may migrate the home away between the two
        // steps, in which case the checked lease refuses and we re-plan
        // (faulting the object back in if needed).
        let guard = loop {
            self.ensure_readable(obj)?;
            if let Some(guard) = self.shared.engine.try_lease_read(obj) {
                break guard;
            }
        };
        *self.active_views.borrow_mut().entry(obj).or_insert(0) += 1;
        Ok(ReadView::new(self, obj, guard))
    }

    /// Take a zero-copy read view, panicking on protocol misuse.
    ///
    /// # Panics
    /// Panics on any [`DsmError`] (unknown object, size mismatch, conflict
    /// with a live write view).
    pub fn view<'ctx, T: Element>(&'ctx self, handle: &ArrayHandle<T>) -> ReadView<'ctx, T> {
        self.try_view(handle)
            .unwrap_or_else(|e| panic!("view failed: {e}"))
    }

    /// Take a zero-copy write view of the object (faulting it in and arming
    /// the twin/diff bookkeeping as needed). Writes through the view become
    /// the interval's diff when the interval releases.
    ///
    /// A write view is exclusive: any live view of the same object in this
    /// context makes this fail with [`DsmError::ViewConflict`].
    pub fn try_view_mut<'ctx, T: Element>(
        &'ctx self,
        handle: &ArrayHandle<T>,
    ) -> DsmResult<WriteView<'ctx, T>> {
        self.validate_handle(handle)?;
        let obj = handle.id;
        if self.active_views.borrow().get(&obj).copied().unwrap_or(0) != 0 {
            return Err(DsmError::ViewConflict { obj });
        }
        // As in `try_view`: re-validate writability and take the write guard
        // under the shard lock, re-planning if a concurrent migration
        // snatched the copy between the plan and the lease (the re-plan
        // re-arms the twin/diff bookkeeping before we write).
        let guard = loop {
            self.ensure_writable(obj)?;
            if let Some(guard) = self.shared.engine.try_lease_write(obj) {
                break guard;
            }
        };
        self.active_views.borrow_mut().insert(obj, WRITER);
        Ok(WriteView::new(self, obj, guard))
    }

    /// Take a zero-copy write view, panicking on protocol misuse.
    ///
    /// # Panics
    /// Panics on any [`DsmError`].
    pub fn view_mut<'ctx, T: Element>(&'ctx self, handle: &ArrayHandle<T>) -> WriteView<'ctx, T> {
        self.try_view_mut(handle)
            .unwrap_or_else(|e| panic!("view_mut failed: {e}"))
    }

    /// Unregister a dropped view (called from the guards' `Drop`).
    pub(crate) fn release_view(&self, obj: ObjectId, writer: bool) {
        let mut views = self.active_views.borrow_mut();
        let count = views.get_mut(&obj).expect("dropping an untracked view");
        if writer {
            debug_assert_eq!(*count, WRITER, "write view tracked as readers");
            views.remove(&obj);
        } else {
            debug_assert!(*count > 0, "read view tracked as writer");
            *count -= 1;
            if *count == 0 {
                views.remove(&obj);
            }
        }
    }

    /// Called from the views' trailing drop signal once a payload lease has
    /// truly been released (strictly after [`Self::release_view`] and after
    /// the guard itself dropped): re-arms the executor's deferred server
    /// work for this node. No-op outside executor mode.
    pub(crate) fn lease_released(&self) {
        self.shared.view_lease_released();
    }

    /// Number of live write views in this context.
    fn live_write_views(&self) -> usize {
        self.active_views
            .borrow()
            .values()
            .filter(|count| **count < 0)
            .count()
    }

    /// Number of live views in this context.
    pub fn live_views(&self) -> usize {
        self.active_views
            .borrow()
            .values()
            .map(|c| c.unsigned_abs())
            .sum()
    }

    /// Fail with [`DsmError::ViewsOutstanding`] if any view is live: a
    /// synchronization operation must see the interval's complete write
    /// set, and a held payload lease would stall the protocol server while
    /// this thread blocks on the network.
    fn ensure_quiescent(&self) -> DsmResult<()> {
        let count = self.live_views();
        if count > 0 {
            return Err(DsmError::ViewsOutstanding { count });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Shared object access — owning conveniences over views
    // ------------------------------------------------------------------

    /// Seed the initial contents of a shared object (fallible form). Must
    /// be called on every node *before* any node accesses the object
    /// through the protocol (typically followed by a [`Self::barrier`]);
    /// only the object's home actually stores the data, and no messages are
    /// exchanged because every node computes identical contents.
    pub fn try_bootstrap<T: Element>(
        &self,
        handle: &ArrayHandle<T>,
        values: &[T],
    ) -> DsmResult<()> {
        self.validate_handle(handle)?;
        // A live view of the object holds its payload lease; overwriting
        // underneath it would spin forever inside the engine.
        if self
            .active_views
            .borrow()
            .get(&handle.id)
            .copied()
            .unwrap_or(0)
            != 0
        {
            return Err(DsmError::ViewConflict { obj: handle.id });
        }
        assert_eq!(values.len(), handle.len, "bootstrap length mismatch");
        self.shared
            .engine
            .bootstrap_object(handle.id, ObjectData::from_elements(values));
        Ok(())
    }

    /// Seed the initial contents of a shared object, panicking on misuse.
    ///
    /// # Panics
    /// Panics on any [`DsmError`] (unknown object, size mismatch, live view
    /// of the object).
    pub fn bootstrap<T: Element>(&self, handle: &ArrayHandle<T>, values: &[T]) {
        self.try_bootstrap(handle, values)
            .unwrap_or_else(|e| panic!("bootstrap failed: {e}"));
    }

    /// Read the whole object into an owned vector (faulting it in if
    /// needed). Prefer [`Self::view`] on hot paths.
    pub fn read<T: Element>(&self, handle: &ArrayHandle<T>) -> Vec<T> {
        self.view(handle).to_vec()
    }

    /// Read a single element (faulting the object in if needed).
    pub fn read_element<T: Element>(&self, handle: &ArrayHandle<T>, index: usize) -> T {
        self.try_read_element(handle, index)
            .unwrap_or_else(|e| panic!("read_element failed: {e}"))
    }

    /// Fallible [`Self::read_element`].
    pub fn try_read_element<T: Element>(
        &self,
        handle: &ArrayHandle<T>,
        index: usize,
    ) -> DsmResult<T> {
        let view = self.try_view(handle)?;
        view.as_slice()
            .get(index)
            .copied()
            .ok_or(DsmError::IndexOutOfBounds {
                obj: handle.id,
                index,
                len: handle.len,
            })
    }

    /// Read-modify-write the object's elements in place through a closure
    /// (a scoped [`Self::view_mut`]).
    pub fn update<T: Element>(&self, handle: &ArrayHandle<T>, f: impl FnOnce(&mut [T])) {
        let mut view = self.view_mut(handle);
        f(&mut view);
    }

    /// Overwrite the whole object with new contents.
    pub fn write_all<T: Element>(&self, handle: &ArrayHandle<T>, values: &[T]) {
        assert_eq!(values.len(), handle.len, "write length mismatch");
        self.view_mut(handle).copy_from_slice(values);
    }

    /// Overwrite a single element.
    pub fn write_element<T: Element>(&self, handle: &ArrayHandle<T>, index: usize, value: T) {
        assert!(index < handle.len, "element index out of range");
        self.view_mut(handle)[index] = value;
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Acquire a distributed lock (entering a `synchronized` block). Opens a
    /// new consistency interval: cached copies are conservatively
    /// invalidated, exactly as the paper's Java-consistency GOS does.
    ///
    /// Fails with [`DsmError::ViewsOutstanding`] if object views are live.
    pub fn try_acquire(&self, lock: LockId) -> DsmResult<()> {
        self.ensure_quiescent()?;
        let node = self.shared.node;
        if SYNC_MANAGER == node {
            let req = self.shared.new_req();
            let rx = self.shared.register_pending(req);
            let outcome = self.shared.engine.lock_acquire(lock, node, req);
            match outcome {
                LockAcquireOutcome::Granted => {
                    // Nobody will ever send the grant; complete it ourselves
                    // so the pending table stays clean.
                    self.shared
                        .deliver_local(req, ProtocolMsg::LockGrant { req, lock });
                }
                LockAcquireOutcome::Queued => {}
            }
            let reply = self.shared.wait_reply(&rx);
            self.shared.clock.merge(reply.arrival);
        } else {
            let req = self.shared.new_req();
            let reply = self.shared.request(
                SYNC_MANAGER,
                req,
                ProtocolMsg::LockAcquire {
                    req,
                    lock,
                    requester: node,
                },
            );
            assert!(
                matches!(reply, ProtocolMsg::LockGrant { .. }),
                "unexpected reply to lock acquire: {reply:?}"
            );
        }
        self.shared.engine.note_lock_acquire();
        self.shared.engine.begin_interval();
        Ok(())
    }

    /// Acquire a distributed lock, panicking on misuse.
    ///
    /// # Panics
    /// Panics if object views are live (see [`Self::try_acquire`]).
    pub fn acquire(&self, lock: LockId) {
        self.try_acquire(lock)
            .unwrap_or_else(|e| panic!("acquire failed: {e}"));
    }

    /// Release a distributed lock (leaving a `synchronized` block). All
    /// local writes of the interval are flushed to their homes (diff
    /// propagation) before the lock is handed back.
    ///
    /// Fails with [`DsmError::ViewsOutstanding`] if object views are live.
    pub fn try_release(&self, lock: LockId) -> DsmResult<()> {
        self.ensure_quiescent()?;
        self.flush_interval();
        let node = self.shared.node;
        if SYNC_MANAGER == node {
            let outcome = self.shared.engine.lock_release(lock, node);
            if let Some((next, req)) = outcome.grant_next {
                dispatch_lock_grant(&self.shared, lock, next, req);
            }
        } else if self.shared.fault.is_some() {
            // Under a lossy fabric the release must survive a drop (a lost
            // release wedges every later acquirer of the lock), so it is
            // tracked and retransmitted until the manager acknowledges it.
            let req = self.shared.new_req();
            self.shared.send_tracked(
                SYNC_MANAGER,
                req,
                ProtocolMsg::LockRelease {
                    lock,
                    holder: node,
                    req,
                },
            );
        } else {
            // Lossless fabrics keep the paper-shaped fire-and-forget
            // release; `ReqId(0)` means "no ack expected".
            self.shared.send(
                SYNC_MANAGER,
                ProtocolMsg::LockRelease {
                    lock,
                    holder: node,
                    req: dsm_core::ReqId(0),
                },
            );
        }
        Ok(())
    }

    /// Release a distributed lock, panicking on misuse.
    ///
    /// # Panics
    /// Panics if object views are live (see [`Self::try_release`]).
    pub fn release(&self, lock: LockId) {
        self.try_release(lock)
            .unwrap_or_else(|e| panic!("release failed: {e}"));
    }

    /// Run `f` inside a `synchronized` block on `lock`.
    pub fn synchronized<R>(&self, lock: LockId, f: impl FnOnce() -> R) -> R {
        self.acquire(lock);
        let result = f();
        self.release(lock);
        result
    }

    /// Wait at a global barrier (all nodes participate). Acts as a release
    /// (local writes flushed) followed by an acquire (cached copies
    /// invalidated), exactly like the barriers the paper's iterative
    /// applications are built around.
    ///
    /// Fails with [`DsmError::ViewsOutstanding`] if object views are live.
    pub fn try_barrier(&self, barrier: BarrierId) -> DsmResult<()> {
        self.ensure_quiescent()?;
        self.flush_interval();
        let node = self.shared.node;
        let epoch = {
            let mut epochs = self.barrier_epochs.borrow_mut();
            let e = epochs.entry(barrier).or_insert(0);
            let current = *e;
            *e += 1;
            current
        };
        let req = self.shared.new_req();
        if SYNC_MANAGER == node {
            let rx = self.shared.register_pending(req);
            let outcome = self.shared.engine.barrier_arrive(barrier, node, req);
            if let BarrierOutcome::Complete {
                waiters,
                epoch: done,
            } = outcome
            {
                dispatch_barrier_release(&self.shared, barrier, done, waiters);
            }
            let reply = self.shared.wait_reply(&rx);
            self.shared.clock.merge(reply.arrival);
        } else {
            let reply = self.shared.request(
                SYNC_MANAGER,
                req,
                ProtocolMsg::BarrierArrive {
                    req,
                    barrier,
                    node,
                    epoch,
                },
            );
            assert!(
                matches!(reply, ProtocolMsg::BarrierRelease { .. }),
                "unexpected reply to barrier arrive: {reply:?}"
            );
        }
        self.shared.engine.note_barrier();
        self.shared.engine.begin_interval();
        Ok(())
    }

    /// Wait at a global barrier, panicking on misuse.
    ///
    /// # Panics
    /// Panics if object views are live (see [`Self::try_barrier`]).
    pub fn barrier(&self, barrier: BarrierId) {
        self.try_barrier(barrier)
            .unwrap_or_else(|e| panic!("barrier failed: {e}"));
    }

    // ------------------------------------------------------------------
    // Protocol introspection (tests and invariant checks)
    // ------------------------------------------------------------------

    /// Whether this node is currently the home of the object — protocol
    /// introspection for tests and invariant checks (e.g. "exactly one node
    /// is home at any barrier").
    pub fn is_home<T: Element>(&self, handle: &ArrayHandle<T>) -> bool {
        self.shared.engine.is_home(handle.id)
    }

    /// A snapshot of the object's migration bookkeeping if this node is its
    /// home, `None` otherwise. Exposes the policy-owned scratch and the
    /// previous-home marker, so tests can assert that policy state survives
    /// a home handoff byte-for-byte.
    pub fn migration_state<T: Element>(
        &self,
        handle: &ArrayHandle<T>,
    ) -> Option<dsm_core::MigrationState> {
        self.shared.engine.migration_state(handle.id)
    }

    /// A live snapshot of this node's protocol counters (merged across
    /// engine shards). Counters recorded on the requester side — lock
    /// acquires, barriers, `redirections_suffered` — only advance during
    /// this node's own operations, so sampling them between operations
    /// attributes activity to windows race-free; home-side counters
    /// (`redirections_served`, migrations in/out) can move whenever a peer
    /// makes progress.
    pub fn protocol_stats(&self) -> dsm_core::ProtocolStats {
        self.shared.engine.stats()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Upper bound on redirection hops before declaring the chain broken.
    /// Epoch-guarded hints make chains monotone (each hop strictly newer),
    /// so the bound only trips on a genuine protocol bug; it is generous
    /// because concurrent migrations can legitimately lengthen a chase.
    fn redirect_limit(&self) -> u32 {
        self.shared.num_nodes as u32 * 2 + 16
    }

    /// Refuse to block on the network while write views are live: the
    /// remote home's server would defer behind our write lease while we
    /// wait for its reply, and two nodes doing this to each other would
    /// deadlock. Read views are safe to hold across a fetch (serving a
    /// fault-in only needs a shared payload lock).
    fn ensure_fetchable(&self, obj: ObjectId) -> DsmResult<()> {
        let writers = self.live_write_views();
        if writers > 0 {
            return Err(DsmError::FetchWithLiveWrites { obj, writers });
        }
        Ok(())
    }

    /// Make sure a valid local copy exists for reading.
    fn ensure_readable(&self, obj: ObjectId) -> DsmResult<()> {
        loop {
            let plan = self.shared.engine.plan_read(obj);
            match plan {
                AccessPlan::LocalHit => return Ok(()),
                AccessPlan::Fetch { target } => {
                    self.ensure_fetchable(obj)?;
                    self.fault_in(obj, false, target);
                }
            }
        }
    }

    /// Make sure a writable local copy exists (twin created as needed).
    fn ensure_writable(&self, obj: ObjectId) -> DsmResult<()> {
        loop {
            let plan = self.shared.engine.plan_write(obj);
            match plan {
                AccessPlan::LocalHit => return Ok(()),
                AccessPlan::Fetch { target } => {
                    self.ensure_fetchable(obj)?;
                    self.fault_in(obj, true, target);
                }
            }
        }
    }

    /// Fault an object in from its (believed) home, following forwarding
    /// pointers until the current home is found.
    fn fault_in(&self, obj: ObjectId, for_write: bool, mut target: NodeId) {
        let node = self.shared.node;
        let mut redirections = 0u32;
        loop {
            debug_assert_ne!(target, node, "fault-in aimed at the requester itself");
            let req = self.shared.new_req();
            let reply = self.shared.request(
                target,
                req,
                ProtocolMsg::ObjectRequest {
                    req,
                    obj,
                    requester: node,
                    for_write,
                    redirections,
                },
            );
            match reply {
                ProtocolMsg::ObjectReply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    self.shared
                        .engine
                        .install_object(obj, data, version, migration);
                    return;
                }
                ProtocolMsg::ObjectRedirect {
                    new_home, epoch, ..
                } => {
                    redirections += 1;
                    assert!(
                        redirections <= self.redirect_limit(),
                        "redirection chain for {obj} did not converge"
                    );
                    let engine = &self.shared.engine;
                    engine.note_redirect(obj, new_home, epoch);
                    // Chase the hint — but never ourselves: a (stale) hint
                    // pointing back at the requester falls back to our own
                    // forward belief, which the epoch guard kept intact.
                    target = if new_home == node {
                        engine.home_hint(obj)
                    } else {
                        new_home
                    };
                }
                other => panic!("unexpected reply to object request: {other:?}"),
            }
        }
    }

    /// Flush every dirty object of the current interval to its home and
    /// close the interval.
    ///
    /// With flush batching enabled (the default), the plans are grouped by
    /// their believed home and each group of two or more travels as one
    /// `DiffBatch` message — one per-message start-up time instead of one
    /// per object. Singleton groups (and every flush when batching is
    /// disabled) take the paper-faithful one-`DiffFlush`-per-object path.
    fn flush_interval(&self) {
        let plans = self.shared.engine.prepare_release();
        if self.shared.flush_batching {
            for batch in group_flush_plans(plans) {
                if batch.entries.len() == 1 {
                    let mut entries = batch.entries;
                    self.flush_plan(entries.pop().expect("length checked"), 0);
                } else {
                    self.flush_batch(batch);
                }
            }
        } else {
            for plan in plans {
                self.flush_plan(plan, 0);
            }
        }
        self.shared.engine.finish_release();
    }

    /// Adopt a flush-redirect hint (epoch-guarded) and return the node to
    /// retry at: the hinted home — but never ourselves; a (stale) hint
    /// pointing back at the flusher falls back to our own forward belief,
    /// which the epoch guard kept intact. Shared by the individual-flush
    /// chase and the per-entry re-plan of a redirected batch entry, so the
    /// two paths can never drift apart.
    fn retarget_after_redirect(&self, obj: ObjectId, new_home: NodeId, epoch: u32) -> NodeId {
        let engine = &self.shared.engine;
        engine.note_redirect(obj, new_home, epoch);
        if new_home == self.shared.node {
            engine.home_hint(obj)
        } else {
            new_home
        }
    }

    /// Flush one diff to its home, following forwarding pointers until the
    /// current home acknowledges it. `redirections` seeds the hop count (a
    /// batch entry re-planned after a per-entry redirect starts at 1, so
    /// the home that finally applies it sees the same negative feedback
    /// `R_i` as an individually redirected flush).
    fn flush_plan(&self, plan: FlushPlan, redirections: u32) {
        let node = self.shared.node;
        let mut target = plan.target;
        let mut redirections = redirections;
        loop {
            let req = self.shared.new_req();
            let reply = self.shared.request(
                target,
                req,
                ProtocolMsg::DiffFlush {
                    req,
                    obj: plan.obj,
                    diff: plan.diff.clone(),
                    from: node,
                    redirections,
                },
            );
            match reply {
                ProtocolMsg::DiffAck { version, .. } => {
                    self.shared.engine.complete_flush(plan.obj, version);
                    break;
                }
                ProtocolMsg::DiffRedirect {
                    new_home, epoch, ..
                } => {
                    redirections += 1;
                    assert!(
                        redirections <= self.redirect_limit(),
                        "diff redirection chain for {} did not converge",
                        plan.obj
                    );
                    target = self.retarget_after_redirect(plan.obj, new_home, epoch);
                }
                other => panic!("unexpected reply to diff flush: {other:?}"),
            }
        }
    }

    /// Flush a group of same-home diffs as one `DiffBatch` message and
    /// resolve the per-entry results of its ack: applied entries complete
    /// immediately; entries whose home migrated mid-flight come back as
    /// per-entry redirects and are re-planned individually through the
    /// usual epoch-guarded [`Self::flush_plan`] chase.
    fn flush_batch(&self, batch: FlushBatch) {
        let node = self.shared.node;
        let engine = &self.shared.engine;
        engine.note_diff_batch(batch.entries.len());
        let req = self.shared.new_req();
        let entries: Vec<DiffBatchEntry> = batch
            .entries
            .iter()
            .map(|plan| DiffBatchEntry {
                obj: plan.obj,
                diff: plan.diff.clone(),
            })
            .collect();
        let reply = self.shared.request(
            batch.target,
            req,
            ProtocolMsg::DiffBatch {
                req,
                entries,
                from: node,
            },
        );
        let ProtocolMsg::DiffBatchAck { results, .. } = reply else {
            panic!("unexpected reply to diff batch: {reply:?}");
        };
        assert_eq!(
            results.len(),
            batch.entries.len(),
            "diff batch ack must resolve every entry"
        );
        for result in results {
            match result.status {
                DiffEntryStatus::Applied { version } => {
                    engine.complete_flush(result.obj, version);
                }
                DiffEntryStatus::Redirect { new_home, epoch } => {
                    let target = self.retarget_after_redirect(result.obj, new_home, epoch);
                    let plan = batch
                        .entries
                        .iter()
                        .find(|plan| plan.obj == result.obj)
                        .expect("ack result matches a batch entry");
                    self.flush_plan(
                        FlushPlan {
                            obj: plan.obj,
                            target,
                            diff: plan.diff.clone(),
                        },
                        1,
                    );
                }
            }
        }
    }
}
