//! The application-facing node context.
//!
//! A [`NodeCtx`] is handed to the application closure on every node. It is
//! the analogue of the paper's GOS runtime interface as seen by a Java
//! thread: transparent object access (fault-ins, twins and diffs happen
//! behind the scenes), `synchronized`-style locking, barriers, and a hook to
//! charge modelled computation time.

use crate::handle::ArrayHandle;
use crate::node::{dispatch_barrier_release, dispatch_lock_grant, NodeShared};
use dsm_core::sync::{BarrierOutcome, LockAcquireOutcome};
use dsm_core::{AccessPlan, ProtocolMsg};
use dsm_model::{SimDuration, SimTime};
use dsm_objspace::{BarrierId, Element, LockId, NodeId, ObjectData, ObjectId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Node of the cluster that hosts the distributed lock and barrier managers.
/// The paper's applications start on one node and send all distributed
/// synchronization there.
const SYNC_MANAGER: NodeId = NodeId::MASTER;

/// The per-node application context.
pub struct NodeCtx {
    shared: Arc<NodeShared>,
    barrier_epochs: RefCell<HashMap<BarrierId, u64>>,
}

impl NodeCtx {
    pub(crate) fn new(shared: Arc<NodeShared>) -> Self {
        NodeCtx {
            shared,
            barrier_epochs: RefCell::new(HashMap::new()),
        }
    }

    /// This node's identity.
    pub fn node_id(&self) -> NodeId {
        self.shared.node
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.shared.num_nodes
    }

    /// Whether this node is the master (the node the application starts on).
    pub fn is_master(&self) -> bool {
        self.shared.node == NodeId::MASTER
    }

    /// Current virtual time at this node.
    pub fn now(&self) -> SimTime {
        self.shared.clock.now()
    }

    /// Charge `ops` abstract operations of computation to the virtual clock.
    pub fn compute(&self, ops: u64) {
        let cost = self.shared.compute.ops(ops);
        self.shared.clock.advance(cost);
    }

    /// Charge computation for touching `elements` elements with
    /// `ops_per_element` operations each.
    pub fn compute_elements(&self, elements: u64, ops_per_element: u64) {
        let cost = self.shared.compute.elements(elements, ops_per_element);
        self.shared.clock.advance(cost);
    }

    /// Charge an explicit virtual duration (used by workloads that model
    /// phases not expressed in element counts).
    pub fn charge(&self, duration: SimDuration) {
        self.shared.clock.advance(duration);
    }

    // ------------------------------------------------------------------
    // Shared object access
    // ------------------------------------------------------------------

    /// Seed the initial contents of a shared object. Must be called on every
    /// node *before* any node accesses the object through the protocol
    /// (typically followed by a [`Self::barrier`]); only the object's home
    /// actually stores the data, and no messages are exchanged because every
    /// node computes identical contents.
    pub fn bootstrap<T: Element>(&self, handle: &ArrayHandle<T>, values: &[T]) {
        assert_eq!(values.len(), handle.len, "bootstrap length mismatch");
        self.shared
            .engine
            .lock()
            .bootstrap_object(handle.id, ObjectData::from_elements(values));
    }

    /// Read the whole object into a typed vector (faulting it in if needed).
    pub fn read<T: Element>(&self, handle: &ArrayHandle<T>) -> Vec<T> {
        self.ensure_readable(handle.id);
        self.shared
            .engine
            .lock()
            .with_object(handle.id, |d| d.as_elements())
    }

    /// Read a single element (faulting the object in if needed).
    pub fn read_element<T: Element>(&self, handle: &ArrayHandle<T>, index: usize) -> T {
        assert!(index < handle.len, "element index out of range");
        self.ensure_readable(handle.id);
        self.shared
            .engine
            .lock()
            .with_object(handle.id, |d| d.get(index))
    }

    /// Read-modify-write the whole object through a closure over its typed
    /// contents.
    pub fn update<T: Element>(&self, handle: &ArrayHandle<T>, f: impl FnOnce(&mut Vec<T>)) {
        self.ensure_writable(handle.id);
        self.shared.engine.lock().with_object_mut(handle.id, |d| {
            let mut values = d.as_elements::<T>();
            f(&mut values);
            d.overwrite_elements(&values);
        });
    }

    /// Overwrite the whole object with new contents.
    pub fn write_all<T: Element>(&self, handle: &ArrayHandle<T>, values: &[T]) {
        assert_eq!(values.len(), handle.len, "write length mismatch");
        self.ensure_writable(handle.id);
        self.shared
            .engine
            .lock()
            .with_object_mut(handle.id, |d| d.overwrite_elements(values));
    }

    /// Overwrite a single element.
    pub fn write_element<T: Element>(&self, handle: &ArrayHandle<T>, index: usize, value: T) {
        assert!(index < handle.len, "element index out of range");
        self.ensure_writable(handle.id);
        self.shared
            .engine
            .lock()
            .with_object_mut(handle.id, |d| d.set(index, value));
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    /// Acquire a distributed lock (entering a `synchronized` block). Opens a
    /// new consistency interval: cached copies are conservatively
    /// invalidated, exactly as the paper's Java-consistency GOS does.
    pub fn acquire(&self, lock: LockId) {
        let node = self.shared.node;
        if SYNC_MANAGER == node {
            let req = self.shared.new_req();
            let rx = self.shared.register_pending(req);
            let outcome = self.shared.engine.lock().lock_acquire(lock, node, req);
            match outcome {
                LockAcquireOutcome::Granted => {
                    // Nobody will ever send the grant; complete it ourselves
                    // so the pending table stays clean.
                    self.shared.deliver_local(req, ProtocolMsg::LockGrant { req, lock });
                }
                LockAcquireOutcome::Queued => {}
            }
            let reply = rx.recv().expect("cluster shut down during lock acquire");
            self.shared.clock.merge(reply.arrival);
        } else {
            let req = self.shared.new_req();
            let reply = self.shared.request(
                SYNC_MANAGER,
                req,
                ProtocolMsg::LockAcquire {
                    req,
                    lock,
                    requester: node,
                },
            );
            assert!(
                matches!(reply, ProtocolMsg::LockGrant { .. }),
                "unexpected reply to lock acquire: {reply:?}"
            );
        }
        let mut engine = self.shared.engine.lock();
        engine.note_lock_acquire();
        engine.begin_interval();
    }

    /// Release a distributed lock (leaving a `synchronized` block). All
    /// local writes of the interval are flushed to their homes (diff
    /// propagation) before the lock is handed back.
    pub fn release(&self, lock: LockId) {
        self.flush_interval();
        let node = self.shared.node;
        if SYNC_MANAGER == node {
            let outcome = self.shared.engine.lock().lock_release(lock, node);
            if let Some((next, req)) = outcome.grant_next {
                dispatch_lock_grant(&self.shared, lock, next, req);
            }
        } else {
            self.shared.send(
                SYNC_MANAGER,
                ProtocolMsg::LockRelease { lock, holder: node },
            );
        }
    }

    /// Run `f` inside a `synchronized` block on `lock`.
    pub fn synchronized<R>(&self, lock: LockId, f: impl FnOnce() -> R) -> R {
        self.acquire(lock);
        let result = f();
        self.release(lock);
        result
    }

    /// Wait at a global barrier (all nodes participate). Acts as a release
    /// (local writes flushed) followed by an acquire (cached copies
    /// invalidated), exactly like the barriers the paper's iterative
    /// applications are built around.
    pub fn barrier(&self, barrier: BarrierId) {
        self.flush_interval();
        let node = self.shared.node;
        let epoch = {
            let mut epochs = self.barrier_epochs.borrow_mut();
            let e = epochs.entry(barrier).or_insert(0);
            let current = *e;
            *e += 1;
            current
        };
        let req = self.shared.new_req();
        if SYNC_MANAGER == node {
            let rx = self.shared.register_pending(req);
            let outcome = self.shared.engine.lock().barrier_arrive(barrier, node, req);
            if let BarrierOutcome::Complete { waiters, epoch: done } = outcome {
                dispatch_barrier_release(&self.shared, barrier, done, waiters);
            }
            let reply = rx.recv().expect("cluster shut down during barrier");
            self.shared.clock.merge(reply.arrival);
        } else {
            let reply = self.shared.request(
                SYNC_MANAGER,
                req,
                ProtocolMsg::BarrierArrive {
                    req,
                    barrier,
                    node,
                    epoch,
                },
            );
            assert!(
                matches!(reply, ProtocolMsg::BarrierRelease { .. }),
                "unexpected reply to barrier arrive: {reply:?}"
            );
        }
        let mut engine = self.shared.engine.lock();
        engine.note_barrier();
        engine.begin_interval();
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Make sure a valid local copy exists for reading.
    fn ensure_readable(&self, obj: ObjectId) {
        loop {
            let plan = self.shared.engine.lock().plan_read(obj);
            match plan {
                AccessPlan::LocalHit => return,
                AccessPlan::Fetch { target } => self.fault_in(obj, false, target),
            }
        }
    }

    /// Make sure a writable local copy exists (twin created as needed).
    fn ensure_writable(&self, obj: ObjectId) {
        loop {
            let plan = self.shared.engine.lock().plan_write(obj);
            match plan {
                AccessPlan::LocalHit => return,
                AccessPlan::Fetch { target } => self.fault_in(obj, true, target),
            }
        }
    }

    /// Fault an object in from its (believed) home, following forwarding
    /// pointers until the current home is found.
    fn fault_in(&self, obj: ObjectId, for_write: bool, mut target: NodeId) {
        let node = self.shared.node;
        let mut redirections = 0u32;
        loop {
            let req = self.shared.new_req();
            let reply = self.shared.request(
                target,
                req,
                ProtocolMsg::ObjectRequest {
                    req,
                    obj,
                    requester: node,
                    for_write,
                    redirections,
                },
            );
            match reply {
                ProtocolMsg::ObjectReply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    self.shared
                        .engine
                        .lock()
                        .install_object(obj, data, version, migration);
                    return;
                }
                ProtocolMsg::ObjectRedirect { new_home, .. } => {
                    self.shared.engine.lock().note_redirect(obj, new_home);
                    redirections += 1;
                    assert!(
                        redirections <= self.shared.num_nodes as u32 + 2,
                        "redirection chain for {obj} did not converge"
                    );
                    target = new_home;
                }
                other => panic!("unexpected reply to object request: {other:?}"),
            }
        }
    }

    /// Flush every dirty object of the current interval to its home and
    /// close the interval.
    fn flush_interval(&self) {
        let node = self.shared.node;
        let plans = self.shared.engine.lock().prepare_release();
        for plan in plans {
            let mut target = plan.target;
            let mut redirections = 0u32;
            loop {
                let req = self.shared.new_req();
                let reply = self.shared.request(
                    target,
                    req,
                    ProtocolMsg::DiffFlush {
                        req,
                        obj: plan.obj,
                        diff: plan.diff.clone(),
                        from: node,
                        redirections,
                    },
                );
                match reply {
                    ProtocolMsg::DiffAck { version, .. } => {
                        self.shared.engine.lock().complete_flush(plan.obj, version);
                        break;
                    }
                    ProtocolMsg::DiffRedirect { new_home, .. } => {
                        self.shared.engine.lock().note_redirect(plan.obj, new_home);
                        redirections += 1;
                        assert!(
                            redirections <= self.shared.num_nodes as u32 + 2,
                            "diff redirection chain for {} did not converge",
                            plan.obj
                        );
                        target = new_home;
                    }
                    other => panic!("unexpected reply to diff flush: {other:?}"),
                }
            }
        }
        self.shared.engine.lock().finish_release();
    }
}
