//! The protocol server loop for TCP-fabric nodes.
//!
//! Identical message handling to the threaded loop in [`crate::node`] —
//! the same `handle_request` dispatch, the same non-blocking deferral of
//! busy payloads — plus the **leave handshake** that replaces the threaded
//! fabric's implicit teardown: channels can simply be dropped, sockets
//! cannot, because a peer reading a closed connection mid-protocol would
//! see an error instead of an orderly end of stream.
//!
//! The handshake is single-phase and leans on per-link FIFO. Once shutdown
//! has been requested (all application threads joined) and this node's
//! inbound queue and deferral queue are empty, the server announces a
//! `Leave` frame on every outgoing link — FIFO guarantees it is the last
//! frame each peer reads from us. The server keeps serving (one-way
//! `LockRelease` / `HomeNotify` stragglers may still arrive) until every
//! peer's leave has been read, at which point no further frame can arrive
//! and the loop returns. A single phase suffices because shutdown is only
//! requested after every application thread has joined: nothing is blocked
//! on a reply, so the in-flight residue is fire-and-forget messages whose
//! handling sends nothing back.

use crate::node::trace_enabled;
use crate::node::{handle_request, retry_deferred, BatchPartials, NodeLink, NodeShared};
use dsm_core::ProtocolMsg;
use dsm_objspace::NodeId;
use dsm_util::channel::RecvTimeoutError;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The protocol server loop for one node of a TCP cluster. Runs until the
/// leave handshake completes: shutdown requested, local queues drained,
/// leave announced, and every peer's leave received.
pub(crate) fn tcp_server_loop(shared: &Arc<NodeShared>) {
    let NodeLink::Tcp(endpoint) = &shared.link else {
        unreachable!("tcp_server_loop spawned for a non-TCP node");
    };
    let mut deferred: VecDeque<(NodeId, ProtocolMsg)> = VecDeque::new();
    let mut partials: BatchPartials = HashMap::new();
    let mut leave_announced = false;
    loop {
        match endpoint.recv_timeout(shared.poll_interval) {
            Ok(envelope) => {
                if trace_enabled() {
                    eprintln!(
                        "[{}] serve from {} {:?}",
                        shared.node, envelope.src, envelope.payload
                    );
                }
                shared
                    .clock
                    .merge_and_advance(envelope.arrival, shared.handling_cost);
                let arrival = envelope.arrival;
                let src = envelope.src;
                let msg = envelope.payload;
                if msg.is_reply() {
                    let req = msg.reply_req().expect("reply carries request id");
                    shared.complete(req, msg, arrival);
                } else if let Some(busy) = handle_request(shared, src, msg, &mut partials) {
                    deferred.push_back((src, busy));
                }
                retry_deferred(shared, &mut deferred, &mut partials);
            }
            Err(RecvTimeoutError::Timeout) => {
                shared.note_idle_tick();
                retry_deferred(shared, &mut deferred, &mut partials);
                if shared.should_shutdown() && endpoint.pending() == 0 && deferred.is_empty() {
                    if !leave_announced {
                        endpoint.announce_leave();
                        leave_announced = true;
                    }
                    if endpoint.all_peers_left() && endpoint.pending() == 0 {
                        debug_assert!(
                            partials.is_empty(),
                            "batch partials outlived their deferred entries"
                        );
                        return;
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}
