//! The sim-mode scheduler: event-driven protocol serving on the
//! deterministic [`SimFabric`].
//!
//! In sim mode the cluster spawns **no per-node server threads** and sleeps
//! on **no poll interval**. Application threads run as usual, but every
//! message they send is parked in the fabric's virtual-time event queue,
//! and one scheduler (the thread that called `Cluster::run`) executes the
//! protocol servers of *all* nodes inline, one event at a time:
//!
//! 1. wait (on a condition variable) until every application agent is
//!    parked — at that point the pending event set is complete and the
//!    earliest event is a deterministic choice;
//! 2. pop it, run the destination node's handler (exactly the
//!    `handle_request`/`complete` logic the threaded server loop uses),
//!    retry the deferral queues, and only then flush the buffered reply
//!    wakes so woken applications never race the handler's own sends;
//! 3. repeat until every agent finished and the queue drained.
//!
//! Because at most one of {the scheduler, the set of woken application
//! threads} runs between two quiescence points — and concurrently woken
//! applications only ever touch their own node's links — every link's send
//! sequence, every clock merge and every perturbation draw is a pure
//! function of the seed: the same seed replays a bit-identical delivery
//! trace.
//!
//! A protocol stall (no event pending, no deferred message serviceable,
//! applications still parked) is a deadlock in the protocol or the
//! application; the scheduler panics with diagnostics instead of hanging
//! the test run, naming the state a failing seed can replay.

use crate::fault;
use crate::node::{self, BatchPartials, NodeShared};
use dsm_core::ProtocolMsg;
use dsm_net::{DropReason, SimFabric, SimStep};
use dsm_objspace::NodeId;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel for "no application thread has panicked".
pub(crate) const NO_PANIC: usize = usize::MAX;

/// RAII agent registration for one application thread: marks the agent
/// finished on scope exit — including unwinds, so a panicking application
/// cannot leave the scheduler waiting for quiescence forever.
pub(crate) struct AppAgent<'fabric> {
    fabric: &'fabric SimFabric<ProtocolMsg>,
    panicked: &'fabric AtomicBool,
    /// First node whose application genuinely panicked ([`NO_PANIC`] until
    /// then). The teardown wakes the *other* nodes into secondary
    /// "cluster shut down" panics; the runner uses this to re-raise the
    /// original payload instead of one of those.
    first_panic: &'fabric AtomicUsize,
    node: usize,
}

impl<'fabric> AppAgent<'fabric> {
    pub fn new(
        fabric: &'fabric SimFabric<ProtocolMsg>,
        panicked: &'fabric AtomicBool,
        first_panic: &'fabric AtomicUsize,
        node: usize,
    ) -> AppAgent<'fabric> {
        AppAgent {
            fabric,
            panicked,
            first_panic,
            node,
        }
    }
}

impl Drop for AppAgent<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Claim first-panic *before* raising the flag: once `panicked`
            // is visible the scheduler may start waking other threads into
            // secondary panics, which must not win this slot.
            let _ = self.first_panic.compare_exchange(
                NO_PANIC,
                self.node,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            self.panicked.store(true, Ordering::SeqCst);
        }
        // The endpoint-side and fabric-side counters are one counter; any
        // handle may report the park.
        self.fabric.agent_finished();
    }
}

/// Per-node deferral state owned by the scheduler (what each threaded
/// server loop keeps thread-locally).
struct NodeQueues {
    deferred: Vec<VecDeque<(NodeId, ProtocolMsg)>>,
    partials: Vec<BatchPartials>,
}

impl NodeQueues {
    fn new(nodes: usize) -> Self {
        NodeQueues {
            deferred: (0..nodes).map(|_| VecDeque::new()).collect(),
            partials: (0..nodes).map(|_| BatchPartials::new()).collect(),
        }
    }

    /// Deferred work still parked, counting batch residuals per entry so
    /// partial batch progress is visible to the stall detector.
    fn load(&self) -> usize {
        self.deferred
            .iter()
            .flatten()
            .map(|(_, msg)| match msg {
                ProtocolMsg::DiffBatch { entries, .. } => entries.len(),
                _ => 1,
            })
            .sum()
    }

    fn is_empty(&self) -> bool {
        self.deferred.iter().all(VecDeque::is_empty)
    }
}

/// Run the cluster's protocol servers over the sim fabric until every
/// application agent finished and all traffic drained. See the module docs
/// for the execution model.
pub(crate) fn sim_server_loop(
    shareds: &[Arc<NodeShared>],
    fabric: &SimFabric<ProtocolMsg>,
    panicked: &AtomicBool,
) {
    let mut queues = NodeQueues::new(shareds.len());
    node::enable_wake_buffering();
    loop {
        match fabric.next_step() {
            SimStep::Deliver(envelope) => {
                let shared = &shareds[envelope.dst.index()];
                if node::trace_enabled() {
                    eprintln!(
                        "[{}] sim serve from {} {:?}",
                        shared.node, envelope.src, envelope.payload
                    );
                }
                // Protocol handling shares the node's (virtual) CPU.
                shared
                    .clock
                    .merge_and_advance(envelope.arrival, shared.handling_cost);
                let node_index = envelope.dst.index();
                let msg = envelope.payload;
                if msg.is_reply() {
                    let req = msg.reply_req().expect("reply carries request id");
                    shared.complete(req, msg, envelope.arrival);
                } else if !fault::admit_request(shared, &msg) {
                    // Duplicate of an already-seen request: absorbed, or
                    // answered from the reply cache by `admit_request`.
                } else if let Some(busy) = node::handle_request(
                    shared,
                    envelope.src,
                    msg,
                    &mut queues.partials[node_index],
                ) {
                    queues.deferred[node_index].push_back((envelope.src, busy));
                }
                retry_all(shareds, &mut queues);
                flush_wakes(fabric);
            }
            SimStep::Drained => {
                if queues.is_empty() {
                    break;
                }
                if !make_progress(shareds, fabric, &mut queues) {
                    teardown_or_panic(shareds, panicked, fabric, &queues, "drained");
                    break;
                }
            }
            SimStep::Stalled => {
                // Deferred work first; if nothing local moves, this is the
                // timeout point of the lossy-fabric recovery machinery:
                // every node retransmits its outstanding requests (see
                // `crate::fault`). Only when that too is out of attempts
                // (or the fabric is lossless and has no retry state) is the
                // stall terminal.
                if !make_progress(shareds, fabric, &mut queues) && !fault::fire_retries(shareds) {
                    teardown_or_panic(shareds, panicked, fabric, &queues, "stalled");
                    break;
                }
            }
        }
    }
    node::disable_wake_buffering();
}

/// One deterministic retry pass over every node's deferral queue (node
/// order, arrival order within a node).
fn retry_all(shareds: &[Arc<NodeShared>], queues: &mut NodeQueues) {
    for (i, shared) in shareds.iter().enumerate() {
        node::retry_deferred(shared, &mut queues.deferred[i], &mut queues.partials[i]);
    }
}

/// Flush the scheduler's buffered reply wakes: re-count each woken agent
/// *before* handing it its reply, so the quiescence count never
/// under-reports. Returns the number of applications woken.
fn flush_wakes(fabric: &SimFabric<ProtocolMsg>) -> usize {
    let wakes = node::take_buffered_wakes();
    let woken = wakes.len();
    for wake in wakes {
        fabric.agent_unblocked();
        wake.deliver();
    }
    woken
}

/// Retry all deferred work once and report whether anything moved: a
/// deferred message (or batch entry) resolved, a new message was sent, or
/// an application was woken.
fn make_progress(
    shareds: &[Arc<NodeShared>],
    fabric: &SimFabric<ProtocolMsg>,
    queues: &mut NodeQueues,
) -> bool {
    let load_before = queues.load();
    let sent_before = fabric.sent_count();
    retry_all(shareds, queues);
    let woken = flush_wakes(fabric);
    queues.load() < load_before || fabric.sent_count() > sent_before || woken > 0
}

/// A quiescent cluster with no serviceable work left: normal teardown after
/// an application panic (the panic propagates from `Cluster::run`), a
/// protocol/application deadlock otherwise.
fn teardown_or_panic(
    shareds: &[Arc<NodeShared>],
    panicked: &AtomicBool,
    fabric: &SimFabric<ProtocolMsg>,
    queues: &NodeQueues,
    state: &str,
) {
    if panicked.load(Ordering::SeqCst) {
        return;
    }
    let (sent, delivered, dropped, queued) = fabric.counters();
    let deferred: Vec<usize> = queues.deferred.iter().map(VecDeque::len).collect();
    // Distinguish "the fault injection ate something the protocol could not
    // recover from" from a genuine protocol/application deadlock: list what
    // was dropped (and where) so the failing seed is attributable.
    let drops = fabric.drops();
    let loss = if drops.is_empty() {
        "no injected drops — this is a genuine deadlock in the protocol or the application"
            .to_string()
    } else {
        let by_reason = |reason: DropReason| drops.iter().filter(|d| d.reason == reason).count();
        let sample: Vec<String> = drops
            .iter()
            .rev()
            .take(8)
            .map(|d| format!("{}->{}#{}:{}", d.src, d.dst, d.link_seq, d.reason))
            .collect();
        format!(
            "{dropped} injected drops (random {}, partition {}, pause {}); last: [{}] — \
             the recovery machinery ran out of attempts before the run could complete",
            by_reason(DropReason::Random),
            by_reason(DropReason::Partition),
            by_reason(DropReason::Pause),
            sample.join(", "),
        )
    };
    // Wake the parked application threads before panicking: the scheduler's
    // unwind runs `thread::scope`'s join-on-drop, which would otherwise wait
    // forever on threads still parked in `wait_reply` — turning this
    // diagnostic into a silent hang. Each cleared waiter was counted out of
    // the agent tally, so re-count it before it unwinds through
    // `agent_finished`.
    for shared in shareds {
        for _ in 0..shared.abort_pending() {
            fabric.agent_unblocked();
        }
    }
    panic!(
        "sim fabric {state} with no progress possible: every application agent is parked \
         and no serviceable message remains (sent {sent}, delivered {delivered}, \
         queued {queued}, deferred per node {deferred:?}); {loss}; replay the failing \
         seed with DSM_TRACE=1"
    );
}
