//! The sim-mode scheduler: event-driven protocol serving on the
//! deterministic [`SimFabric`].
//!
//! In sim mode the cluster spawns **no per-node server threads** and sleeps
//! on **no poll interval**. Application threads run as usual, but every
//! message they send is parked in the fabric's virtual-time event queue,
//! and one scheduler (the thread that called `Cluster::run`) executes the
//! protocol servers of *all* nodes inline, one event at a time:
//!
//! 1. wait (on a condition variable) until every application agent is
//!    parked — at that point the pending event set is complete and the
//!    earliest event is a deterministic choice;
//! 2. pop it, run the destination node's handler (exactly the
//!    `handle_request`/`complete` logic the threaded server loop uses),
//!    retry the deferral queues, and only then flush the buffered reply
//!    wakes so woken applications never race the handler's own sends;
//! 3. repeat until every agent finished and the queue drained.
//!
//! Because at most one of {the scheduler, the set of woken application
//! threads} runs between two quiescence points — and concurrently woken
//! applications only ever touch their own node's links — every link's send
//! sequence, every clock merge and every perturbation draw is a pure
//! function of the seed: the same seed replays a bit-identical delivery
//! trace.
//!
//! ## The parallel frontier scheduler
//!
//! [`sim_server_loop_parallel`] (selected with `SimConfig::with_workers`)
//! keeps the same virtual-time semantics but runs the handlers of a
//! **conflict-free frontier** ([`SimFabric::next_frontier`]) on a scoped
//! worker pool. Its equivalence to the sequential loop rests on three
//! facts:
//!
//! * frontier events have pairwise-distinct destinations, so their
//!   handlers touch disjoint node state and send on disjoint links;
//! * frontiers are popped **only while every deferral queue is empty** —
//!   deferred work becomes serviceable only through an application
//!   lease release, and within one frontier a node either gains a
//!   deferral *or* has its application woken (never both), so every
//!   per-event retry pass the sequential loop would have run inside the
//!   frontier is provably a no-op; the moment any handler defers, the
//!   loop falls back to singleton sequential steps until the queues
//!   drain;
//! * outgoing sends merge back through the virtual-time heap's canonical
//!   `(deliver_at, src, dst, link_seq)` key and buffered wakes flush at
//!   the frontier barrier in frontier order, so nothing downstream
//!   depends on worker completion order.
//!
//! Worker panics are caught at the barrier and the first one *in frontier
//! order* is re-raised on the scheduler thread, so even a panicking
//! handler surfaces exactly as it does under the sequential loop.
//!
//! A protocol stall (no event pending, no deferred message serviceable,
//! applications still parked) is a deadlock in the protocol or the
//! application; the scheduler panics with diagnostics instead of hanging
//! the test run, naming the state a failing seed can replay.

use crate::exec::pool::TaskPool;
use crate::fault;
use crate::node::{self, BatchPartials, NodeShared};
use dsm_core::ProtocolMsg;
use dsm_model::{SimDuration, SimTime};
use dsm_net::{DropReason, Envelope, SimFabric, SimFrontier, SimStep};
use dsm_objspace::NodeId;
use dsm_util::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel for "no application thread has panicked".
pub(crate) const NO_PANIC: usize = usize::MAX;

/// RAII agent registration for one application thread: marks the agent
/// finished on scope exit — including unwinds, so a panicking application
/// cannot leave the scheduler waiting for quiescence forever.
pub(crate) struct AppAgent<'fabric> {
    fabric: &'fabric SimFabric<ProtocolMsg>,
    panicked: &'fabric AtomicBool,
    /// First node whose application genuinely panicked ([`NO_PANIC`] until
    /// then). The teardown wakes the *other* nodes into secondary
    /// "cluster shut down" panics; the runner uses this to re-raise the
    /// original payload instead of one of those.
    first_panic: &'fabric AtomicUsize,
    node: usize,
}

impl<'fabric> AppAgent<'fabric> {
    pub fn new(
        fabric: &'fabric SimFabric<ProtocolMsg>,
        panicked: &'fabric AtomicBool,
        first_panic: &'fabric AtomicUsize,
        node: usize,
    ) -> AppAgent<'fabric> {
        AppAgent {
            fabric,
            panicked,
            first_panic,
            node,
        }
    }
}

impl Drop for AppAgent<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Claim first-panic *before* raising the flag: once `panicked`
            // is visible the scheduler may start waking other threads into
            // secondary panics, which must not win this slot.
            let _ = self.first_panic.compare_exchange(
                NO_PANIC,
                self.node,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            self.panicked.store(true, Ordering::SeqCst);
        }
        // The endpoint-side and fabric-side counters are one counter; any
        // handle may report the park.
        self.fabric.agent_finished();
    }
}

/// One node's serve-side deferral state (what each threaded server loop
/// keeps thread-locally).
struct NodeServe {
    deferred: VecDeque<(NodeId, ProtocolMsg)>,
    partials: BatchPartials,
}

/// Per-node deferral state owned by the scheduler. Each node's entry sits
/// behind its own mutex so frontier workers handling *distinct* nodes
/// never contend (the sequential loop pays only an uncontended lock).
struct NodeQueues {
    nodes: Vec<Mutex<NodeServe>>,
}

impl NodeQueues {
    fn new(nodes: usize) -> Self {
        NodeQueues {
            nodes: (0..nodes)
                .map(|_| {
                    Mutex::new(NodeServe {
                        deferred: VecDeque::new(),
                        partials: BatchPartials::new(),
                    })
                })
                .collect(),
        }
    }

    /// Deferred work still parked, counting batch residuals per entry so
    /// partial batch progress is visible to the stall detector.
    fn load(&self) -> usize {
        self.nodes
            .iter()
            .map(|serve| {
                serve
                    .lock()
                    .deferred
                    .iter()
                    .map(|(_, msg)| match msg {
                        ProtocolMsg::DiffBatch { entries, .. } => entries.len(),
                        _ => 1,
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    fn is_empty(&self) -> bool {
        self.nodes
            .iter()
            .all(|serve| serve.lock().deferred.is_empty())
    }

    /// Deferral-queue lengths per node (teardown diagnostics).
    fn deferred_lens(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .map(|serve| serve.lock().deferred.len())
            .collect()
    }
}

/// Deliver one envelope to its destination's protocol logic — the shared
/// dispatch of the sequential loop, the frontier workers and the polling
/// server loops (modulo queue plumbing).
fn deliver_one(shareds: &[Arc<NodeShared>], queues: &NodeQueues, envelope: Envelope<ProtocolMsg>) {
    let shared = &shareds[envelope.dst.index()];
    if node::trace_enabled() {
        eprintln!(
            "[{}] sim serve from {} {:?}",
            shared.node, envelope.src, envelope.payload
        );
    }
    // Protocol handling shares the node's (virtual) CPU.
    shared
        .clock
        .merge_and_advance(envelope.arrival, shared.handling_cost);
    let node_index = envelope.dst.index();
    let msg = envelope.payload;
    if msg.is_reply() {
        let req = msg.reply_req().expect("reply carries request id");
        shared.complete(req, msg, envelope.arrival);
    } else if !fault::admit_request(shared, &msg) {
        // Duplicate of an already-seen request: absorbed, or answered from
        // the reply cache by `admit_request`.
    } else {
        let mut serve = queues.nodes[node_index].lock();
        let serve = &mut *serve;
        if let Some(busy) = node::handle_request(shared, envelope.src, msg, &mut serve.partials) {
            serve.deferred.push_back((envelope.src, busy));
        }
    }
}

/// The lossy-run retry timer, fired on **virtual time** rather than only
/// at stalls. Stall-only firing has a starvation hole: a lost reply's
/// retransmission can be held off forever by *other* nodes' traffic — a
/// requester chasing a stale home hint bounces redirects back and forth,
/// the event queue never empties, and the one retransmission that would
/// resolve the chase never fires (the redirect chain then trips its
/// convergence bound). The timer closes the hole: before every pop, the
/// scheduler compares the un-popped head's due time against the deadline
/// and fires a [`fault::RetryRound::Due`] round first.
///
/// Determinism: the decision reads only the head event's `deliver_at` at
/// a quiescence point ([`SimFabric::peek_due`]), the same canonical
/// instant in the sequential and frontier loops, and the deadline is also
/// passed to [`SimFabric::next_frontier`] as a horizon so no frontier
/// spans a round the sequential loop would have fired mid-prefix. Armed
/// only when the fabric carries fault state (lossy configs) — lossless
/// runs pay nothing.
struct RetryTimer {
    next_at: SimTime,
    period: SimDuration,
}

impl RetryTimer {
    fn arm(shareds: &[Arc<NodeShared>]) -> Option<RetryTimer> {
        let period = shareds
            .iter()
            .find_map(|s| s.fault.as_ref())
            .map(|f| f.config.retry_timeout)?;
        Some(RetryTimer {
            next_at: SimTime::ZERO + period,
            period,
        })
    }

    /// Fire a timed retry round if the pending head is due at or past the
    /// deadline. Returns whether a round fired — the caller must then
    /// re-peek, because retransmissions may now precede the old head.
    fn fire_if_due(
        &mut self,
        shareds: &[Arc<NodeShared>],
        fabric: &SimFabric<ProtocolMsg>,
    ) -> bool {
        let Some(due) = fabric.peek_due() else {
            return false;
        };
        if due < self.next_at {
            return false;
        }
        fault::fire_retries(shareds, fault::RetryRound::Due);
        self.next_at = due + self.period;
        true
    }

    /// Re-arm after a [`fault::RetryRound::Stalled`] round: that round
    /// already advanced the retrying nodes' clocks by one timeout, so the
    /// next timed deadline counts from there — otherwise the timer would
    /// immediately double-fire on the retransmissions the stall round
    /// just queued.
    fn rearm_after_stall(&mut self, shareds: &[Arc<NodeShared>]) {
        let now = shareds
            .iter()
            .map(|s| s.clock.now())
            .max()
            .unwrap_or(SimTime::ZERO);
        self.next_at = self.next_at.max(now + self.period);
    }
}

/// Run the cluster's protocol servers over the sim fabric until every
/// application agent finished and all traffic drained. See the module docs
/// for the execution model. This sequential loop is the byte-for-byte
/// semantic reference the parallel frontier scheduler is checked against.
pub(crate) fn sim_server_loop(
    shareds: &[Arc<NodeShared>],
    fabric: &SimFabric<ProtocolMsg>,
    panicked: &AtomicBool,
) {
    let queues = NodeQueues::new(shareds.len());
    let mut timer = RetryTimer::arm(shareds);
    node::enable_wake_buffering();
    loop {
        if let Some(timer) = timer.as_mut() {
            if timer.fire_if_due(shareds, fabric) {
                continue;
            }
        }
        match fabric.next_step() {
            SimStep::Deliver(envelope) => {
                deliver_one(shareds, &queues, envelope);
                retry_all(shareds, &queues);
                flush_wakes(fabric);
            }
            SimStep::Drained => {
                if queues.is_empty() {
                    break;
                }
                if !make_progress(shareds, fabric, &queues) {
                    teardown_or_panic(shareds, panicked, fabric, &queues, "drained");
                    break;
                }
            }
            SimStep::Stalled => {
                // Deferred work first; if nothing local moves, this is the
                // timeout point of the lossy-fabric recovery machinery:
                // every node retransmits its outstanding requests (see
                // `crate::fault`). Only when that too is out of attempts
                // (or the fabric is lossless and has no retry state) is the
                // stall terminal.
                if !make_progress(shareds, fabric, &queues) {
                    if !fault::fire_retries(shareds, fault::RetryRound::Stalled) {
                        teardown_or_panic(shareds, panicked, fabric, &queues, "stalled");
                        break;
                    }
                    if let Some(timer) = timer.as_mut() {
                        timer.rearm_after_stall(shareds);
                    }
                }
            }
        }
    }
    node::disable_wake_buffering();
}

/// Frontier-scheduler counters for the run's [`crate::SchedulerReport`].
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SimParallelStats {
    /// Conflict-free frontiers dispatched.
    pub frontiers: u64,
    /// Events delivered through frontiers.
    pub frontier_events: u64,
    /// Widest frontier dispatched.
    pub frontier_high_watermark: usize,
    /// Events shipped to pool workers (the rest ran inline on the
    /// scheduler thread or through the singleton fallback).
    pub dispatched: u64,
    /// Total events delivered (frontier + singleton fallback).
    pub steps: u64,
}

/// The parallel variant of [`sim_server_loop`]: pops conflict-free
/// frontiers and fans their handlers out to `workers` threads (one of
/// them the calling scheduler thread), merging results deterministically
/// at a barrier. See the module docs for the equivalence argument.
pub(crate) fn sim_server_loop_parallel(
    shareds: &[Arc<NodeShared>],
    fabric: &SimFabric<ProtocolMsg>,
    panicked: &AtomicBool,
    workers: usize,
) -> SimParallelStats {
    assert!(workers > 1, "the sequential loop serves workers <= 1");
    let queues = NodeQueues::new(shareds.len());
    let mut stats = SimParallelStats::default();
    let mut timer = RetryTimer::arm(shareds);
    node::enable_wake_buffering();
    std::thread::scope(|scope| {
        // The scheduler thread doubles as a worker (it runs the frontier's
        // first event inline), so the pool only needs `workers - 1`
        // threads; a singleton frontier costs no cross-thread traffic.
        let queues = &queues;
        let pool = TaskPool::new(scope, workers - 1, move |envelope| {
            node::enable_wake_buffering();
            deliver_one(shareds, queues, envelope);
            node::take_buffered_wakes()
        });
        loop {
            // The timed-retry decision sits before *every* pop — the same
            // canonical point as in the sequential loop — so both loops
            // inject identical retransmission rounds.
            if let Some(timer) = timer.as_mut() {
                if timer.fire_if_due(shareds, fabric) {
                    continue;
                }
            }
            // Frontiers are only safe while no deferral queue holds work
            // (see the module docs); otherwise fall back to exact
            // sequential singleton steps until the queues drain.
            if !queues.is_empty() {
                match fabric.next_step() {
                    SimStep::Deliver(envelope) => {
                        stats.steps += 1;
                        deliver_one(shareds, queues, envelope);
                        retry_all(shareds, queues);
                        flush_wakes(fabric);
                        continue;
                    }
                    SimStep::Drained => {
                        if queues.is_empty() {
                            break;
                        }
                        if !make_progress(shareds, fabric, queues) {
                            teardown_or_panic(shareds, panicked, fabric, queues, "drained");
                            break;
                        }
                        continue;
                    }
                    SimStep::Stalled => {
                        if !make_progress(shareds, fabric, queues) {
                            if !fault::fire_retries(shareds, fault::RetryRound::Stalled) {
                                teardown_or_panic(shareds, panicked, fabric, queues, "stalled");
                                break;
                            }
                            if let Some(timer) = timer.as_mut() {
                                timer.rearm_after_stall(shareds);
                            }
                        }
                        continue;
                    }
                }
            }
            match fabric.next_frontier(timer.as_ref().map(|t| t.next_at)) {
                SimFrontier::Deliver(batch) => {
                    stats.frontiers += 1;
                    stats.frontier_events += batch.len() as u64;
                    stats.steps += batch.len() as u64;
                    stats.frontier_high_watermark = stats.frontier_high_watermark.max(batch.len());
                    let mut events = batch.into_iter();
                    let first = events.next().expect("frontiers are never empty");
                    let mut shipped = 0usize;
                    for envelope in events {
                        pool.submit(shipped, envelope);
                        shipped += 1;
                    }
                    stats.dispatched += shipped as u64;
                    deliver_one(shareds, queues, first);
                    let mut wakes = node::take_buffered_wakes();
                    let mut results = pool.collect(shipped);
                    results.sort_by_key(|(index, _)| *index);
                    for (_, outcome) in results {
                        match outcome {
                            Ok(worker_wakes) => wakes.extend(worker_wakes),
                            // Deterministic even in failure: the first
                            // panic in frontier order is re-raised on the
                            // scheduler thread, exactly where the
                            // sequential loop would have panicked.
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    }
                    retry_all(shareds, queues);
                    wakes.extend(node::take_buffered_wakes());
                    for wake in wakes {
                        fabric.agent_unblocked();
                        wake.deliver();
                    }
                }
                SimFrontier::Drained => {
                    // Queues are empty here by the loop invariant.
                    break;
                }
                SimFrontier::Stalled => {
                    if !make_progress(shareds, fabric, queues) {
                        if !fault::fire_retries(shareds, fault::RetryRound::Stalled) {
                            teardown_or_panic(shareds, panicked, fabric, queues, "stalled");
                            break;
                        }
                        if let Some(timer) = timer.as_mut() {
                            timer.rearm_after_stall(shareds);
                        }
                    }
                }
            }
        }
        drop(pool);
    });
    node::disable_wake_buffering();
    stats
}

/// One deterministic retry pass over every node's deferral queue (node
/// order, arrival order within a node).
fn retry_all(shareds: &[Arc<NodeShared>], queues: &NodeQueues) {
    for (i, shared) in shareds.iter().enumerate() {
        let mut serve = queues.nodes[i].lock();
        let serve = &mut *serve;
        node::retry_deferred(shared, &mut serve.deferred, &mut serve.partials);
    }
}

/// Flush the scheduler's buffered reply wakes: re-count each woken agent
/// *before* handing it its reply, so the quiescence count never
/// under-reports. Returns the number of applications woken.
fn flush_wakes(fabric: &SimFabric<ProtocolMsg>) -> usize {
    let wakes = node::take_buffered_wakes();
    let woken = wakes.len();
    for wake in wakes {
        fabric.agent_unblocked();
        wake.deliver();
    }
    woken
}

/// Retry all deferred work once and report whether anything moved: a
/// deferred message (or batch entry) resolved, a new message was sent, or
/// an application was woken.
fn make_progress(
    shareds: &[Arc<NodeShared>],
    fabric: &SimFabric<ProtocolMsg>,
    queues: &NodeQueues,
) -> bool {
    let load_before = queues.load();
    let sent_before = fabric.sent_count();
    retry_all(shareds, queues);
    let woken = flush_wakes(fabric);
    queues.load() < load_before || fabric.sent_count() > sent_before || woken > 0
}

/// A quiescent cluster with no serviceable work left: normal teardown after
/// an application panic (the panic propagates from `Cluster::run`), a
/// protocol/application deadlock otherwise.
fn teardown_or_panic(
    shareds: &[Arc<NodeShared>],
    panicked: &AtomicBool,
    fabric: &SimFabric<ProtocolMsg>,
    queues: &NodeQueues,
    state: &str,
) {
    if panicked.load(Ordering::SeqCst) {
        return;
    }
    let (sent, delivered, dropped, queued) = fabric.counters();
    let deferred = queues.deferred_lens();
    // Distinguish "the fault injection ate something the protocol could not
    // recover from" from a genuine protocol/application deadlock: list what
    // was dropped (and where) so the failing seed is attributable.
    let drops = fabric.drops();
    let loss = if drops.is_empty() {
        "no injected drops — this is a genuine deadlock in the protocol or the application"
            .to_string()
    } else {
        let by_reason = |reason: DropReason| drops.iter().filter(|d| d.reason == reason).count();
        let sample: Vec<String> = drops
            .iter()
            .rev()
            .take(8)
            .map(|d| format!("{}->{}#{}:{}", d.src, d.dst, d.link_seq, d.reason))
            .collect();
        format!(
            "{dropped} injected drops (random {}, partition {}, pause {}); last: [{}] — \
             the recovery machinery ran out of attempts before the run could complete",
            by_reason(DropReason::Random),
            by_reason(DropReason::Partition),
            by_reason(DropReason::Pause),
            sample.join(", "),
        )
    };
    // Wake the parked application threads before panicking: the scheduler's
    // unwind runs `thread::scope`'s join-on-drop, which would otherwise wait
    // forever on threads still parked in `wait_reply` — turning this
    // diagnostic into a silent hang. Each cleared waiter was counted out of
    // the agent tally, so re-count it before it unwinds through
    // `agent_finished`.
    for shared in shareds {
        for _ in 0..shared.abort_pending() {
            fabric.agent_unblocked();
        }
    }
    panic!(
        "sim fabric {state} with no progress possible: every application agent is parked \
         and no serviceable message remains (sent {sent}, delivered {delivered}, \
         queued {queued}, deferred per node {deferred:?}); {loss}; replay the failing \
         seed with DSM_TRACE=1"
    );
}
