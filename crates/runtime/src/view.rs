//! Zero-copy scoped views over shared objects.
//!
//! A [`ReadView`]/[`WriteView`] is the application's window onto one
//! coherence unit: it borrows the engine's object storage *in place* as
//! `&[T]` / `&mut [T]` (via `Deref`), so accesses at the home node touch
//! the home copy directly — no decode into a `Vec<T>`, no encode back.
//!
//! Lifecycle: constructing a view runs the access plan (faulting the object
//! in and, for writes, capturing the twin) and then takes a lease on the
//! object's payload store. Dropping the view releases the lease and
//! unregisters it from the [`NodeCtx`]'s conflict table; for a
//! [`WriteView`] the twin captured at plan time makes the diff bookkeeping
//! automatic — the delta is computed against the twin at the next release,
//! so one write view produces at most one diff per interval no matter how
//! many elements it touched.
//!
//! Views are intentionally scoped *inside* a consistency interval:
//! synchronization operations (`acquire`, `release`, `barrier`) refuse to
//! run while views are live (see
//! [`DsmError::ViewsOutstanding`](dsm_objspace::DsmError)), because the
//! release must flush a complete set of writes, and because a held payload
//! lease would otherwise stall the protocol server while the application
//! blocks on the network. For the same reason, an access that needs a
//! *remote fault-in* is refused while any write view is live
//! ([`DsmError::FetchWithLiveWrites`](dsm_objspace::DsmError)) — take read
//! views freely in any order, but take write views last, after the objects
//! they depend on are resident.

use crate::ctx::NodeCtx;
use dsm_objspace::{Element, ObjectData, ObjectId};
use dsm_util::{RwReadGuard, RwWriteGuard};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// Trailing drop signal of a view: declared *after* the payload guard, so
/// its `Drop` runs once the lease has truly been released (struct fields
/// drop in declaration order, after the view's own `Drop` body). This is
/// the point where the executor's Busy-deferral re-arm may fire — firing
/// it any earlier (e.g. from the views' `Drop` bodies) would let a server
/// retry race a lease that is still held.
struct LeaseReleaseSignal<'ctx> {
    ctx: &'ctx NodeCtx,
}

impl Drop for LeaseReleaseSignal<'_> {
    fn drop(&mut self) {
        self.ctx.lease_released();
    }
}

/// A shared, read-only view of one object's elements, borrowed directly
/// from the engine's storage.
pub struct ReadView<'ctx, T: Element> {
    ctx: &'ctx NodeCtx,
    obj: ObjectId,
    guard: RwReadGuard<ObjectData>,
    // Declared after `guard`: drops after the lease is released.
    _rearm: LeaseReleaseSignal<'ctx>,
    _marker: PhantomData<fn() -> T>,
}

impl<'ctx, T: Element> ReadView<'ctx, T> {
    pub(crate) fn new(ctx: &'ctx NodeCtx, obj: ObjectId, guard: RwReadGuard<ObjectData>) -> Self {
        ReadView {
            ctx,
            obj,
            guard,
            _rearm: LeaseReleaseSignal { ctx },
            _marker: PhantomData,
        }
    }

    /// The viewed object's identity.
    pub fn object_id(&self) -> ObjectId {
        self.obj
    }

    /// The elements, borrowed from engine storage.
    pub fn as_slice(&self) -> &[T] {
        self.guard.as_slice()
    }

    /// Copy the elements into an owned vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Element> Deref for ReadView<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Element> Drop for ReadView<'_, T> {
    fn drop(&mut self) {
        self.ctx.release_view(self.obj, false);
    }
}

impl<T: Element> std::fmt::Debug for ReadView<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadView")
            .field("obj", &self.obj)
            .field("len", &self.as_slice().len())
            .finish()
    }
}

/// An exclusive, writable view of one object's elements, borrowed directly
/// from the engine's storage. Writes become part of the current interval's
/// diff when the view drops (twin captured at construction time).
pub struct WriteView<'ctx, T: Element> {
    ctx: &'ctx NodeCtx,
    obj: ObjectId,
    guard: RwWriteGuard<ObjectData>,
    // Declared after `guard`: drops after the lease is released.
    _rearm: LeaseReleaseSignal<'ctx>,
    _marker: PhantomData<fn() -> T>,
}

impl<'ctx, T: Element> WriteView<'ctx, T> {
    pub(crate) fn new(ctx: &'ctx NodeCtx, obj: ObjectId, guard: RwWriteGuard<ObjectData>) -> Self {
        WriteView {
            ctx,
            obj,
            guard,
            _rearm: LeaseReleaseSignal { ctx },
            _marker: PhantomData,
        }
    }

    /// The viewed object's identity.
    pub fn object_id(&self) -> ObjectId {
        self.obj
    }

    /// The elements, borrowed from engine storage.
    pub fn as_slice(&self) -> &[T] {
        self.guard.as_slice()
    }

    /// The elements, mutably borrowed from engine storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.guard.as_mut_slice()
    }

    /// Copy the elements into an owned vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }
}

impl<T: Element> Deref for WriteView<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Element> DerefMut for WriteView<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Element> Drop for WriteView<'_, T> {
    fn drop(&mut self) {
        self.ctx.release_view(self.obj, true);
    }
}

impl<T: Element> std::fmt::Debug for WriteView<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteView")
            .field("obj", &self.obj)
            .field("len", &self.as_slice().len())
            .finish()
    }
}
