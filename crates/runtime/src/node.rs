//! Per-node shared state and the protocol server.
//!
//! Every simulated node pairs an **application thread** — it runs the user
//! closure through [`crate::NodeCtx`], issues blocking requests
//! (fault-ins, diff flushes, lock acquires, barrier arrivals) and parks on
//! a reply channel — with a **protocol server**: the message pump that
//! drains the node's fabric endpoint, dispatches requests to the protocol
//! engine, sends the produced replies and wakes local waiters. How the
//! server gets CPU time is the cluster's choice (see the "Execution model"
//! section of the crate docs): under the default
//! [`crate::ServerMode::Executor`] all nodes' servers are stepped by the
//! wake-on-send worker pool in `crate::exec`; under
//! [`crate::ServerMode::Polling`] each node gets a dedicated server thread
//! blocking on its channel with a poll timeout.
//!
//! Application and server drive the engine directly through `&self` —
//! there is **no node-global engine mutex**. The [`ProtocolEngine`] is
//! internally lock-striped by `ObjectId`, so an object request being
//! served here never contends with the application thread touching a
//! different object, and the pending-reply table is striped by request id
//! the same way (see the "Locking architecture" section of the crate
//! docs).
//!
//! The server **never blocks on object payloads**: when the engine reports
//! a `Busy` outcome (the application holds a zero-copy view of the copy a
//! request needs), the message is parked on a local deferral queue and
//! retried after subsequent messages — plus, under the executor, whenever
//! the deferral re-arm wakes the node (the application dropping a view
//! re-notifies it), or, under polling, on every poll tick (the tick
//! defaults to 2 ms and is configurable through
//! `ClusterBuilder::poll_interval` / `fast_poll`). Replies to the
//! local application are always processed immediately, which is what makes
//! it safe for the application to block on the network while holding *read*
//! views of other objects. Blocking with a live *write* view could still
//! deadlock two nodes through mutual deferral, so the context refuses
//! remote fault-ins in that state (`DsmError::FetchWithLiveWrites`).

use crate::fault::{self, FaultState};
use crate::vclock::VirtualClock;
use dsm_core::sync::{BarrierOutcome, LockAcquireOutcome};
use dsm_core::{
    DiffBatchResult, DiffEntryStatus, DiffOutcome, ObjectRequestOutcome, ProtocolEngine,
    ProtocolMsg, ReqId,
};
use dsm_model::{ComputeModel, SimDuration, SimTime};
use dsm_net::{Endpoint, MsgCategory, SimEndpoint, TcpEndpoint};
use dsm_objspace::{NodeId, ObjectRegistry};
use dsm_util::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use dsm_util::Mutex;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Whether protocol tracing (`DSM_TRACE=1`) is enabled; resolved once.
/// Unset, empty and `0` all mean disabled.
pub(crate) fn trace_enabled() -> bool {
    static TRACE: OnceLock<bool> = OnceLock::new();
    *TRACE.get_or_init(|| std::env::var("DSM_TRACE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// A node's attachment to whichever fabric the cluster runs on.
///
/// The threaded fabric gives every node a channel endpoint drained by its
/// own server thread; the sim fabric gives it a handle into the central
/// virtual-time scheduler (and carries the agent park/wake notifications of
/// the quiescence protocol — see `crate::sim`).
pub(crate) enum NodeLink {
    /// Channel endpoint of the threaded [`dsm_net::Fabric`].
    Threaded(Endpoint<ProtocolMsg>),
    /// Handle into the deterministic [`dsm_net::SimFabric`].
    Sim(SimEndpoint<ProtocolMsg>),
    /// Socket endpoint of the real [`dsm_net::TcpFabric`] (messages travel
    /// over `127.0.0.1` TCP connections in the `dsm-wire` binary format).
    Tcp(TcpEndpoint<ProtocolMsg>),
}

impl NodeLink {
    fn send(
        &self,
        dst: NodeId,
        category: MsgCategory,
        bytes: u64,
        now: SimTime,
        msg: ProtocolMsg,
    ) -> SimTime {
        match self {
            NodeLink::Threaded(ep) => ep.send(dst, category, bytes, now, msg),
            NodeLink::Sim(ep) => ep.send(dst, category, bytes, now, msg),
            NodeLink::Tcp(ep) => ep.send(dst, category, bytes, now, msg),
        }
    }
}

/// A reply hand-off that has been matched to its waiting request but not
/// yet sent to the application thread.
pub(crate) struct SimWake {
    tx: Sender<Reply>,
    reply: Reply,
}

thread_local! {
    /// The sim scheduler's wake buffer. While `Some`, replies completed on
    /// this thread are parked here instead of waking the application thread
    /// immediately; the scheduler flushes them *after* the current handler
    /// step, so a woken application never runs concurrently with server
    /// logic (which would let two threads race on one link's send order and
    /// break trace determinism).
    static SIM_WAKES: RefCell<Option<Vec<SimWake>>> = const { RefCell::new(None) };
}

/// Park a wake in the thread's buffer; returns it back when buffering is
/// not enabled on this thread (the caller then delivers inline).
fn try_buffer_wake(wake: SimWake) -> Option<SimWake> {
    SIM_WAKES.with(|buffer| match &mut *buffer.borrow_mut() {
        Some(wakes) => {
            wakes.push(wake);
            None
        }
        None => Some(wake),
    })
}

/// Enable wake buffering on the calling (scheduler) thread.
pub(crate) fn enable_wake_buffering() {
    SIM_WAKES.with(|buffer| *buffer.borrow_mut() = Some(Vec::new()));
}

/// Disable wake buffering on the calling thread.
///
/// # Panics
/// Panics if un-flushed wakes would be dropped (scheduler bug).
pub(crate) fn disable_wake_buffering() {
    SIM_WAKES.with(|buffer| {
        let left = buffer.borrow_mut().take();
        assert!(
            left.is_none_or(|wakes| wakes.is_empty()),
            "sim scheduler dropped buffered wakes"
        );
    });
}

/// Drain the calling thread's buffered wakes.
pub(crate) fn take_buffered_wakes() -> Vec<SimWake> {
    SIM_WAKES.with(|buffer| match &mut *buffer.borrow_mut() {
        Some(wakes) => std::mem::take(wakes),
        None => Vec::new(),
    })
}

impl SimWake {
    /// Deliver the buffered reply, waking the application thread.
    pub(crate) fn deliver(self) {
        // The application thread may have already given up only if the
        // whole run is being torn down; losing the reply is then fine.
        let _ = self.tx.send(self.reply);
    }
}

/// A reply delivered to a blocked application-thread request.
#[derive(Debug)]
pub(crate) struct Reply {
    /// The reply message.
    pub msg: ProtocolMsg,
    /// Virtual arrival time of the reply at this node.
    pub arrival: SimTime,
}

/// Number of stripes of the pending-reply table. Request ids are allocated
/// sequentially per node, so consecutive in-flight requests land on
/// different stripes; a power of two keeps the index a mask.
const PENDING_STRIPES: usize = 8;

/// One stripe of the pending-reply table.
type PendingStripe = Mutex<HashMap<ReqId, Sender<Reply>>>;

/// State shared between one node's application thread and server thread.
pub(crate) struct NodeShared {
    pub node: NodeId,
    pub num_nodes: usize,
    /// The internally lock-striped engine; both threads call it directly.
    pub engine: ProtocolEngine,
    pub registry: Arc<ObjectRegistry>,
    pub link: NodeLink,
    pub clock: VirtualClock,
    pub compute: ComputeModel,
    pub handling_cost: SimDuration,
    pub seed: u64,
    /// How long the server loop waits for a message before retrying its
    /// deferral queue and checking for shutdown.
    pub poll_interval: Duration,
    /// Whether the release path groups same-home diff flushes into
    /// `DiffBatch` messages (see `ClusterBuilder::flush_batching`).
    pub flush_batching: bool,
    /// Timeout/retry, dedup and home re-election state — `Some` only on
    /// lossy sim fabrics, where messages can be dropped (see `crate::fault`).
    pub fault: Option<FaultState>,
    /// Pending-reply senders, striped by request id so completing a reply
    /// for one request never contends with registering another.
    pending: Box<[PendingStripe]>,
    next_req: AtomicU64,
    shutdown: AtomicBool,
    /// Idle server wakeups: poll-loop timeout ticks that found nothing to
    /// do (polling mode), surfaced so the executor's zero-idle-wakeup claim
    /// is assertable against the polling baseline.
    idle_wakeups: AtomicU64,
    /// The executor's re-arm hook (unset in polling and sim modes):
    /// view-lease releases and teardown aborts re-schedule this node's
    /// server steps through it.
    rearm: OnceLock<crate::exec::RearmHook>,
}

impl NodeShared {
    #[allow(clippy::too_many_arguments)] // one-call-site constructor mirroring the builder's knobs
    pub fn new(
        engine: ProtocolEngine,
        link: NodeLink,
        compute: ComputeModel,
        handling_cost: SimDuration,
        seed: u64,
        poll_interval: Duration,
        flush_batching: bool,
        fault: Option<FaultState>,
    ) -> Arc<Self> {
        Arc::new(NodeShared {
            node: engine.node(),
            num_nodes: engine.num_nodes(),
            registry: Arc::clone(engine.registry()),
            engine,
            link,
            clock: VirtualClock::new(),
            compute,
            handling_cost,
            seed,
            poll_interval,
            flush_batching,
            fault,
            pending: (0..PENDING_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_req: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            idle_wakeups: AtomicU64::new(0),
            rearm: OnceLock::new(),
        })
    }

    /// Attach the executor's re-arm hook (first attach wins; polling and
    /// sim runs never attach one).
    pub(crate) fn attach_rearm(&self, hook: crate::exec::RearmHook) {
        let _ = self.rearm.set(hook);
    }

    /// Called (indirectly, from the view guards' trailing drop signal)
    /// after a view's payload lease has truly been released: re-arms the
    /// executor's deferred work for this node. No-op outside executor mode.
    pub(crate) fn view_lease_released(&self) {
        if let Some(hook) = self.rearm.get() {
            hook.lease_released();
        }
    }

    /// Count one idle poll-loop wakeup (a timeout tick with nothing to do).
    pub(crate) fn note_idle_tick(&self) {
        self.idle_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Idle server wakeups recorded so far (polling mode).
    pub(crate) fn idle_wakeup_count(&self) -> u64 {
        self.idle_wakeups.load(Ordering::Relaxed)
    }

    /// Non-blocking receive from this node's fabric endpoint (executor
    /// steps; the sim fabric owns delivery itself and never lands here).
    pub(crate) fn link_try_recv(&self) -> Option<dsm_net::Envelope<ProtocolMsg>> {
        match &self.link {
            NodeLink::Threaded(ep) => ep.try_recv(),
            NodeLink::Tcp(ep) => ep.try_recv(),
            NodeLink::Sim(_) => unreachable!("executor stepped a sim-fabric node"),
        }
    }

    /// Messages currently queued on this node's inbound endpoint.
    pub(crate) fn link_pending(&self) -> usize {
        match &self.link {
            NodeLink::Threaded(ep) => ep.pending(),
            NodeLink::Tcp(ep) => ep.pending(),
            NodeLink::Sim(_) => unreachable!("executor stepped a sim-fabric node"),
        }
    }

    /// Whether the fabric side of this node is fully drained for teardown:
    /// nothing queued, and (on TCP) every peer's leave received.
    pub(crate) fn link_drained(&self) -> bool {
        match &self.link {
            NodeLink::Threaded(ep) => ep.pending() == 0,
            NodeLink::Tcp(ep) => ep.pending() == 0 && ep.all_peers_left(),
            NodeLink::Sim(_) => unreachable!("executor stepped a sim-fabric node"),
        }
    }

    /// Announce the TCP leave frame (idempotent); no-op on other fabrics.
    pub(crate) fn link_announce_leave(&self) {
        if let NodeLink::Tcp(ep) = &self.link {
            ep.announce_leave();
        }
    }

    /// This node's inbound queue-depth high-watermark (`None` on the sim
    /// fabric, which has no per-node inbound queue).
    pub(crate) fn link_queue_high_watermark(&self) -> Option<usize> {
        match &self.link {
            NodeLink::Threaded(ep) => Some(ep.queue_high_watermark()),
            NodeLink::Tcp(ep) => Some(ep.queue_high_watermark()),
            NodeLink::Sim(_) => None,
        }
    }

    /// The pending-table stripe for `req`.
    fn pending_stripe(&self, req: ReqId) -> &PendingStripe {
        &self.pending[(req.0 as usize) & (PENDING_STRIPES - 1)]
    }

    /// Allocate a request id unique within this node.
    pub fn new_req(&self) -> ReqId {
        // The node id is folded into the high bits so request ids are unique
        // cluster-wide, which makes debugging message traces easier.
        let seq = self.next_req.fetch_add(1, Ordering::Relaxed);
        ReqId((u64::from(self.node.0) << 48) | seq)
    }

    /// Register interest in the reply to `req` and return the channel to
    /// wait on.
    pub fn register_pending(&self, req: ReqId) -> Receiver<Reply> {
        let (tx, rx) = bounded(1);
        let previous = self.pending_stripe(req).lock().insert(req, tx);
        assert!(previous.is_none(), "duplicate pending request id {req:?}");
        rx
    }

    /// Deliver a reply to a locally blocked request (no network involved,
    /// e.g. the manager node granting its own lock request).
    pub fn deliver_local(&self, req: ReqId, msg: ProtocolMsg) {
        let arrival = self.clock.now();
        self.complete(req, msg, arrival);
    }

    /// Complete a pending request with a reply that arrived at `arrival`.
    pub fn complete(&self, req: ReqId, msg: ProtocolMsg, arrival: SimTime) {
        if let Some(fault) = &self.fault {
            fault.clear(req);
        }
        let slot = self.pending_stripe(req).lock().remove(&req);
        match slot {
            Some(tx) => {
                let wake = SimWake {
                    tx,
                    reply: Reply { msg, arrival },
                };
                match &self.link {
                    NodeLink::Sim(ep) => {
                        // Scheduler-side completions are buffered so the
                        // woken application resumes only after the handler
                        // step finished (`crate::sim` flushes them, pairing
                        // each with an `agent_unblocked`). App-stack local
                        // deliveries wake inline; the +1 here cancels
                        // against the -1 of the `wait_reply` that follows.
                        if let Some(wake) = try_buffer_wake(wake) {
                            ep.agent_unblocked();
                            wake.deliver();
                        }
                    }
                    NodeLink::Threaded(_) | NodeLink::Tcp(_) => wake.deliver(),
                }
            }
            None => {
                // Under a lossy fabric a request can be answered twice: its
                // reply was re-sent from the server's dedup cache because a
                // retransmission raced the original reply. The duplicate is
                // dropped on the floor.
                assert!(
                    self.fault.is_some(),
                    "reply for unknown request {req:?} delivered to {} ({msg:?})",
                    self.node
                );
            }
        }
    }

    /// Send a one-way protocol message; virtual send time is the node's
    /// current clock. Under a lossy fabric, replies and acknowledgements
    /// are remembered by the request id they answer so duplicates of the
    /// answered request can be served from cache.
    pub fn send(&self, dst: NodeId, msg: ProtocolMsg) {
        fault::note_sent(self, dst, &msg);
        let category = msg.category();
        let bytes = msg.payload_bytes();
        let now = self.clock.now();
        self.link.send(dst, category, bytes, now, msg);
    }

    /// Send a one-way message that must survive loss: tracked for
    /// retransmission until the matching acknowledgement clears it. Falls
    /// back to a plain send on lossless fabrics.
    pub fn send_tracked(&self, dst: NodeId, req: ReqId, msg: ProtocolMsg) {
        if let Some(fault) = &self.fault {
            fault.track(req, dst, msg.clone());
        }
        self.send(dst, msg);
    }

    /// Park until the reply to an already-registered request arrives, and
    /// return it. In sim mode this is the agent-park notification point of
    /// the quiescence protocol: the fabric learns the application thread is
    /// about to block *after* every message it was going to send has been
    /// sent.
    pub fn wait_reply(&self, rx: &Receiver<Reply>) -> Reply {
        if let NodeLink::Sim(ep) = &self.link {
            ep.agent_blocked();
        }
        rx.recv()
            .expect("cluster shut down while a request was outstanding")
    }

    /// Issue a blocking request: send `msg` to `dst`, park until the reply
    /// arrives, merge the reply's arrival time into the local clock and
    /// return the reply message.
    pub fn request(&self, dst: NodeId, req: ReqId, msg: ProtocolMsg) -> ProtocolMsg {
        if trace_enabled() {
            eprintln!("[{}] request -> {} {:?}", self.node, dst, msg);
        }
        let rx = self.register_pending(req);
        if let Some(fault) = &self.fault {
            fault.track(req, dst, msg.clone());
        }
        self.send(dst, msg);
        let reply = self.wait_reply(&rx);
        self.clock.merge(reply.arrival);
        reply.msg
    }

    /// Drop every pending-reply sender, waking parked application threads
    /// with a disconnect. Used by the sim runner to tear the cluster down
    /// after an application panic (the threaded runner's servers keep
    /// serving until every application thread joined; the sim scheduler has
    /// no one left to serve for). Returns the number of waiters woken, so
    /// the caller can re-balance the fabric's agent count — each woken
    /// thread unwinds and reports `agent_finished` on its way out.
    pub fn abort_pending(&self) -> usize {
        if let Some(fault) = &self.fault {
            fault.abort();
        }
        let mut cleared = 0;
        for stripe in self.pending.iter() {
            let mut stripe = stripe.lock();
            cleared += stripe.len();
            stripe.clear();
        }
        // In executor mode the abort must also wake parked workers so the
        // pool re-runs its drain/termination check.
        if let Some(hook) = self.rearm.get() {
            hook.schedule();
        }
        cleared
    }

    /// Request the server loop to stop after the current message.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    pub(crate) fn should_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// Server-local bookkeeping for partially processed diff batches: results
/// of the entries already resolved, keyed by the batch's request id, while
/// the still-busy entries wait on the deferral queue. Purely receiver-side
/// state — it never crosses the wire.
pub(crate) type BatchPartials = HashMap<ReqId, Vec<DiffBatchResult>>;

/// The protocol server loop for one node of a *threaded* cluster. Runs
/// until shutdown is requested and both the endpoint and the deferral queue
/// have been drained. (Sim-mode clusters have no per-node server threads;
/// `crate::sim` drives the same `handle_request` from the event scheduler.)
pub(crate) fn server_loop(shared: &Arc<NodeShared>) {
    let NodeLink::Threaded(endpoint) = &shared.link else {
        unreachable!("server_loop spawned for a sim-fabric node");
    };
    // Messages whose payload store was leased to an application view when
    // they arrived; retried after every subsequent message and poll tick.
    let mut deferred: VecDeque<(NodeId, ProtocolMsg)> = VecDeque::new();
    let mut partials: BatchPartials = HashMap::new();
    loop {
        match endpoint.recv_timeout(shared.poll_interval) {
            Ok(envelope) => {
                if trace_enabled() {
                    eprintln!(
                        "[{}] serve from {} {:?}",
                        shared.node, envelope.src, envelope.payload
                    );
                }
                // Protocol handling shares the node's (virtual) CPU.
                shared
                    .clock
                    .merge_and_advance(envelope.arrival, shared.handling_cost);
                let arrival = envelope.arrival;
                let src = envelope.src;
                let msg = envelope.payload;
                if msg.is_reply() {
                    let req = msg.reply_req().expect("reply carries request id");
                    shared.complete(req, msg, arrival);
                } else if !fault::admit_request(shared, &msg) {
                    // Duplicate of an already-seen request: absorbed, or
                    // answered from the reply cache by `admit_request`.
                } else if let Some(busy) = handle_request(shared, src, msg, &mut partials) {
                    deferred.push_back((src, busy));
                }
                retry_deferred(shared, &mut deferred, &mut partials);
            }
            Err(RecvTimeoutError::Timeout) => {
                shared.note_idle_tick();
                retry_deferred(shared, &mut deferred, &mut partials);
                if shared.should_shutdown() && endpoint.pending() == 0 && deferred.is_empty() {
                    debug_assert!(
                        partials.is_empty(),
                        "batch partials outlived their deferred entries"
                    );
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Give every deferred message one more chance, preserving arrival order
/// among the still-busy ones.
pub(crate) fn retry_deferred(
    shared: &Arc<NodeShared>,
    deferred: &mut VecDeque<(NodeId, ProtocolMsg)>,
    partials: &mut BatchPartials,
) {
    for _ in 0..deferred.len() {
        let (src, msg) = deferred.pop_front().expect("length checked by loop");
        if let Some(busy) = handle_request(shared, src, msg, partials) {
            deferred.push_back((src, busy));
        }
    }
}

/// Dispatch one incoming (non-reply) protocol message. Returns the message
/// back when the engine reported a busy payload store — for a `DiffBatch`,
/// a residual batch holding only the still-busy entries — so the caller can
/// defer and retry it.
pub(crate) fn handle_request(
    shared: &Arc<NodeShared>,
    src: NodeId,
    msg: ProtocolMsg,
    partials: &mut BatchPartials,
) -> Option<ProtocolMsg> {
    // Batches are taken by value: their entries are consumed one at a time
    // and only the busy remainder is re-queued.
    let msg = match msg {
        ProtocolMsg::DiffBatch { req, entries, from } => {
            return handle_diff_batch(shared, req, entries, from, partials)
        }
        other => other,
    };
    match &msg {
        ProtocolMsg::ObjectRequest {
            req,
            obj,
            requester,
            for_write,
            redirections,
        } => {
            let (req, obj, requester) = (*req, *obj, *requester);
            let outcome =
                shared
                    .engine
                    .handle_object_request(obj, requester, *for_write, *redirections);
            match outcome {
                ObjectRequestOutcome::Busy => return Some(msg),
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    notify,
                } => {
                    // New-home notifications (broadcast / manager mechanisms)
                    // are sent before the reply so their virtual send time is
                    // the migration instant.
                    let epoch = migration.as_ref().map_or(0, |grant| grant.epoch());
                    for target in notify {
                        shared.send(
                            target,
                            ProtocolMsg::HomeNotify {
                                obj,
                                new_home: requester,
                                epoch,
                            },
                        );
                    }
                    shared.send(
                        requester,
                        ProtocolMsg::ObjectReply {
                            req,
                            obj,
                            data,
                            version,
                            migration,
                        },
                    );
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    shared.send(
                        requester,
                        ProtocolMsg::ObjectRedirect {
                            req,
                            obj,
                            new_home: hint,
                            epoch,
                        },
                    );
                }
            }
        }
        ProtocolMsg::DiffFlush {
            req,
            obj,
            diff,
            from,
            redirections,
        } => {
            let (req, obj, from) = (*req, *obj, *from);
            let outcome = shared.engine.handle_diff(obj, diff, from, *redirections);
            match outcome {
                DiffOutcome::Busy => return Some(msg),
                DiffOutcome::Applied { new_version } => {
                    shared.send(
                        from,
                        ProtocolMsg::DiffAck {
                            req,
                            obj,
                            version: new_version,
                        },
                    );
                }
                DiffOutcome::Redirect { hint, epoch } => {
                    shared.send(
                        from,
                        ProtocolMsg::DiffRedirect {
                            req,
                            obj,
                            new_home: hint,
                            epoch,
                        },
                    );
                }
            }
        }
        ProtocolMsg::LockAcquire {
            req,
            lock,
            requester,
        } => {
            let outcome = shared.engine.lock_acquire(*lock, *requester, *req);
            if outcome == LockAcquireOutcome::Granted {
                shared.send(
                    *requester,
                    ProtocolMsg::LockGrant {
                        req: *req,
                        lock: *lock,
                    },
                );
            }
            // Queued: the grant is sent when the current holder releases.
        }
        ProtocolMsg::LockRelease { lock, holder, req } => {
            let outcome = shared.engine.lock_release(*lock, *holder);
            if let Some((next, grant_req)) = outcome.grant_next {
                dispatch_lock_grant(shared, *lock, next, grant_req);
            }
            // `ReqId(0)` marks the legacy fire-and-forget release of
            // lossless fabrics; a tracked release wants its ack.
            if req.0 != 0 {
                shared.send(
                    *holder,
                    ProtocolMsg::LockReleaseAck {
                        req: *req,
                        lock: *lock,
                    },
                );
            }
        }
        ProtocolMsg::LockReleaseAck { req, .. } => {
            fault::handle_ack(shared, *req);
        }
        ProtocolMsg::BarrierArrive {
            req,
            barrier,
            node,
            epoch,
        } => {
            let outcome = shared.engine.barrier_arrive(*barrier, *node, *req);
            if let BarrierOutcome::Complete {
                waiters,
                epoch: done,
            } = outcome
            {
                debug_assert_eq!(done, *epoch, "barrier epoch mismatch");
                dispatch_barrier_release(shared, *barrier, done, waiters);
            }
        }
        ProtocolMsg::HomeNotify {
            obj,
            new_home,
            epoch,
        } => {
            shared.engine.handle_home_notify(*obj, *new_home, *epoch);
        }
        ProtocolMsg::HomeLookup { req, obj } => {
            let home = shared.engine.handle_home_lookup(*obj);
            shared.send(
                src,
                ProtocolMsg::HomeLookupReply {
                    req: *req,
                    obj: *obj,
                    home,
                },
            );
        }
        ProtocolMsg::HomeElect {
            req,
            obj,
            suspect,
            candidate,
            epoch,
            has_copy,
        } => {
            let (home, epoch) = shared
                .engine
                .handle_home_elect(*obj, *suspect, *candidate, *epoch, *has_copy);
            shared.send(
                src,
                ProtocolMsg::HomeElectReply {
                    req: *req,
                    obj: *obj,
                    home,
                    epoch,
                },
            );
        }
        ProtocolMsg::HomeElectReply {
            req,
            obj,
            home,
            epoch,
        } => {
            fault::handle_elect_reply(shared, *req, *obj, *home, *epoch);
        }
        ProtocolMsg::HomeFence {
            req,
            obj,
            new_home,
            epoch,
        } => {
            shared.engine.handle_home_notify(*obj, *new_home, *epoch);
            shared.send(
                src,
                ProtocolMsg::HomeFenceAck {
                    req: *req,
                    obj: *obj,
                },
            );
        }
        ProtocolMsg::HomeFenceAck { req, .. } => {
            fault::handle_ack(shared, *req);
        }
        ProtocolMsg::Shutdown => {
            shared.request_shutdown();
        }
        other => panic!("server received unexpected message {other:?}"),
    }
    None
}

/// Serve one `DiffBatch`: resolve every entry independently under the
/// engine's shard locks (exactly as k individual `DiffFlush` messages
/// would, preserving the deferral scheme's deadlock-freedom argument), and
/// answer with a single `DiffBatchAck` once no entry is pending.
///
/// * `Applied` / `Redirect` outcomes become per-entry results in the ack —
///   a redirect means the entry's home migrated mid-flight and the flusher
///   re-plans that entry individually.
/// * `Busy` entries (payload leased to a live application view) are
///   returned as a residual batch for the caller's deferral queue, with the
///   already-resolved results parked in `partials`; the server never blocks.
fn handle_diff_batch(
    shared: &Arc<NodeShared>,
    req: ReqId,
    entries: Vec<dsm_core::DiffBatchEntry>,
    from: NodeId,
    partials: &mut BatchPartials,
) -> Option<ProtocolMsg> {
    let mut results = partials.remove(&req).unwrap_or_default();
    let mut still_busy = Vec::new();
    for entry in entries {
        // Entries arrive with zero redirection hops of their own: the batch
        // was addressed directly to the believed home.
        match shared.engine.handle_diff(entry.obj, &entry.diff, from, 0) {
            DiffOutcome::Applied { new_version } => results.push(DiffBatchResult {
                obj: entry.obj,
                status: DiffEntryStatus::Applied {
                    version: new_version,
                },
            }),
            DiffOutcome::Redirect { hint, epoch } => results.push(DiffBatchResult {
                obj: entry.obj,
                status: DiffEntryStatus::Redirect {
                    new_home: hint,
                    epoch,
                },
            }),
            DiffOutcome::Busy => still_busy.push(entry),
        }
    }
    if still_busy.is_empty() {
        shared.send(from, ProtocolMsg::DiffBatchAck { req, results });
        None
    } else {
        partials.insert(req, results);
        Some(ProtocolMsg::DiffBatch {
            req,
            entries: still_busy,
            from,
        })
    }
}

/// Send (or locally deliver) a lock grant to the next holder.
pub(crate) fn dispatch_lock_grant(
    shared: &Arc<NodeShared>,
    lock: dsm_objspace::LockId,
    next: NodeId,
    req: ReqId,
) {
    let grant = ProtocolMsg::LockGrant { req, lock };
    if next == shared.node {
        shared.deliver_local(req, grant);
    } else {
        shared.send(next, grant);
    }
}

/// Send (or locally deliver) barrier releases to every waiter of a completed
/// phase.
pub(crate) fn dispatch_barrier_release(
    shared: &Arc<NodeShared>,
    barrier: dsm_objspace::BarrierId,
    epoch: u64,
    waiters: Vec<(NodeId, ReqId)>,
) {
    for (node, req) in waiters {
        let release = ProtocolMsg::BarrierRelease {
            req,
            barrier,
            epoch,
        };
        if node == shared.node {
            shared.deliver_local(req, release);
        } else {
            shared.send(node, release);
        }
    }
}
