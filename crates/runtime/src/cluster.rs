//! Cluster construction and execution.

use crate::ctx::NodeCtx;
use crate::node::{server_loop, NodeShared};
use crate::report::ExecutionReport;
use dsm_core::{ProtocolConfig, ProtocolEngine, ProtocolMsg, ProtocolStats};
use dsm_model::ComputeModel;
use dsm_net::{Fabric, StatsCollector};
use dsm_objspace::ObjectRegistry;
use std::sync::Arc;
use std::thread;

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated cluster nodes (the paper evaluates 2–16).
    pub num_nodes: usize,
    /// Coherence protocol configuration (migration policy, notification
    /// mechanism, network model).
    pub protocol: ProtocolConfig,
    /// Computation cost model used by `NodeCtx::compute`.
    pub compute: ComputeModel,
}

impl ClusterConfig {
    /// Create a configuration with the default computation model
    /// (≈ 2 GHz Pentium 4).
    pub fn new(num_nodes: usize, protocol: ProtocolConfig) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        ClusterConfig {
            num_nodes,
            protocol,
            compute: ComputeModel::default(),
        }
    }

    /// Replace the computation cost model.
    #[must_use]
    pub fn with_compute(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }
}

/// A simulated cluster ready to run one application.
pub struct Cluster {
    config: ClusterConfig,
    registry: ObjectRegistry,
}

impl Cluster {
    /// Build a cluster from a configuration and the registry of shared
    /// objects the application will use.
    pub fn new(config: ClusterConfig, registry: ObjectRegistry) -> Self {
        Cluster { config, registry }
    }

    /// Run `app` on every node (one application thread per node, exactly as
    /// the paper's distributed JVM dispatches one Java thread per cluster
    /// node) and return the merged execution report.
    ///
    /// # Panics
    /// Propagates a panic from any application thread after shutting the
    /// cluster down.
    pub fn run<F>(self, app: F) -> ExecutionReport
    where
        F: Fn(&NodeCtx) + Send + Sync,
    {
        let Cluster { config, registry } = self;
        let num_nodes = config.num_nodes;
        let registry = Arc::new(registry);
        let stats = StatsCollector::new();
        let fabric: Fabric<ProtocolMsg> =
            Fabric::new(num_nodes, config.protocol.network, stats.clone());

        let shareds: Vec<Arc<NodeShared>> = fabric
            .into_endpoints()
            .into_iter()
            .map(|endpoint| {
                let engine = ProtocolEngine::new(
                    endpoint.node(),
                    num_nodes,
                    config.protocol.clone(),
                    Arc::clone(&registry),
                );
                NodeShared::new(
                    engine,
                    endpoint,
                    config.compute,
                    config.protocol.handling_cost,
                )
            })
            .collect();

        thread::scope(|scope| {
            // Protocol server threads.
            for shared in &shareds {
                let shared = Arc::clone(shared);
                scope.spawn(move || server_loop(&shared));
            }
            // Application threads.
            let app = &app;
            let mut handles = Vec::with_capacity(num_nodes);
            for shared in &shareds {
                let shared = Arc::clone(shared);
                handles.push(scope.spawn(move || {
                    let ctx = NodeCtx::new(shared);
                    app(&ctx);
                }));
            }
            // Join application threads, then stop the servers even if an
            // application thread panicked (otherwise the scope would wait on
            // server loops forever).
            let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            for shared in &shareds {
                shared.request_shutdown();
            }
            for result in results {
                if let Err(payload) = result {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        // Assemble the report.
        let node_times: Vec<_> = shareds.iter().map(|s| s.clock.now()).collect();
        let execution_time = node_times
            .iter()
            .copied()
            .max()
            .unwrap_or_default()
            .saturating_since(dsm_model::SimTime::ZERO);
        let mut protocol = ProtocolStats::default();
        for shared in &shareds {
            protocol.merge(shared.engine.lock().stats());
        }
        ExecutionReport {
            execution_time,
            node_times,
            network: stats.snapshot(),
            protocol,
            num_nodes,
            policy_label: config.protocol.migration.label(),
        }
    }
}
