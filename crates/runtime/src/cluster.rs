//! Cluster construction and execution.
//!
//! The preferred construction path is the chainable, seeded
//! [`ClusterBuilder`] (see [`Cluster::builder`]): it owns the object
//! registry, carries a default home-assignment policy for the objects it
//! registers, and replaces the positional `ClusterConfig::new` + `with_*`
//! sprawl. [`ClusterConfig`] remains as the plain value the builder
//! produces, which workload entry points accept directly.

use crate::ctx::NodeCtx;
use crate::exec::Executor;
use crate::fault::{FaultConfig, FaultState};
use crate::handle::{ArrayHandle, Matrix2dHandle, ScalarHandle};
use crate::node::{server_loop, NodeLink, NodeShared};
use crate::report::{ExecutionReport, SchedulerReport};
use crate::sim::{sim_server_loop, sim_server_loop_parallel, AppAgent};
use crate::tcp::tcp_server_loop;
use dsm_core::{
    IntoMigrationPolicy, NotificationMechanism, ProtocolConfig, ProtocolEngine, ProtocolMsg,
    ProtocolStats,
};
use dsm_model::{ComputeModel, NetworkParams};
use dsm_net::{
    Fabric, MembershipReport, SimConfig, SimFabric, StatsCollector, TcpConfig, TcpEndpoint,
    TcpFabric,
};
use dsm_objspace::{Element, HomeAssignment, NodeId, ObjectId, ObjectRegistry};
use dsm_wire::ProtocolCodec;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Which fabric a cluster runs its protocol traffic over.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FabricMode {
    /// The channel-based threaded fabric: one protocol server thread per
    /// node, message interleaving decided by the OS scheduler (the
    /// default, and the fastest wall-clock option on many cores).
    #[default]
    Threaded,
    /// The deterministic simulation fabric: a seeded virtual-time scheduler
    /// owns delivery, applies the configured perturbations, and records a
    /// replayable [`dsm_net::DeliveryTrace`] into the execution report.
    /// Event-driven — the poll interval is unused in this mode.
    Sim(SimConfig),
    /// The real TCP fabric: every node binds a `127.0.0.1` listener and the
    /// full mesh of ordered socket connections carries the protocol in the
    /// `dsm-wire` binary format, with join-time membership exchange and
    /// heartbeat liveness (surfaced in [`ExecutionReport::membership`]).
    /// Message interleaving is OS-scheduled, as in threaded mode; results
    /// are fingerprint-identical to the other fabrics.
    Tcp(TcpConfig),
}

/// How the protocol servers of the threaded and TCP fabrics are driven.
/// (The sim fabric has its own virtual-time scheduler and ignores this.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// The event-driven executor (the default): a bounded worker pool
    /// multiplexes the server-side protocol handling of all nodes, driven
    /// by wake-on-send notifications from the fabric. Idle workers park on
    /// a condvar — a quiet cluster performs zero timer wakeups — and the
    /// pool size decouples cluster size from thread count, so 256+-node
    /// clusters run on one machine. Tune the pool with
    /// [`ClusterBuilder::executor_workers`].
    #[default]
    Executor,
    /// One polling `recv_timeout` server thread per node (the pre-executor
    /// behaviour), kept behind this flag for A/B comparisons against the
    /// executor. Retry cadence and idle cost are governed by
    /// [`ClusterBuilder::poll_interval`] / [`ClusterBuilder::fast_poll`].
    Polling,
}

/// Default protocol-server poll interval: how long a polling-mode server
/// thread waits for a message before retrying deferred work and checking
/// for shutdown ([`ServerMode::Polling`] only; the executor is
/// event-driven).
pub const DEFAULT_POLL_INTERVAL: Duration = Duration::from_millis(2);

/// The short poll interval selected by [`ClusterBuilder::fast_poll`]: stress
/// suites use it to retry deferred (busy) messages quickly, trading idle CPU
/// for wall-clock time.
pub const FAST_POLL_INTERVAL: Duration = Duration::from_micros(100);

/// Configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated cluster nodes (the paper evaluates 2–16).
    pub num_nodes: usize,
    /// Coherence protocol configuration (migration policy, notification
    /// mechanism, network model).
    pub protocol: ProtocolConfig,
    /// Computation cost model used by `NodeCtx::compute`.
    pub compute: ComputeModel,
    /// Cluster seed, exposed to applications through `NodeCtx::seed` /
    /// `NodeCtx::node_rng` for deterministic workload generation.
    pub seed: u64,
    /// Protocol-server poll interval (real time, not virtual): the retry
    /// cadence for deferred busy messages and the shutdown-check period.
    pub poll_interval: Duration,
    /// Whether release-time diff flushes to the same home are batched into
    /// one `DiffBatch` message (on by default). Disable to reproduce the
    /// paper-faithful wire behaviour of one `DiffFlush` per dirty object.
    pub flush_batching: bool,
    /// The fabric the cluster runs on (threaded by default; see
    /// [`ClusterBuilder::sim_fabric`] for the deterministic sim mode).
    pub fabric: FabricMode,
    /// How the protocol servers are driven on the threaded and TCP fabrics
    /// (event-driven executor by default; see [`ServerMode`]).
    pub server_mode: ServerMode,
    /// Executor worker-pool size; `0` (the default) sizes the pool to
    /// `min(available cores, num_nodes)`. Ignored in polling and sim modes.
    pub executor_workers: usize,
}

impl ClusterConfig {
    /// Create a configuration with the default computation model
    /// (≈ 2 GHz Pentium 4), seed 0 and the default poll interval. Prefer
    /// [`Cluster::builder`].
    pub fn new(num_nodes: usize, protocol: ProtocolConfig) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        ClusterConfig {
            num_nodes,
            protocol,
            compute: ComputeModel::default(),
            seed: 0,
            poll_interval: DEFAULT_POLL_INTERVAL,
            flush_batching: true,
            fabric: FabricMode::Threaded,
            server_mode: ServerMode::default(),
            executor_workers: 0,
        }
    }

    /// Replace the server-scheduling mode (see [`ServerMode`]).
    #[must_use]
    pub fn with_server_mode(mut self, mode: ServerMode) -> Self {
        self.server_mode = mode;
        self
    }

    /// Replace the executor worker-pool size (`0` = auto; see
    /// [`ClusterBuilder::executor_workers`]).
    #[must_use]
    pub fn with_executor_workers(mut self, workers: usize) -> Self {
        self.executor_workers = workers;
        self
    }

    /// Replace the computation cost model.
    #[must_use]
    pub fn with_compute(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }

    /// Replace the cluster seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the protocol-server poll interval.
    ///
    /// # Panics
    /// Panics if `interval` is zero (the server would spin).
    #[must_use]
    pub fn with_poll_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "poll interval must be non-zero");
        self.poll_interval = interval;
        self
    }

    /// Enable or disable release-time flush batching (see
    /// [`ClusterBuilder::flush_batching`]).
    #[must_use]
    pub fn with_flush_batching(mut self, enabled: bool) -> Self {
        self.flush_batching = enabled;
        self
    }

    /// Replace the fabric mode (see [`ClusterBuilder::sim_fabric`]).
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricMode) -> Self {
        self.fabric = fabric;
        self
    }

    /// Run on the deterministic sim fabric with the default seeded
    /// perturbations — the config-value form of
    /// [`ClusterBuilder::sim_fabric`].
    #[must_use]
    pub fn with_sim_fabric(self, seed: u64) -> Self {
        self.with_fabric(FabricMode::Sim(SimConfig::perturbed(seed)))
    }

    /// Run on the real TCP fabric with default timeouts — the config-value
    /// form of [`ClusterBuilder::tcp_fabric`].
    #[must_use]
    pub fn with_tcp_fabric(self) -> Self {
        self.with_fabric(FabricMode::Tcp(TcpConfig::default()))
    }
}

/// Chainable, seeded cluster construction: nodes, protocol pieces, compute
/// model, network parameters and the default home assignment for objects
/// registered through the builder.
///
/// ```no_run
/// use dsm_runtime::Cluster;
/// use dsm_core::MigrationPolicy;
/// use dsm_objspace::HomeAssignment;
///
/// let mut cluster = Cluster::builder()
///     .nodes(8)
///     .migration(MigrationPolicy::adaptive())
///     .seed(2004)
///     .default_home(HomeAssignment::RoundRobin);
/// let counter = cluster.register_scalar::<u64>("counter");
/// let report = cluster.build().run(move |ctx| {
///     // ... use `counter` through ctx views ...
/// });
/// ```
#[derive(Debug, Clone)]
#[must_use = "a ClusterBuilder does nothing until .build() or .config() — \
              every chainable setter returns the (moved) builder"]
pub struct ClusterBuilder {
    nodes: usize,
    protocol: ProtocolConfig,
    compute: ComputeModel,
    seed: u64,
    default_home: HomeAssignment,
    poll_interval: Duration,
    flush_batching: bool,
    fabric: FabricMode,
    server_mode: ServerMode,
    executor_workers: usize,
    registry: ObjectRegistry,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            nodes: 2,
            protocol: ProtocolConfig::adaptive(),
            compute: ComputeModel::default(),
            seed: 0,
            default_home: HomeAssignment::CreationNode,
            poll_interval: DEFAULT_POLL_INTERVAL,
            flush_batching: true,
            fabric: FabricMode::Threaded,
            server_mode: ServerMode::default(),
            executor_workers: 0,
            registry: ObjectRegistry::new(),
        }
    }
}

impl ClusterBuilder {
    /// Start from the defaults: 2 nodes, adaptive protocol, Pentium-4-class
    /// compute model, creation-node home assignment, seed 0.
    pub fn new() -> Self {
        ClusterBuilder::default()
    }

    /// Set the number of simulated nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is zero.
    pub fn nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "cluster must have at least one node");
        self.nodes = nodes;
        self
    }

    /// Replace the whole protocol configuration.
    pub fn protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Replace the cluster-wide default home-migration policy. Accepts a
    /// `MigrationPolicy` description (`MigrationPolicy::adaptive()`), a
    /// built-in policy value (`HysteresisPolicy::default()`), or any shared
    /// `Arc<dyn HomeMigrationPolicy>` — see `dsm_core::policy` for the
    /// trait contract.
    pub fn migration(mut self, migration: impl IntoMigrationPolicy) -> Self {
        self.protocol = self.protocol.with_migration(migration);
        self
    }

    /// Override the home-migration policy for a single object, so one
    /// cluster runs different policies on different objects (handles expose
    /// their [`ObjectId`] via `handle.id` / `handle.id()`). Objects without
    /// an override use the cluster-wide [`Self::migration`] policy.
    pub fn object_policy(mut self, obj: ObjectId, policy: impl IntoMigrationPolicy) -> Self {
        self.protocol = self.protocol.with_object_policy(obj, policy);
        self
    }

    /// Replace the new-home notification mechanism.
    pub fn notification(mut self, notification: NotificationMechanism) -> Self {
        self.protocol = self.protocol.with_notification(notification);
        self
    }

    /// Replace the network parameters (affects virtual time and α).
    pub fn network(mut self, network: NetworkParams) -> Self {
        self.protocol = self.protocol.with_network(network);
        self
    }

    /// Replace the computation cost model.
    pub fn compute(mut self, compute: ComputeModel) -> Self {
        self.compute = compute;
        self
    }

    /// Set the cluster seed (exposed as `NodeCtx::seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the default home assignment used by the builder's `register_*`
    /// helpers.
    pub fn default_home(mut self, assignment: HomeAssignment) -> Self {
        self.default_home = assignment;
        self
    }

    /// Set the protocol-server poll interval (real time): how quickly a
    /// *polling-mode* server thread retries deferred busy messages and
    /// notices shutdown.
    ///
    /// **Deprecation note:** the default [`ServerMode::Executor`] is
    /// event-driven and never consults this interval — deferred work is
    /// re-armed by view-lease releases and servers wake on message
    /// arrival. This knob only matters under
    /// [`Self::server_mode`]`(`[`ServerMode::Polling`]`)` (kept for A/B
    /// comparisons) and the executor knobs
    /// ([`Self::executor_workers`]) are the ones to reach for.
    ///
    /// # Panics
    /// Panics if `interval` is zero (the server would spin).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "poll interval must be non-zero");
        self.poll_interval = interval;
        self
    }

    /// Choose how the protocol servers are driven on the threaded and TCP
    /// fabrics: the event-driven [`ServerMode::Executor`] pool (default) or
    /// the legacy one-polling-thread-per-node [`ServerMode::Polling`].
    pub fn server_mode(mut self, mode: ServerMode) -> Self {
        self.server_mode = mode;
        self
    }

    /// Size the executor's worker pool explicitly. `0` (the default) picks
    /// `min(available cores, num_nodes)`; `1` serializes all server-side
    /// protocol handling onto a single worker (useful for equivalence
    /// testing). Ignored in polling and sim modes.
    pub fn executor_workers(mut self, workers: usize) -> Self {
        self.executor_workers = workers;
        self
    }

    /// Enable or disable **release-time flush batching** (on by default):
    /// when an interval releases, the diffs of all dirty objects that share
    /// the same (believed) home travel as one `DiffBatch` message — one
    /// per-message start-up time instead of one per object — and entries
    /// whose home migrated mid-flight are re-planned individually from the
    /// per-entry redirect hints in the ack. Disabling it restores the
    /// paper-faithful wire behaviour of one `DiffFlush` (and one ack) per
    /// dirty object, which the unbatched benchmark baselines measure.
    pub fn flush_batching(mut self, enabled: bool) -> Self {
        self.flush_batching = enabled;
        self
    }

    /// Use the short stress-suite poll interval ([`FAST_POLL_INTERVAL`]):
    /// deferred messages are retried every 100 µs instead of every 2 ms,
    /// which keeps contention-heavy *polling-mode* runs fast at the price
    /// of busier idle server threads.
    ///
    /// **Deprecation note:** under the default [`ServerMode::Executor`]
    /// this is unnecessary — Busy deferrals re-arm on the releasing view's
    /// drop, with no retry timer at all. See [`Self::poll_interval`].
    pub fn fast_poll(self) -> Self {
        self.poll_interval(FAST_POLL_INTERVAL)
    }

    /// Run on the **deterministic simulation fabric** with the default
    /// seeded perturbations ([`SimConfig::perturbed`]): message delivery is
    /// owned by a seeded virtual-time scheduler with event-driven wakeups
    /// (the poll interval is unused), per-link latency jitter, bounded
    /// reordering and bursty delay spikes reshape the schedule, and the
    /// execution report carries a replayable
    /// [`delivery trace`](ExecutionReport::delivery_trace) — the same seed
    /// reproduces it bit-identically, a different seed explores a different
    /// interleaving. Use [`ClusterBuilder::fabric`] with an explicit
    /// [`SimConfig`] (e.g. [`SimConfig::calm`] / [`SimConfig::stormy`]) to
    /// tune the perturbations.
    pub fn sim_fabric(self, seed: u64) -> Self {
        self.fabric(FabricMode::Sim(SimConfig::perturbed(seed)))
    }

    /// Run on the **real TCP fabric** with default timeouts: every node
    /// binds a listener on an ephemeral `127.0.0.1` port, the nodes
    /// exchange a join handshake and connect a full mesh of ordered socket
    /// connections, and all protocol traffic crosses real sockets in the
    /// `dsm-wire` binary format. Modeled virtual time still travels inside
    /// every message, so execution-time and traffic figures are identical
    /// to the in-process fabrics; the execution report additionally carries
    /// each node's heartbeat-driven [`membership view`](MembershipReport).
    /// Use [`ClusterBuilder::fabric`] with an explicit [`TcpConfig`] to
    /// tune heartbeat cadence and liveness thresholds.
    pub fn tcp_fabric(self) -> Self {
        self.fabric(FabricMode::Tcp(TcpConfig::default()))
    }

    /// Replace the fabric mode (threaded, or sim with an explicit
    /// perturbation configuration).
    pub fn fabric(mut self, fabric: FabricMode) -> Self {
        self.fabric = fabric;
        self
    }

    /// Register an array object under the default home assignment, created
    /// by the master node.
    pub fn register_array<T: Element>(&mut self, name: &str, len: usize) -> ArrayHandle<T> {
        ArrayHandle::register(
            &mut self.registry,
            name,
            0,
            len,
            NodeId::MASTER,
            self.default_home,
        )
    }

    /// Register a scalar object under the default home assignment.
    pub fn register_scalar<T: Element>(&mut self, name: &str) -> ScalarHandle<T> {
        ScalarHandle::register(&mut self.registry, name, NodeId::MASTER, self.default_home)
    }

    /// Register a `rows × cols` matrix (one object per row) under the
    /// default home assignment.
    pub fn register_matrix<T: Element>(
        &mut self,
        name: &str,
        rows: usize,
        cols: usize,
    ) -> Matrix2dHandle<T> {
        Matrix2dHandle::register(
            &mut self.registry,
            name,
            rows,
            cols,
            NodeId::MASTER,
            self.default_home,
        )
    }

    /// Direct access to the builder's registry, for registrations the
    /// helpers do not cover (immutable objects, per-node creators).
    pub fn registry_mut(&mut self) -> &mut ObjectRegistry {
        &mut self.registry
    }

    /// The [`ClusterConfig`] this builder currently describes.
    pub fn config(&self) -> ClusterConfig {
        ClusterConfig {
            num_nodes: self.nodes,
            protocol: self.protocol.clone(),
            compute: self.compute,
            seed: self.seed,
            poll_interval: self.poll_interval,
            flush_batching: self.flush_batching,
            fabric: self.fabric.clone(),
            server_mode: self.server_mode,
            executor_workers: self.executor_workers,
        }
    }

    /// Build the cluster with the builder's own registry.
    pub fn build(self) -> Cluster {
        let config = self.config();
        Cluster::new(config, self.registry)
    }

    /// Build the cluster with an externally assembled registry (the
    /// builder's own registrations are discarded).
    pub fn build_with(self, registry: ObjectRegistry) -> Cluster {
        Cluster::new(self.config(), registry)
    }
}

/// A simulated cluster ready to run one application.
pub struct Cluster {
    config: ClusterConfig,
    registry: ObjectRegistry,
}

impl Cluster {
    /// Start a chainable [`ClusterBuilder`].
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::new()
    }

    /// Build a cluster from a configuration and the registry of shared
    /// objects the application will use.
    pub fn new(config: ClusterConfig, registry: ObjectRegistry) -> Self {
        Cluster { config, registry }
    }

    /// Run `app` on every node (one application thread per node, exactly as
    /// the paper's distributed JVM dispatches one Java thread per cluster
    /// node) and return the merged execution report.
    ///
    /// With [`FabricMode::Threaded`] (the default) every node also gets a
    /// protocol server thread and message interleaving is whatever the OS
    /// scheduler produces; with [`FabricMode::Sim`] the calling thread runs
    /// a deterministic, event-driven virtual-time scheduler instead and the
    /// report carries a replayable delivery trace.
    ///
    /// # Panics
    /// Propagates a panic from any application thread after shutting the
    /// cluster down.
    pub fn run<F>(self, app: F) -> ExecutionReport
    where
        F: Fn(&NodeCtx) + Send + Sync,
    {
        match self.config.fabric.clone() {
            FabricMode::Threaded => self.run_threaded(app),
            FabricMode::Sim(sim) => self.run_sim(app, sim),
            FabricMode::Tcp(tcp) => self.run_tcp(app, tcp),
        }
    }

    /// The threaded runner: OS-scheduled delivery over in-process channels,
    /// served by the event-driven executor pool (default) or by one polling
    /// server thread per node ([`ServerMode::Polling`]).
    fn run_threaded<F>(self, app: F) -> ExecutionReport
    where
        F: Fn(&NodeCtx) + Send + Sync,
    {
        let Cluster { config, registry } = self;
        let num_nodes = config.num_nodes;
        let registry = Arc::new(registry);
        let stats = StatsCollector::new();
        let fabric: Fabric<ProtocolMsg> =
            Fabric::new(num_nodes, config.protocol.network, stats.clone());
        let wake_hub = fabric.wake_hub();

        let shareds: Vec<Arc<NodeShared>> = fabric
            .into_endpoints()
            .into_iter()
            .map(|endpoint| {
                let engine = ProtocolEngine::new(
                    endpoint.node(),
                    num_nodes,
                    config.protocol.clone(),
                    Arc::clone(&registry),
                );
                NodeShared::new(
                    engine,
                    NodeLink::Threaded(endpoint),
                    config.compute,
                    config.protocol.handling_cost,
                    config.seed,
                    config.poll_interval,
                    config.flush_batching,
                    None,
                )
            })
            .collect();

        let scheduler = match config.server_mode {
            ServerMode::Executor => {
                let workers = effective_workers(config.executor_workers, num_nodes);
                let executor =
                    Executor::new((0..num_nodes).map(|n| NodeId(n as u16)).collect(), workers);
                wake_hub.install(executor.notifier());
                for (slot, shared) in shareds.iter().enumerate() {
                    shared.attach_rearm(executor.hook(slot));
                }
                run_apps_with_executor(&executor, &shareds, &app);
                executor.report(queue_depth_high_watermark(&shareds))
            }
            ServerMode::Polling => {
                thread::scope(|scope| {
                    // Protocol server threads.
                    for shared in &shareds {
                        let shared = Arc::clone(shared);
                        scope.spawn(move || server_loop(&shared));
                    }
                    // Application threads.
                    let app = &app;
                    let mut handles = Vec::with_capacity(num_nodes);
                    for shared in &shareds {
                        let shared = Arc::clone(shared);
                        handles.push(scope.spawn(move || {
                            let ctx = NodeCtx::new(shared);
                            app(&ctx);
                        }));
                    }
                    // Join application threads, then stop the servers even
                    // if an application thread panicked (otherwise the scope
                    // would wait on server loops forever).
                    let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                    for shared in &shareds {
                        shared.request_shutdown();
                    }
                    for result in results {
                        if let Err(payload) = result {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
                polling_report(&shareds)
            }
        };

        assemble_report(&config, &shareds, &stats, None, None, Some(scheduler))
    }

    /// The TCP runner: every node binds a `127.0.0.1` listener, the mesh is
    /// connected through the join handshake, and per-node server threads
    /// drain real sockets. Teardown is the leave handshake (see
    /// `crate::tcp`), after which the wire counters are reconciled against
    /// the modeled network statistics.
    fn run_tcp<F>(self, app: F, tcp: TcpConfig) -> ExecutionReport
    where
        F: Fn(&NodeCtx) + Send + Sync,
    {
        let Cluster { config, registry } = self;
        let num_nodes = config.num_nodes;
        let registry = Arc::new(registry);
        let stats = StatsCollector::new();
        let fabric: TcpFabric<ProtocolMsg> = TcpFabric::bind_local::<ProtocolCodec>(
            num_nodes,
            config.protocol.network,
            stats.clone(),
            tcp,
        )
        .expect("failed to bind the TCP fabric on 127.0.0.1");

        let shareds: Vec<Arc<NodeShared>> = fabric
            .into_endpoints()
            .into_iter()
            .map(|endpoint| {
                let engine = ProtocolEngine::new(
                    endpoint.node(),
                    num_nodes,
                    config.protocol.clone(),
                    Arc::clone(&registry),
                );
                NodeShared::new(
                    engine,
                    NodeLink::Tcp(endpoint),
                    config.compute,
                    config.protocol.handling_cost,
                    config.seed,
                    config.poll_interval,
                    config.flush_batching,
                    None,
                )
            })
            .collect();

        let scheduler = match config.server_mode {
            ServerMode::Executor => {
                let workers = effective_workers(config.executor_workers, num_nodes);
                let executor =
                    Executor::new((0..num_nodes).map(|n| NodeId(n as u16)).collect(), workers);
                for (slot, shared) in shareds.iter().enumerate() {
                    let NodeLink::Tcp(ep) = &shared.link else {
                        unreachable!("TCP runner built a non-TCP link");
                    };
                    ep.install_notifier(executor.notifier());
                    shared.attach_rearm(executor.hook(slot));
                }
                run_apps_with_executor(&executor, &shareds, &app);
                executor.report(queue_depth_high_watermark(&shareds))
            }
            ServerMode::Polling => {
                thread::scope(|scope| {
                    for shared in &shareds {
                        let shared = Arc::clone(shared);
                        scope.spawn(move || tcp_server_loop(&shared));
                    }
                    let app = &app;
                    let mut handles = Vec::with_capacity(num_nodes);
                    for shared in &shareds {
                        let shared = Arc::clone(shared);
                        handles.push(scope.spawn(move || {
                            let ctx = NodeCtx::new(shared);
                            app(&ctx);
                        }));
                    }
                    // As in threaded mode: join applications first, then
                    // release the servers into the leave handshake even if
                    // an application thread panicked.
                    let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                    for shared in &shareds {
                        shared.request_shutdown();
                    }
                    for result in results {
                        if let Err(payload) = result {
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
                polling_report(&shareds)
            }
        };

        // Capture each node's liveness view before teardown stops the
        // heartbeat threads, then close the sockets.
        let endpoints: Vec<&TcpEndpoint<ProtocolMsg>> = shareds
            .iter()
            .map(|shared| match &shared.link {
                NodeLink::Tcp(ep) => ep,
                _ => unreachable!("TCP runner built a non-TCP link"),
            })
            .collect();
        let membership = MembershipReport {
            views: endpoints.iter().map(|ep| ep.membership()).collect(),
        };
        for ep in &endpoints {
            ep.finish();
        }

        // Wire-level reconciliation: after the leave handshake every payload
        // frame that was sent was delivered (per-link FIFO puts all payloads
        // before the leave), and the socket-side accounting of modeled bytes
        // matches the network statistics recorded at send time.
        let mut frames_sent = 0u64;
        let mut frames_delivered = 0u64;
        let mut modeled_sent = 0u64;
        for ep in &endpoints {
            let counters = ep.wire_counters();
            frames_sent += counters.payload_frames_sent;
            frames_delivered += counters.payload_frames_delivered;
            modeled_sent += counters.modeled_bytes_sent;
        }
        let network = stats.snapshot();
        assert_eq!(
            frames_sent, frames_delivered,
            "TCP fabric lost payload frames: {frames_sent} sent, {frames_delivered} delivered"
        );
        assert_eq!(
            frames_sent,
            network.total_messages(),
            "wire frame count and network statistics disagree"
        );
        assert_eq!(
            modeled_sent,
            network.total_bytes(),
            "wire-level modeled bytes and network statistics disagree"
        );

        assemble_report(
            &config,
            &shareds,
            &stats,
            None,
            Some(membership),
            Some(scheduler),
        )
    }

    /// Run one node of a **multi-process** TCP cluster and return this
    /// node's (single-node) execution report.
    ///
    /// The in-process runners own all N endpoints; a worker owns exactly
    /// one, created by `dsm_net::TcpNodeBinding::bind` in its own process
    /// and connected after the processes exchanged listener addresses
    /// (see the `tcp_cluster` binary in `dsm-bench` for the launcher side).
    /// `stats` must be the collector the binding was created with. The
    /// returned report covers this node only — node 0's report is the
    /// conventional place to read workload results from, and cluster-wide
    /// statistics are the sum of the workers' reports.
    ///
    /// # Panics
    /// Panics if the endpoint's cluster size disagrees with the
    /// configuration, or if the application thread panics.
    pub fn run_tcp_worker<F>(
        self,
        endpoint: TcpEndpoint<ProtocolMsg>,
        stats: StatsCollector,
        app: F,
    ) -> ExecutionReport
    where
        F: Fn(&NodeCtx) + Send + Sync,
    {
        let Cluster { config, registry } = self;
        let num_nodes = config.num_nodes;
        assert_eq!(
            endpoint.num_nodes(),
            num_nodes,
            "endpoint cluster size disagrees with the cluster configuration"
        );
        let registry = Arc::new(registry);
        let engine = ProtocolEngine::new(
            endpoint.node(),
            num_nodes,
            config.protocol.clone(),
            Arc::clone(&registry),
        );
        let shared = NodeShared::new(
            engine,
            NodeLink::Tcp(endpoint),
            config.compute,
            config.protocol.handling_cost,
            config.seed,
            config.poll_interval,
            config.flush_batching,
            None,
        );

        let shareds = [shared];
        let scheduler = match config.server_mode {
            ServerMode::Executor => {
                // One hosted node: the pool defaults to a single worker,
                // woken by this process's TCP readers (and self-sends).
                let workers = effective_workers(config.executor_workers, 1);
                let executor = Executor::new(vec![shareds[0].node], workers);
                let NodeLink::Tcp(ep) = &shareds[0].link else {
                    unreachable!("TCP worker built a non-TCP link");
                };
                ep.install_notifier(executor.notifier());
                shareds[0].attach_rearm(executor.hook(0));
                run_apps_with_executor(&executor, &shareds, &app);
                executor.report(queue_depth_high_watermark(&shareds))
            }
            ServerMode::Polling => {
                let shared = &shareds[0];
                thread::scope(|scope| {
                    let server = {
                        let shared = Arc::clone(shared);
                        scope.spawn(move || tcp_server_loop(&shared))
                    };
                    let result = {
                        let shared = Arc::clone(shared);
                        scope
                            .spawn(move || {
                                let ctx = NodeCtx::new(shared);
                                app(&ctx);
                            })
                            .join()
                    };
                    shared.request_shutdown();
                    if let Err(payload) = result {
                        std::panic::resume_unwind(payload);
                    }
                    let _ = server.join();
                });
                polling_report(&shareds)
            }
        };

        let NodeLink::Tcp(ep) = &shareds[0].link else {
            unreachable!("TCP worker built a non-TCP link");
        };
        let membership = MembershipReport {
            views: vec![ep.membership()],
        };
        ep.finish();
        assemble_report(
            &config,
            &shareds,
            &stats,
            None,
            Some(membership),
            Some(scheduler),
        )
    }

    /// The sim runner: no server threads, no polling — the calling thread
    /// schedules every delivery deterministically (see `crate::sim`).
    fn run_sim<F>(self, app: F, sim: SimConfig) -> ExecutionReport
    where
        F: Fn(&NodeCtx) + Send + Sync,
    {
        let Cluster { config, registry } = self;
        let num_nodes = config.num_nodes;
        let registry = Arc::new(registry);
        let stats = StatsCollector::new();
        let fabric: SimFabric<ProtocolMsg> =
            SimFabric::new(num_nodes, config.protocol.network, stats.clone(), sim);

        let shareds: Vec<Arc<NodeShared>> = fabric
            .endpoints()
            .into_iter()
            .map(|endpoint| {
                let engine = ProtocolEngine::new(
                    endpoint.node(),
                    num_nodes,
                    config.protocol.clone(),
                    Arc::clone(&registry),
                );
                // Lossy fabrics need the recovery machinery (timeouts,
                // retransmission, dedup, re-election); lossless ones must
                // not have it, so genuine deadlocks still panic loudly.
                let fault = sim
                    .is_lossy()
                    .then(|| FaultState::new(FaultConfig::sim_default()));
                NodeShared::new(
                    engine,
                    NodeLink::Sim(endpoint),
                    config.compute,
                    config.protocol.handling_cost,
                    config.seed,
                    config.poll_interval,
                    config.flush_batching,
                    fault,
                )
            })
            .collect();

        let panicked = AtomicBool::new(false);
        let first_panic = std::sync::atomic::AtomicUsize::new(crate::sim::NO_PANIC);
        let mut parallel_stats = None;
        thread::scope(|scope| {
            let app = &app;
            let fabric = &fabric;
            let panicked = &panicked;
            let first_panic = &first_panic;
            let mut handles = Vec::with_capacity(num_nodes);
            for (node, shared) in shareds.iter().enumerate() {
                let shared = Arc::clone(shared);
                handles.push(scope.spawn(move || {
                    // Marks the agent finished on unwind too, so a panicking
                    // application cannot wedge the scheduler.
                    let _agent = AppAgent::new(fabric, panicked, first_panic, node);
                    let ctx = NodeCtx::new(shared);
                    app(&ctx);
                }));
            }
            // The calling thread is the deterministic scheduler. Worker
            // counts above one select the frontier scheduler; either way
            // the same seed replays the same bit-identical trace.
            if sim.workers > 1 {
                parallel_stats = Some(sim_server_loop_parallel(
                    &shareds,
                    fabric,
                    panicked,
                    sim.workers,
                ));
            } else {
                sim_server_loop(&shareds, fabric, panicked);
            }
            if panicked.load(Ordering::SeqCst) {
                // Unblock application threads parked on replies that will
                // never come (their peer died); they observe a disconnect
                // and unwind with a secondary "cluster shut down" panic.
                // Each parked waiter was counted out of the agent tally, so
                // re-count it before it unwinds through `agent_finished`.
                for shared in &shareds {
                    for _ in 0..shared.abort_pending() {
                        fabric.agent_unblocked();
                    }
                }
            }
            let mut results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            // Re-raise the panic of the node that failed *first* — the
            // other Errs are teardown fallout, and resuming one of those
            // would hide the real failure message.
            let original = first_panic.load(Ordering::SeqCst);
            if original != crate::sim::NO_PANIC {
                if let Err(payload) = std::mem::replace(&mut results[original], Ok(())) {
                    std::panic::resume_unwind(payload);
                }
            }
            for result in results {
                if let Err(payload) = result {
                    std::panic::resume_unwind(payload);
                }
            }
        });

        // Message-count reconciliation between the engines' view (network
        // statistics recorded at send time) and the fabric's delivery
        // bookkeeping: every sent message was either delivered exactly once
        // or recorded as an injected drop (lossy configs), and nothing is
        // still queued. Retransmissions are ordinary sends, so they
        // reconcile like any other message.
        let (sent, delivered, dropped, queued) = fabric.counters();
        assert_eq!(
            sent,
            delivered + dropped,
            "sim fabric lost messages: {sent} sent, {delivered} delivered, {dropped} dropped"
        );
        assert_eq!(
            queued, 0,
            "sim fabric finished with {queued} queued messages"
        );
        let trace = fabric.take_trace();
        assert_eq!(
            trace.len() as u64 + trace.drops.len() as u64,
            stats.snapshot().total_messages(),
            "delivery trace (deliveries + drops) and network statistics disagree on \
             message count"
        );
        // Single-worker sim runs have no server threads or inbound queues,
        // so they report no scheduler; the frontier scheduler reports its
        // dispatch counters.
        let scheduler = parallel_stats.map(|p: crate::sim::SimParallelStats| SchedulerReport {
            mode: "sim-parallel",
            workers: sim.workers,
            steps: p.steps,
            wakeups: p.dispatched,
            idle_wakeups: 0,
            renotifies: 0,
            rearm_requeues: 0,
            runnable_high_watermark: 0,
            parked_high_watermark: 0,
            queue_depth_high_watermark: 0,
            frontiers: p.frontiers,
            frontier_events: p.frontier_events,
            frontier_high_watermark: p.frontier_high_watermark,
        });
        assemble_report(&config, &shareds, &stats, Some(trace), None, scheduler)
    }
}

/// The executor pool size for a run: an explicit request wins; `0` (auto)
/// sizes the pool to `min(available cores, num_nodes)`.
fn effective_workers(requested: usize, num_nodes: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(num_nodes)
        .max(1)
}

/// Spawn the executor's worker pool and the per-node application threads in
/// one scope, join the applications, and drive the pool through teardown.
/// Shared by the threaded, in-process-TCP and TCP-worker runners.
fn run_apps_with_executor<F>(executor: &Executor, shareds: &[Arc<NodeShared>], app: &F)
where
    F: Fn(&NodeCtx) + Send + Sync,
{
    // Sweep every inbound queue once: wakes that fired before the notifier
    // was installed were dropped (a TCP peer may already have sent).
    executor.prime();
    thread::scope(|scope| {
        for _ in 0..executor.workers() {
            scope.spawn(|| executor.run_worker(shareds));
        }
        let mut handles = Vec::with_capacity(shareds.len());
        for shared in shareds {
            let shared = Arc::clone(shared);
            handles.push(scope.spawn(move || {
                let ctx = NodeCtx::new(shared);
                app(&ctx);
            }));
        }
        // Join application threads first; then release the pool into its
        // drain/termination protocol even if an application panicked — the
        // workers must exit before the scope can close.
        let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        for shared in shareds {
            shared.request_shutdown();
        }
        executor.begin_shutdown();
        for result in results {
            if let Err(payload) = result {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

/// The deepest any node's inbound queue ever got across the run.
fn queue_depth_high_watermark(shareds: &[Arc<NodeShared>]) -> usize {
    shareds
        .iter()
        .filter_map(|shared| shared.link_queue_high_watermark())
        .max()
        .unwrap_or(0)
}

/// Scheduler counters of a polling-mode run: one server thread per node,
/// one idle wakeup per poll-tick timeout.
fn polling_report(shareds: &[Arc<NodeShared>]) -> SchedulerReport {
    SchedulerReport {
        mode: "polling",
        workers: shareds.len(),
        steps: 0,
        wakeups: 0,
        idle_wakeups: shareds.iter().map(|s| s.idle_wakeup_count()).sum(),
        renotifies: 0,
        rearm_requeues: 0,
        runnable_high_watermark: 0,
        parked_high_watermark: 0,
        queue_depth_high_watermark: queue_depth_high_watermark(shareds),
        frontiers: 0,
        frontier_events: 0,
        frontier_high_watermark: 0,
    }
}

/// Merge per-node clocks and statistics into the final report.
fn assemble_report(
    config: &ClusterConfig,
    shareds: &[Arc<NodeShared>],
    stats: &StatsCollector,
    delivery_trace: Option<dsm_net::DeliveryTrace>,
    membership: Option<MembershipReport>,
    scheduler: Option<SchedulerReport>,
) -> ExecutionReport {
    let node_times: Vec<_> = shareds.iter().map(|s| s.clock.now()).collect();
    let execution_time = node_times
        .iter()
        .copied()
        .max()
        .unwrap_or_default()
        .saturating_since(dsm_model::SimTime::ZERO);
    let mut protocol = ProtocolStats::default();
    for shared in shareds {
        protocol.merge(&shared.engine.stats());
    }
    ExecutionReport {
        execution_time,
        node_times,
        network: stats.snapshot(),
        protocol,
        num_nodes: config.num_nodes,
        policy_label: config.protocol.migration.label().to_string(),
        delivery_trace,
        membership,
        scheduler,
    }
}
