//! Experiment reports.
//!
//! One [`ExecutionReport`] summarizes a cluster run: virtual execution time
//! (what Figure 2/3/5(a) plot), network statistics (message counts and bytes
//! — Figures 3 and 5(b)) and merged protocol counters (migrations,
//! redirections, fault-ins — used for the analysis sections).

use dsm_core::{PolicyTelemetry, ProtocolStats};
use dsm_model::{SimDuration, SimTime};
use dsm_net::{DeliveryTrace, MembershipReport, MsgCategory, NetworkStats};

/// Server-scheduling counters of one run: how the protocol servers were
/// driven (event-driven executor pool vs. per-node polling threads) and
/// what it cost. The idle-wakeup counter is the executor's headline number
/// — a quiet cluster performs zero timer wakeups under the executor, while
/// every polling server burns one wakeup per poll tick.
#[derive(Debug, Clone)]
pub struct SchedulerReport {
    /// `"executor"` (wake-on-send worker pool) or `"polling"` (one
    /// `recv_timeout` server thread per node).
    pub mode: &'static str,
    /// Server threads used: pool size in executor mode, one per node in
    /// polling mode.
    pub workers: usize,
    /// Handler steps executed (executor mode; 0 when polling).
    pub steps: u64,
    /// Wake-on-send notifications that marked a node runnable (executor
    /// mode; 0 when polling).
    pub wakeups: u64,
    /// Idle server wakeups: handler steps that found nothing to do
    /// (executor) or poll-tick timeouts (polling). The executor's
    /// fewer-idle-wakeups win over polling is asserted on this field.
    pub idle_wakeups: u64,
    /// Notifications that arrived while the node was mid-step (the
    /// finishing worker re-queued it; executor mode).
    pub renotifies: u64,
    /// Busy-deferral re-arm races resolved by a worker-side re-queue: the
    /// view lease was released between the final retry and the epoch check
    /// (executor mode).
    pub rearm_requeues: u64,
    /// Deepest the runnable queue ever got (executor mode).
    pub runnable_high_watermark: usize,
    /// Most workers ever parked at once (executor mode).
    pub parked_high_watermark: usize,
    /// Deepest any node's inbound message queue ever got, across the
    /// cluster — a scheduling stall (a node falling behind its arrivals)
    /// shows up here.
    pub queue_depth_high_watermark: usize,
    /// Conflict-free delivery frontiers dispatched (sim-parallel mode; 0
    /// otherwise). Together with [`SchedulerReport::frontier_events`] this
    /// gives the mean frontier width — the scheduler's effective
    /// parallelism, bounded above by the worker count.
    pub frontiers: u64,
    /// Events delivered through frontiers (sim-parallel mode; equals
    /// `steps` there).
    pub frontier_events: u64,
    /// Widest frontier ever dispatched (sim-parallel mode; 0 otherwise).
    pub frontier_high_watermark: usize,
}

/// Summary of one cluster run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Virtual execution time of the run: the maximum final clock over all
    /// nodes (the slowest node defines completion, as on a real cluster).
    pub execution_time: SimDuration,
    /// Final virtual clock of every node, in node order.
    pub node_times: Vec<SimTime>,
    /// Aggregated network statistics (all nodes).
    pub network: NetworkStats,
    /// Merged protocol statistics (all nodes).
    pub protocol: ProtocolStats,
    /// Number of simulated cluster nodes.
    pub num_nodes: usize,
    /// Label of the migration policy that produced this run ("AT", "FT2", ...).
    pub policy_label: String,
    /// The complete, replayable delivery history of the run when it ran on
    /// the sim fabric (`ClusterBuilder::sim_fabric`); `None` on the
    /// threaded fabric. The same cluster seed + fabric seed reproduce this
    /// trace bit-identically.
    pub delivery_trace: Option<DeliveryTrace>,
    /// Per-node heartbeat liveness views when the run used the TCP fabric
    /// (`ClusterBuilder::tcp_fabric`); `None` on the in-process fabrics.
    /// Captured at the end of the run, before teardown stops the heartbeat
    /// threads — on a healthy cluster every view reports every peer alive.
    /// The liveness classification is observational for now: a suspect or
    /// dead peer is surfaced here, not acted upon.
    pub membership: Option<MembershipReport>,
    /// Server-scheduling counters (executor, polling or sim-parallel
    /// mode); `None` on single-worker sim runs, whose virtual-time
    /// scheduler has neither server threads nor inbound queues. Parallel
    /// sim runs (`SimConfig::with_workers` > 1) report their frontier
    /// counters here under mode `"sim-parallel"`.
    pub scheduler: Option<SchedulerReport>,
}

impl ExecutionReport {
    /// Total protocol messages (all categories).
    pub fn total_messages(&self) -> u64 {
        self.network.total_messages()
    }

    /// Total network traffic in bytes.
    pub fn total_traffic_bytes(&self) -> u64 {
        self.network.total_bytes()
    }

    /// Message count for the paper's Figure 5(b) breakdown (obj + mig +
    /// diff + redir; synchronization excluded).
    pub fn breakdown_messages(&self) -> u64 {
        self.network.breakdown_messages()
    }

    /// Messages of one category.
    pub fn messages(&self, category: MsgCategory) -> u64 {
        self.network.category(category).count
    }

    /// Number of home migrations performed during the run.
    pub fn migrations(&self) -> u64 {
        self.protocol.migrations()
    }

    /// Number of redirection replies served during the run.
    pub fn redirections(&self) -> u64 {
        self.protocol.redirections_served
    }

    /// The merged home-migration decision telemetry: decisions considered
    /// vs. taken, migrate-backs and the threshold trajectory.
    pub fn policy_telemetry(&self) -> &PolicyTelemetry {
        &self.protocol.policy
    }

    /// Migrations that returned an object's home to the node it had just
    /// left — the ping-pong events hysteresis policies exist to damp.
    pub fn migrate_backs(&self) -> u64 {
        self.protocol.policy.migrate_backs
    }

    /// Fraction of considered migration decisions that migrated (0 when no
    /// decision was considered).
    pub fn migration_rate(&self) -> f64 {
        let t = &self.protocol.policy;
        if t.decisions_considered == 0 {
            return 0.0;
        }
        t.decisions_migrate as f64 / t.decisions_considered as f64
    }

    /// Relative improvement of this run over a `baseline` run in execution
    /// time, as a fraction (0.25 = 25 % faster). Matches the "improvement of
    /// AT over FT" metric of Figure 3.
    pub fn time_improvement_over(&self, baseline: &ExecutionReport) -> f64 {
        let base = baseline.execution_time.as_micros();
        if base == 0.0 {
            return 0.0;
        }
        (base - self.execution_time.as_micros()) / base
    }

    /// Relative reduction in total message count compared to `baseline`.
    pub fn message_improvement_over(&self, baseline: &ExecutionReport) -> f64 {
        let base = baseline.total_messages() as f64;
        if base == 0.0 {
            return 0.0;
        }
        (base - self.total_messages() as f64) / base
    }

    /// Relative reduction in network traffic compared to `baseline`.
    pub fn traffic_improvement_over(&self, baseline: &ExecutionReport) -> f64 {
        let base = baseline.total_traffic_bytes() as f64;
        if base == 0.0 {
            return 0.0;
        }
        (base - self.total_traffic_bytes() as f64) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ms: f64, messages: u64) -> ExecutionReport {
        let mut network = NetworkStats::new();
        for _ in 0..messages {
            network.record(dsm_objspace::NodeId(0), MsgCategory::ObjReply, 100);
        }
        ExecutionReport {
            execution_time: SimDuration::from_millis(ms),
            node_times: vec![SimTime::from_micros(ms * 1000.0)],
            network,
            protocol: ProtocolStats::default(),
            num_nodes: 1,
            policy_label: "AT".to_string(),
            delivery_trace: None,
            membership: None,
            scheduler: None,
        }
    }

    #[test]
    fn improvements_are_relative_to_baseline() {
        let fast = report(50.0, 10);
        let slow = report(100.0, 40);
        assert!((fast.time_improvement_over(&slow) - 0.5).abs() < 1e-9);
        assert!((fast.message_improvement_over(&slow) - 0.75).abs() < 1e-9);
        assert!((fast.traffic_improvement_over(&slow) - 0.75).abs() < 1e-9);
        // Improvement over itself is zero.
        assert_eq!(fast.time_improvement_over(&fast), 0.0);
    }

    #[test]
    fn accessors_expose_counters() {
        let r = report(10.0, 3);
        assert_eq!(r.total_messages(), 3);
        assert_eq!(r.messages(MsgCategory::ObjReply), 3);
        assert_eq!(r.messages(MsgCategory::Diff), 0);
        assert_eq!(r.breakdown_messages(), 3);
        assert_eq!(r.migrations(), 0);
        assert_eq!(r.redirections(), 0);
        assert_eq!(r.total_traffic_bytes(), 300);
    }

    #[test]
    fn policy_telemetry_surfaces_in_the_report() {
        let mut r = report(10.0, 1);
        r.protocol.policy.record_decision(false, false, 1.0);
        r.protocol.policy.record_decision(true, true, 3.0);
        assert_eq!(r.policy_telemetry().decisions_considered, 2);
        assert_eq!(r.migrate_backs(), 1);
        assert!((r.migration_rate() - 0.5).abs() < 1e-12);
        assert!((r.policy_telemetry().mean_threshold() - 2.0).abs() < 1e-9);
        let empty = report(10.0, 1);
        assert_eq!(empty.migration_rate(), 0.0);
    }
}
