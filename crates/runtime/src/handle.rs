//! Typed handles to shared objects.
//!
//! A handle is a cheap, copiable description of one coherence unit: its
//! deterministic [`ObjectId`], its element type and its element count. All
//! nodes construct identical handles from the same `(name, index)` pair —
//! the analogue of every JVM node resolving the same array object — so no
//! handle exchange protocol is needed.

use dsm_objspace::{Element, HomeAssignment, NodeId, ObjectId, ObjectRegistry};
use std::marker::PhantomData;

/// A typed handle to a shared array object (a coherence unit whose payload
/// is `len` elements of `T`).
#[derive(Debug)]
pub struct ArrayHandle<T> {
    /// The object's identity.
    pub id: ObjectId,
    /// Number of `T` elements in the object.
    pub len: usize,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls so handles are Copy/Clone regardless of T.
impl<T> Clone for ArrayHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArrayHandle<T> {}

impl<T: Element> ArrayHandle<T> {
    /// Construct a handle without registering it (the object must already be
    /// registered under the same name/index/length by every node).
    pub fn lookup(name: &str, index: u64, len: usize) -> Self {
        ArrayHandle {
            id: ObjectId::derive(name, index),
            len,
            _marker: PhantomData,
        }
    }

    /// Register the object in `registry` and return its handle.
    pub fn register(
        registry: &mut ObjectRegistry,
        name: &str,
        index: u64,
        len: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        let id = registry.register_named(name, index, len * T::SIZE, creator, assignment);
        ArrayHandle {
            id,
            len,
            _marker: PhantomData,
        }
    }

    /// Register an immutable object (never invalidated once cached; the GOS
    /// read-only optimization) and return its handle.
    pub fn register_immutable(
        registry: &mut ObjectRegistry,
        name: &str,
        index: u64,
        len: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        let id =
            registry.register_named_immutable(name, index, len * T::SIZE, creator, assignment);
        ArrayHandle {
            id,
            len,
            _marker: PhantomData,
        }
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len * T::SIZE
    }
}

/// Register a whole family of row objects (e.g. the rows of a 2-D matrix,
/// which in Java is an array of row array objects) and return their handles.
pub fn register_rows<T: Element>(
    registry: &mut ObjectRegistry,
    name: &str,
    rows: usize,
    row_len: usize,
    creator: NodeId,
    assignment: HomeAssignment,
) -> Vec<ArrayHandle<T>> {
    (0..rows)
        .map(|r| ArrayHandle::<T>::register(registry, name, r as u64, row_len, creator, assignment))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_agree_on_ids() {
        let mut reg = ObjectRegistry::new();
        let h = ArrayHandle::<f64>::register(
            &mut reg,
            "m",
            3,
            16,
            NodeId::MASTER,
            HomeAssignment::RoundRobin,
        );
        let l = ArrayHandle::<f64>::lookup("m", 3, 16);
        assert_eq!(h.id, l.id);
        assert_eq!(h.len, 16);
        assert_eq!(h.size_bytes(), 128);
        assert_eq!(reg.expect(h.id).size_bytes, 128);
        assert!(!reg.expect(h.id).is_immutable());
    }

    #[test]
    fn immutable_registration_sets_flag() {
        let mut reg = ObjectRegistry::new();
        let h = ArrayHandle::<u32>::register_immutable(
            &mut reg,
            "dist",
            0,
            144,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        assert!(reg.expect(h.id).is_immutable());
        assert_eq!(h.size_bytes(), 576);
    }

    #[test]
    fn register_rows_creates_one_object_per_row() {
        let mut reg = ObjectRegistry::new();
        let rows = register_rows::<f64>(
            &mut reg,
            "sor",
            8,
            32,
            NodeId::MASTER,
            HomeAssignment::RoundRobin,
        );
        assert_eq!(rows.len(), 8);
        assert_eq!(reg.len(), 8);
        // Round-robin homes spread across a 4-node cluster.
        let homes: Vec<NodeId> = rows.iter().map(|h| reg.expect(h.id).initial_home(4)).collect();
        assert_eq!(homes[0], NodeId(0));
        assert_eq!(homes[1], NodeId(1));
        assert_eq!(homes[5], NodeId(1));
    }

    #[test]
    fn handles_are_copy() {
        let h = ArrayHandle::<f64>::lookup("x", 0, 4);
        let h2 = h;
        assert_eq!(h.id, h2.id);
    }
}
