//! Typed handles to shared objects.
//!
//! A handle is a cheap description of one or more coherence units: their
//! deterministic [`ObjectId`]s, element type and element counts. All nodes
//! construct identical handles from the same name — the analogue of every
//! JVM node resolving the same array object — so no handle exchange
//! protocol is needed.
//!
//! Three shapes cover the workloads:
//!
//! * [`ArrayHandle<T>`] — one coherence unit holding `len` elements of `T`;
//! * [`ScalarHandle<T>`] — a single-element unit (counters, bounds) with
//!   value-level `get`/`set`/`update` conveniences;
//! * [`Matrix2dHandle<T>`] — a `rows × cols` matrix stored as one row
//!   object per row (a Java array of row arrays), the unit granularity the
//!   paper's ASP and SOR rely on for per-row home migration.
//!
//! A handle constructed by [`ArrayHandle::lookup`] is *unchecked* until its
//! first access: the runtime validates it against the registry and surfaces
//! [`DsmError::SizeMismatch`]/[`DsmError::UnknownObject`] instead of
//! decoding elements at the wrong granularity.
//!
//! [`DsmError::SizeMismatch`]: dsm_objspace::DsmError::SizeMismatch
//! [`DsmError::UnknownObject`]: dsm_objspace::DsmError::UnknownObject

use crate::ctx::NodeCtx;
use dsm_objspace::{
    DsmError, DsmResult, Element, HomeAssignment, NodeId, ObjectId, ObjectRegistry,
};
use std::marker::PhantomData;

/// A typed handle to a shared array object (a coherence unit whose payload
/// is `len` elements of `T`).
#[derive(Debug)]
pub struct ArrayHandle<T> {
    /// The object's identity.
    pub id: ObjectId,
    /// Number of `T` elements in the object.
    pub len: usize,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls so handles are Copy/Clone regardless of T.
impl<T> Clone for ArrayHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ArrayHandle<T> {}

impl<T: Element> ArrayHandle<T> {
    /// Construct a handle without registering it (the object must already be
    /// registered under the same name/index/length by every node). The
    /// handle is validated against the registry at first access.
    pub fn lookup(name: &str, index: u64, len: usize) -> Self {
        ArrayHandle {
            id: ObjectId::derive(name, index),
            len,
            _marker: PhantomData,
        }
    }

    /// Register the object in `registry` and return its handle.
    pub fn register(
        registry: &mut ObjectRegistry,
        name: &str,
        index: u64,
        len: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        let id = registry.register_named(name, index, len * T::SIZE, creator, assignment);
        ArrayHandle {
            id,
            len,
            _marker: PhantomData,
        }
    }

    /// Register an immutable object (never invalidated once cached; the GOS
    /// read-only optimization) and return its handle.
    pub fn register_immutable(
        registry: &mut ObjectRegistry,
        name: &str,
        index: u64,
        len: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        let id = registry.register_named_immutable(name, index, len * T::SIZE, creator, assignment);
        ArrayHandle {
            id,
            len,
            _marker: PhantomData,
        }
    }

    /// Check this handle against a registry: the object must be registered
    /// and its payload size must equal `len * T::SIZE`.
    pub fn validate(&self, registry: &ObjectRegistry) -> DsmResult<()> {
        let desc = registry
            .get(self.id)
            .ok_or(DsmError::UnknownObject { obj: self.id })?;
        let handle_bytes = self.len * T::SIZE;
        if desc.size_bytes != handle_bytes {
            return Err(DsmError::SizeMismatch {
                obj: self.id,
                registered_bytes: desc.size_bytes,
                handle_bytes,
            });
        }
        Ok(())
    }

    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len * T::SIZE
    }
}

/// A typed handle to a single-element shared object — a counter, a global
/// bound, a flag. Wraps a one-element [`ArrayHandle`] with value-level
/// accessors.
#[derive(Debug)]
pub struct ScalarHandle<T> {
    inner: ArrayHandle<T>,
}

impl<T> Clone for ScalarHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ScalarHandle<T> {}

impl<T: Element> ScalarHandle<T> {
    /// Register the scalar in `registry` and return its handle.
    pub fn register(
        registry: &mut ObjectRegistry,
        name: &str,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        ScalarHandle {
            inner: ArrayHandle::register(registry, name, 0, 1, creator, assignment),
        }
    }

    /// Construct without registering (validated at first access).
    pub fn lookup(name: &str) -> Self {
        ScalarHandle {
            inner: ArrayHandle::lookup(name, 0, 1),
        }
    }

    /// The underlying one-element array handle.
    pub fn array(&self) -> &ArrayHandle<T> {
        &self.inner
    }

    /// The object's identity.
    pub fn id(&self) -> ObjectId {
        self.inner.id
    }

    /// Read the value (fallible form).
    pub fn try_get(&self, ctx: &NodeCtx) -> DsmResult<T> {
        Ok(ctx.try_view(&self.inner)?[0])
    }

    /// Read the value.
    pub fn get(&self, ctx: &NodeCtx) -> T {
        self.try_get(ctx)
            .unwrap_or_else(|e| panic!("scalar get failed: {e}"))
    }

    /// Overwrite the value (fallible form).
    pub fn try_set(&self, ctx: &NodeCtx, value: T) -> DsmResult<()> {
        ctx.try_view_mut(&self.inner)?[0] = value;
        Ok(())
    }

    /// Overwrite the value.
    pub fn set(&self, ctx: &NodeCtx, value: T) {
        self.try_set(ctx, value)
            .unwrap_or_else(|e| panic!("scalar set failed: {e}"))
    }

    /// Read-modify-write the value in one write view; returns the new value.
    pub fn update(&self, ctx: &NodeCtx, f: impl FnOnce(T) -> T) -> T {
        let mut view = ctx.view_mut(&self.inner);
        let next = f(view[0]);
        view[0] = next;
        next
    }
}

/// A typed handle to a `rows × cols` matrix stored as one coherence unit
/// per row. Subsumes the old free-standing `register_rows` helper: row
/// handles are materialized once and shared by value.
#[derive(Debug, Clone)]
pub struct Matrix2dHandle<T> {
    rows: Vec<ArrayHandle<T>>,
    cols: usize,
}

impl<T: Element> Matrix2dHandle<T> {
    /// Register `rows` row objects of `cols` elements each and return the
    /// matrix handle.
    pub fn register(
        registry: &mut ObjectRegistry,
        name: &str,
        rows: usize,
        cols: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        Matrix2dHandle {
            rows: (0..rows)
                .map(|r| {
                    ArrayHandle::<T>::register(registry, name, r as u64, cols, creator, assignment)
                })
                .collect(),
            cols,
        }
    }

    /// Register an immutable matrix (rows never invalidated once cached).
    pub fn register_immutable(
        registry: &mut ObjectRegistry,
        name: &str,
        rows: usize,
        cols: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> Self {
        Matrix2dHandle {
            rows: (0..rows)
                .map(|r| {
                    ArrayHandle::<T>::register_immutable(
                        registry, name, r as u64, cols, creator, assignment,
                    )
                })
                .collect(),
            cols,
        }
    }

    /// Construct without registering (each row validated at first access).
    pub fn lookup(name: &str, rows: usize, cols: usize) -> Self {
        Matrix2dHandle {
            rows: (0..rows)
                .map(|r| ArrayHandle::<T>::lookup(name, r as u64, cols))
                .collect(),
            cols,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (elements per row object).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The handle of row `r`.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &ArrayHandle<T> {
        &self.rows[r]
    }

    /// Iterate over the row handles in order.
    pub fn iter(&self) -> impl Iterator<Item = &ArrayHandle<T>> {
        self.rows.iter()
    }

    /// The row handles as a slice.
    pub fn as_rows(&self) -> &[ArrayHandle<T>] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_agree_on_ids() {
        let mut reg = ObjectRegistry::new();
        let h = ArrayHandle::<f64>::register(
            &mut reg,
            "m",
            3,
            16,
            NodeId::MASTER,
            HomeAssignment::RoundRobin,
        );
        let l = ArrayHandle::<f64>::lookup("m", 3, 16);
        assert_eq!(h.id, l.id);
        assert_eq!(h.len, 16);
        assert_eq!(h.size_bytes(), 128);
        assert_eq!(reg.expect(h.id).size_bytes, 128);
        assert!(!reg.expect(h.id).is_immutable());
        assert!(l.validate(&reg).is_ok());
    }

    #[test]
    fn lookup_with_wrong_length_fails_validation() {
        let mut reg = ObjectRegistry::new();
        let _ = ArrayHandle::<f64>::register(
            &mut reg,
            "m",
            0,
            16,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let wrong = ArrayHandle::<f64>::lookup("m", 0, 8);
        assert!(matches!(
            wrong.validate(&reg),
            Err(DsmError::SizeMismatch {
                registered_bytes: 128,
                handle_bytes: 64,
                ..
            })
        ));
        // The same payload reinterpreted at a compatible granularity is
        // fine: 16 f64 == 32 u32 wouldn't be, but 16 u64 is.
        let reinterpreted = ArrayHandle::<u64>::lookup("m", 0, 16);
        assert!(reinterpreted.validate(&reg).is_ok());
        let unknown = ArrayHandle::<f64>::lookup("missing", 0, 16);
        assert!(matches!(
            unknown.validate(&reg),
            Err(DsmError::UnknownObject { .. })
        ));
    }

    #[test]
    fn immutable_registration_sets_flag() {
        let mut reg = ObjectRegistry::new();
        let h = ArrayHandle::<u32>::register_immutable(
            &mut reg,
            "dist",
            0,
            144,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        assert!(reg.expect(h.id).is_immutable());
        assert_eq!(h.size_bytes(), 576);
    }

    #[test]
    fn matrix_creates_one_object_per_row() {
        let mut reg = ObjectRegistry::new();
        let m = Matrix2dHandle::<f64>::register(
            &mut reg,
            "sor",
            8,
            32,
            NodeId::MASTER,
            HomeAssignment::RoundRobin,
        );
        assert_eq!(m.rows(), 8);
        assert_eq!(m.cols(), 32);
        assert_eq!(reg.len(), 8);
        assert_eq!(m.iter().count(), 8);
        assert_eq!(m.as_rows().len(), 8);
        // Round-robin homes spread across a 4-node cluster.
        let homes: Vec<NodeId> = m.iter().map(|h| reg.expect(h.id).initial_home(4)).collect();
        assert_eq!(homes[0], NodeId(0));
        assert_eq!(homes[1], NodeId(1));
        assert_eq!(homes[5], NodeId(1));
        // Lookup resolves the same ids.
        let l = Matrix2dHandle::<f64>::lookup("sor", 8, 32);
        assert_eq!(l.row(3).id, m.row(3).id);
    }

    #[test]
    fn scalar_wraps_one_element_object() {
        let mut reg = ObjectRegistry::new();
        let s = ScalarHandle::<u64>::register(
            &mut reg,
            "bound",
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        assert_eq!(reg.expect(s.id()).size_bytes, 8);
        assert_eq!(ScalarHandle::<u64>::lookup("bound").id(), s.id());
        assert_eq!(s.array().len, 1);
    }

    #[test]
    fn handles_are_copy() {
        let h = ArrayHandle::<f64>::lookup("x", 0, 4);
        let h2 = h;
        assert_eq!(h.id, h2.id);
        let s = ScalarHandle::<u32>::lookup("y");
        let s2 = s;
        assert_eq!(s.id(), s2.id());
    }
}
