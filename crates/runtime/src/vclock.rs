//! Per-node virtual clocks.
//!
//! Each simulated node has one logical clock shared by its application
//! thread and its protocol server thread (the paper's nodes are single-CPU
//! machines where protocol handling and computation share the processor).
//! The clock advances by:
//!
//! * computation charged by the application through the compute model,
//! * protocol handling costs charged by the server,
//! * message arrival stamps: when a message (or a blocking reply) arrives,
//!   the clock jumps forward to the arrival time if that is later than the
//!   local clock — this is how communication latency and lock waiting time
//!   become part of the virtual execution time.

use dsm_model::{SimDuration, SimTime};
use dsm_util::Mutex;
use std::sync::Arc;

/// A shareable monotone virtual clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    inner: Arc<Mutex<SimTime>>,
}

impl VirtualClock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        *self.inner.lock()
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let mut t = self.inner.lock();
        *t += d;
        *t
    }

    /// Move the clock forward to `instant` if it is later than the current
    /// time (never moves backwards). Returns the resulting time.
    pub fn merge(&self, instant: SimTime) -> SimTime {
        let mut t = self.inner.lock();
        *t = t.max(instant);
        *t
    }

    /// Atomically merge an arrival and then charge a handling cost.
    pub fn merge_and_advance(&self, instant: SimTime, d: SimDuration) -> SimTime {
        let mut t = self.inner.lock();
        *t = t.max(instant) + d;
        *t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_micros(5.0));
        assert_eq!(c.now(), SimTime::from_micros(5.0));
    }

    #[test]
    fn merge_never_goes_backwards() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_micros(100.0));
        c.merge(SimTime::from_micros(40.0));
        assert_eq!(c.now(), SimTime::from_micros(100.0));
        c.merge(SimTime::from_micros(250.0));
        assert_eq!(c.now(), SimTime::from_micros(250.0));
    }

    #[test]
    fn merge_and_advance_combines_both() {
        let c = VirtualClock::new();
        c.merge_and_advance(SimTime::from_micros(10.0), SimDuration::from_micros(2.0));
        assert_eq!(c.now(), SimTime::from_micros(12.0));
        // Arrival earlier than the clock: only the handling cost applies.
        c.merge_and_advance(SimTime::from_micros(5.0), SimDuration::from_micros(3.0));
        assert_eq!(c.now(), SimTime::from_micros(15.0));
    }

    #[test]
    fn clones_share_state() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance(SimDuration::from_micros(7.0));
        assert_eq!(c2.now(), SimTime::from_micros(7.0));
    }
}
