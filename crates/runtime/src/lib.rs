//! # dsm-runtime — the simulated cluster runtime
//!
//! This crate turns the transport-agnostic protocol engine of `dsm-core`
//! into a running "cluster": one application thread and one protocol server
//! thread per simulated node, connected by the `dsm-net` fabric, with
//! per-node virtual clocks advanced by the Hockney network model and a
//! configurable computation cost model.
//!
//! The programming model mirrors the paper's distributed JVM: the same
//! application closure runs on every node (like a Java thread dispatched to
//! each cluster node), shares objects through typed handles
//! ([`ArrayHandle`]), and synchronizes with distributed locks and barriers.
//! All coherence traffic, home migrations and statistics fall out of the
//! protocol engine; at the end of a run the [`Cluster`] returns an
//! [`ExecutionReport`] with the virtual execution time, the message/traffic
//! statistics and the protocol counters that the benchmark harness turns
//! into the paper's figures.
//!
//! ```no_run
//! use dsm_runtime::{Cluster, ClusterConfig, ArrayHandle};
//! use dsm_core::ProtocolConfig;
//! use dsm_objspace::{HomeAssignment, NodeId, ObjectRegistry, LockId};
//!
//! let mut registry = ObjectRegistry::new();
//! let counter: ArrayHandle<u64> = ArrayHandle::register(
//!     &mut registry, "counter", 0, 1, NodeId::MASTER, HomeAssignment::Master);
//! let config = ClusterConfig::new(4, ProtocolConfig::adaptive());
//! let report = Cluster::new(config, registry).run(move |ctx| {
//!     let lock = LockId::derive("counter.lock");
//!     for _ in 0..10 {
//!         ctx.acquire(lock);
//!         ctx.update(&counter, |v| v[0] += 1);
//!         ctx.release(lock);
//!     }
//! });
//! assert!(report.execution_time.as_micros() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ctx;
pub mod handle;
pub mod node;
pub mod report;
pub mod vclock;

pub use cluster::{Cluster, ClusterConfig};
pub use ctx::NodeCtx;
pub use handle::ArrayHandle;
pub use report::ExecutionReport;
pub use vclock::VirtualClock;
