//! # dsm-runtime — the simulated cluster runtime
//!
//! This crate turns the transport-agnostic protocol engine of `dsm-core`
//! into a running "cluster": one application thread per simulated node,
//! with all nodes' protocol servers multiplexed onto a bounded,
//! event-driven worker pool (see *Execution model* below), connected by
//! the `dsm-net` fabric, with per-node virtual clocks advanced by the
//! Hockney network model and a configurable computation cost model.
//!
//! The programming model mirrors the paper's distributed JVM: the same
//! application closure runs on every node (like a Java thread dispatched to
//! each cluster node), shares objects through typed handles
//! ([`ArrayHandle`], [`ScalarHandle`], [`Matrix2dHandle`]), and
//! synchronizes with distributed locks and barriers. Object access goes
//! through **zero-copy scoped views**: [`NodeCtx::view`] /
//! [`NodeCtx::view_mut`] return guards that `Deref` to `&[T]` / `&mut [T]`
//! borrowed directly from the engine's object storage, so accesses at the
//! home node never copy the payload; dropping a [`WriteView`] arms the
//! twin/diff bookkeeping for the interval's release. Every access and
//! synchronization operation also has a fallible `try_*` form returning
//! [`DsmResult`], so protocol misuse surfaces as a typed [`DsmError`]
//! instead of a node-thread panic.
//!
//! All coherence traffic, home migrations and statistics fall out of the
//! protocol engine; at the end of a run the [`Cluster`] returns an
//! [`ExecutionReport`] with the virtual execution time, the message/traffic
//! statistics and the protocol counters that the benchmark harness turns
//! into the paper's figures.
//!
//! ## Execution model
//!
//! Application code always gets one real OS thread per node — it blocks on
//! locks, barriers and remote fetches, so it needs one. Server-side
//! protocol handling does not: a protocol server is a non-blocking message
//! pump (drain the inbound queue, run handlers, retry deferrals), idle
//! whenever no message is in flight. The runtime therefore schedules the
//! servers in one of two modes ([`ServerMode`],
//! [`ClusterBuilder::server_mode`]):
//!
//! * **Executor** (the default on the threaded and TCP fabrics): all
//!   nodes' servers are multiplexed onto a bounded worker pool
//!   (`available_parallelism` workers by default,
//!   [`ClusterBuilder::executor_workers`] to override) and run
//!   **wake-on-send**: the act of sending into a node's inbound channel —
//!   or, on TCP, the socket reader thread handing a frame to the inbound
//!   queue — marks that node runnable and wakes a parked worker. A quiet
//!   cluster is *silent*: no timer ticks, no idle polls, workers parked on
//!   a condvar. This is what lets a 256-node cluster run on one machine
//!   without paying 256 server threads' worth of stacks and timer wakeups.
//!   A per-node atomic state machine (idle → queued → running, plus a
//!   notified-while-running bit) guarantees no lost wakeups: a
//!   notification that lands mid-step re-queues the node after its step
//!   finishes, and a handler that defers a Busy message re-arms the node's
//!   runnable bit so the deferral is retried without any timer.
//! * **Polling** ([`ServerMode::Polling`]): the original one-server-thread
//!   per-node layout, each blocking on its channel with a
//!   [`ClusterBuilder::poll_interval`] timeout. Kept as the semantic
//!   reference — scheduling is invisible to the protocol, and the test
//!   suite holds the two modes to fingerprint-identical results — and as
//!   the fallback if the executor is ever suspected.
//!
//! The sim fabric uses neither: by default its virtual-time scheduler
//! delivers every message inline on one thread (no server threads, no
//! inbound queues), so single-worker sim runs report no scheduler.
//!
//! * **Parallel frontier scheduling** ([`SimConfig::with_workers`] > 1):
//!   the sim scheduler pops a **conflict-free frontier** from the event
//!   heap at each quiescence point — the canonical prefix of events whose
//!   destination nodes are pairwise distinct and whose delivery times fall
//!   inside one minimum network latency of the earliest event — and runs
//!   the handlers on a bounded worker pool, merging every handler's
//!   outgoing sends back in the canonical event order `(deliver_at, src,
//!   dst, link_seq)`. Determinism survives because (a) *distinct
//!   destinations* mean the frontier's handlers touch disjoint node state,
//!   (b) the *latency cutoff* means nothing a frontier handler sends can
//!   be due before the frontier's own events — the popped prefix is final
//!   — and (c) frontiers are only popped while **every node's deferral
//!   queue is empty** (a deferred Busy message re-examines node state on
//!   the next delivery, so those steps run as exact sequential singletons).
//!   Within one frontier a node either gains a deferral or has its
//!   application woken, never both, so the post-frontier merge order is
//!   independent of which worker finished first. The single-worker
//!   schedule is the byte-for-byte semantic reference: the test suite and
//!   the `sim_matrix --sim-workers N` gate hold every parallel run to a
//!   bit-identical [`DeliveryTrace`] against it, so worker count is an
//!   execution knob, never a schedule change.
//!
//! Threaded and TCP runs surface the scheduling counters — steps, wakeups,
//! idle wakeups, re-notifications, runnable/parked high-watermarks,
//! queue-depth high-watermark — in [`ExecutionReport::scheduler`]
//! ([`SchedulerReport`]); parallel sim runs report their frontier counters
//! there too (mode `"sim-parallel"`: frontiers dispatched, events
//! delivered through them, widest frontier).
//!
//! ## Locking architecture
//!
//! A node's two threads (application + protocol server) share the engine
//! **without a node-global engine lock** — requests for distinct objects
//! never serialize on one mutex, so protocol serving scales with cores. The
//! locks that exist, from the outside in:
//!
//! * **Engine shard locks** (`dsm-core`): per-object protocol state is
//!   striped over N independent shards keyed by `ObjectId`. Every engine
//!   call takes exactly one shard lock, briefly; interval-wide operations
//!   (`begin_interval`, `prepare_release`, `finish_release`) walk the
//!   shards one at a time.
//! * **The node-global lock** (`dsm-core`): distributed lock/barrier
//!   manager state and synchronization counters — state not keyed by an
//!   object — behind its own small mutex, so synchronization traffic never
//!   contends with object traffic.
//! * **Pending-reply stripes** (this crate): the table matching replies to
//!   blocked requests is striped by request id.
//! * **Payload leases** (`dsm-objspace` stores): zero-copy views hold a
//!   read/write guard on one object's payload cell across application code,
//!   *never* an engine lock.
//!
//! **Lock ordering:** there is none to get wrong — shard locks, the global
//! lock and the pending stripes are all *leaf* locks; no code path holds
//! two of them at once. Payload guards are the only long-lived acquisition,
//! and the only place one is taken while a shard lock is held is inside the
//! engine's `try_lease_*`/server handlers, which use non-blocking `try_`
//! acquisition exclusively.
//!
//! ## Release path & flush batching
//!
//! When an interval releases (a lock release or barrier arrival), the
//! engine's `prepare_release` produces one flush plan per dirty object and
//! the context propagates each diff to its believed home. Under the paper's
//! cost model the per-message start-up time `t0` dominates on
//! Fast-Ethernet-class interconnects, so an interval that wrote k objects
//! homed on the same node would pay k start-ups where one suffices. The
//! runtime therefore **batches by default**
//! ([`ClusterBuilder::flush_batching`] restores the paper-faithful
//! unbatched wire behaviour):
//!
//! * **When batches form:** the flush plans are grouped by believed home
//!   (deterministically — groups ordered by node, entries by object id);
//!   every group of two or more travels as a single `DiffBatch` message,
//!   paying one start-up plus the summed byte cost. Singleton groups take
//!   the classic one-`DiffFlush` path, so single-object intervals (the
//!   synthetic benchmark, counters) are wire-identical in both modes.
//! * **Partial redirects:** the home of an individual entry can migrate
//!   between `prepare_release` and the batch's arrival. The receiver
//!   resolves every entry independently and the single `DiffBatchAck`
//!   carries per-entry results: applied entries complete immediately, and
//!   each redirected entry is re-planned *individually*, chasing the
//!   epoch-guarded forwarding pointers exactly like a redirected
//!   `DiffFlush` (stale hints are never adopted, so chains cannot cycle).
//! * **Why per-entry Busy deferral keeps deadlock-freedom:** the receiving
//!   server applies batch entries under the same per-object shard locks and
//!   non-blocking payload `try_` locks as individual diffs. An entry whose
//!   payload is leased to a live application view does not block the
//!   server: the already-resolved results are parked server-side and only
//!   the busy remainder is re-queued on the deferral queue, so the server
//!   stays responsive and the argument above (a node blocked on the network
//!   always has a responsive server, and no node fetches while holding
//!   write views) carries over unchanged — the ack is simply sent when the
//!   last entry resolves.
//!
//! The engine counts `batched_flushes` and `batch_entries`
//! (`ProtocolStats`), and the network statistics tag batches with their own
//! `DiffBatch`/`DiffBatchAck` categories: a batch of k entries is **one**
//! message with the k diffs' wire bytes summed, which is what the modeled
//! message-count and traffic figures (and the CI benchmark gate) measure.
//!
//! **Why deferral stays deadlock-free:** a server that finds a payload
//! leased to an application view reports `Busy`; the runtime parks the
//! message on a deferral queue and retries it instead of blocking the
//! server. Under the executor the retry is event-driven — a node with
//! deferred work keeps its runnable bit armed (and the application dropping
//! a view re-notifies it), so the deferral is re-attempted without any
//! timer; under [`ServerMode::Polling`] it is retried on later messages and
//! on every poll tick (see [`ClusterBuilder::poll_interval`] /
//! [`ClusterBuilder::fast_poll`]). Either way a node blocked on the
//! network always has a responsive server.
//! The one remaining cycle — two nodes each waiting for the other's server
//! while their own write leases keep that server deferring — is ruled out
//! on the application side: a context refuses to issue a remote fault-in
//! while it holds any *write* view ([`DsmError::FetchWithLiveWrites`]), and
//! synchronization operations require full quiescence
//! ([`DsmError::ViewsOutstanding`]). Read views are safe to hold across a
//! fetch because serving a fault-in needs only a shared payload lock.
//!
//! ## Transports
//!
//! The cluster runs its protocol traffic over one of three fabrics
//! ([`cluster::FabricMode`]); all three present the same sending surface,
//! stamp the same modeled virtual times, and produce fingerprint-identical
//! workload results — they differ in who schedules delivery and what the
//! messages physically travel over:
//!
//! * **Loopback / threaded** (the default): in-process channels, all
//!   nodes' protocol servers scheduled by the wake-on-send executor pool
//!   (or per-node polling threads under [`ServerMode::Polling`]), message
//!   interleaving decided by the OS scheduler. Per-link FIFO holds because
//!   each link *is* one channel. Fastest wall-clock on many cores;
//!   schedules are not reproducible run to run.
//! * **Sim** ([`ClusterBuilder::sim_fabric`]`(seed)`): the deterministic
//!   virtual-time scheduler. Per-link FIFO is enforced by a delivery-time
//!   clamp even under seeded reordering perturbations. Bit-identical
//!   replays from a seed.
//! * **TCP** ([`ClusterBuilder::tcp_fabric`]): real `std::net` sockets on
//!   `127.0.0.1`. Every node binds a listener; the mesh is connected at
//!   join time with a hello handshake that carries each node's identity
//!   and expected cluster size. Per-link FIFO holds because all frames
//!   from node *a* to node *b* travel on one dedicated ordered connection
//!   drained by one writer thread. Messages are encoded with the
//!   `dsm-wire` binary codec (see `dsm-net`'s wire-format docs); modeled
//!   send/arrival times travel inside each frame, so virtual-clock
//!   merging — and therefore every modeled-time figure — is unchanged.
//!   A per-node heartbeat thread feeds a membership/liveness tracker
//!   (alive → suspect → dead on silence; a *suspect* peer recovers on
//!   resumed traffic, but **death is sticky** — a dead peer's resumed
//!   frames are refused, and only a rejoin handshake carrying a strictly
//!   greater incarnation number ([`TcpConfig::incarnation`]) readmits
//!   it); the final per-node views are surfaced in
//!   [`ExecutionReport::membership`]. Teardown is an
//!   orderly leave handshake: a `Leave` frame is the last thing each link
//!   carries, so no node closes a socket a peer still reads.
//!
//! ## Testing & determinism: picking a fabric, replaying a seed
//!
//! **Replaying a failure:** a sim run is a pure function of (cluster
//! config, application, fabric seed). The report's
//! [`ExecutionReport::delivery_trace`] records every delivery; the same
//! seed reproduces it bit-identically, so a failing seed from a sweep *is*
//! the reproduction recipe — re-run with that seed (optionally
//! `DSM_TRACE=1`) and the identical schedule unfolds. The integration
//! suite's seed corpus is centralized in the `dsm-integration-tests`
//! helpers and can be overridden with `DSM_SEEDS=0x1,0x2,...` to sweep new
//! schedules without touching code.
//!
//! **Worker count never changes the schedule:** the trace is a pure
//! function of the seed *at any worker count* — `SimConfig::with_workers`
//! parallelizes the handler execution, not the event order, so a seed
//! reproduced at `--sim-workers 4` replays the exact trace the
//! single-worker reference produces (the conformance matrix and CI's
//! `sim-parallel` job assert this cell by cell). When debugging, drop to
//! the single-worker scheduler first: it is the semantic reference, and a
//! divergence that only appears with workers > 1 is by definition a
//! frontier/merge bug in the parallel scheduler, not an application or
//! protocol bug.
//!
//! **Lossy presets — testing the fault path:** [`SimConfig::lossy`]`(seed)`
//! layers fault injection on top of the perturbed preset: 1% seeded
//! per-link message drops plus one partition/heal cycle on virtual time;
//! [`SimConfig::with_drop_rate`] / `with_partition` / `with_pause` compose
//! the individual fault kinds (a [`PauseSpec`] is a node crash: every
//! message to or from the node inside the window is lost). Whenever a
//! configuration can lose messages ([`SimConfig::is_lossy`]), the runtime
//! automatically arms its recovery machinery: every tracked request gets a
//! virtual-time retry timeout with **idempotent, server-side-deduplicated
//! retransmissions** (replies are cached per request id and re-sent, so a
//! retry can never double-apply), and a request aimed at a home that stays
//! dark past the failover threshold triggers a **deterministic home
//! re-election** at the object's arbiter — the winner is fenced by a new
//! home epoch, the deposed home is demoted on its first contact with the
//! new epoch, and the requester transparently re-aims at the winner.
//! Everything stays bit-identically replayable: drops are part of the
//! seeded schedule, and the delivery trace records them
//! ([`DeliveryTrace::drops`], one [`DropRecord`] with its [`DropReason`]
//! per lost message) so the teardown reconciliation still accounts for
//! every send. A run that exhausts its retries panics with a diagnostic
//! that lists the injected drops — distinguishing "the fault injection ate
//! the protocol's patience" from a genuine lossless deadlock.
//!
//! **Adding a conformance-matrix cell:** the policy × workload grid lives
//! in `dsm-bench`'s `matrix` module (used by `tests/tests/sim_matrix.rs`
//! and the `sim_matrix` binary). A new workload is one more
//! `MatrixWorkload` entry (name + small-parameter runner returning a result
//! fingerprint); a new policy is one more row in `matrix::policies()` —
//! every cell is then automatically swept under the seed corpus, asserting
//! checksum conformance with the threaded fabric, replay determinism and
//! the protocol invariants.
//!
//! **Pluggable migration policies:** [`ClusterBuilder::migration`] accepts
//! the paper's `MigrationPolicy` descriptions, any built-in policy value
//! (`HysteresisPolicy`, `EwmaWriteRatioPolicy`, ...), or a custom
//! `Arc<dyn HomeMigrationPolicy>` (see `dsm_core::policy` for the trait
//! contract and determinism rules). [`ClusterBuilder::object_policy`] pins
//! a different policy to a single object, so one cluster can run a policy ×
//! object experiment grid; the per-run decision telemetry (considered vs.
//! taken decisions, migrate-backs, threshold trajectory) is merged into
//! [`ExecutionReport::policy_telemetry`].
//!
//! ```no_run
//! use dsm_runtime::Cluster;
//! use dsm_core::MigrationPolicy;
//! use dsm_objspace::{HomeAssignment, LockId};
//!
//! // Chainable, seeded construction; the builder owns the registry.
//! let mut builder = Cluster::builder()
//!     .nodes(4)
//!     .migration(MigrationPolicy::adaptive())
//!     .seed(2004)
//!     .default_home(HomeAssignment::Master);
//! let counter = builder.register_array::<u64>("counter", 1);
//! let report = builder.build().run(move |ctx| {
//!     let lock = LockId::derive("counter.lock");
//!     for _ in 0..10 {
//!         ctx.acquire(lock);
//!         // Zero-copy write view: borrows the engine's storage in place.
//!         ctx.view_mut(&counter)[0] += 1;
//!         ctx.release(lock);
//!     }
//! });
//! assert!(report.execution_time.as_micros() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ctx;
mod exec;
mod fault;
pub mod handle;
pub mod node;
pub mod report;
mod sim;
mod tcp;
pub mod vclock;
pub mod view;

pub use cluster::{
    Cluster, ClusterBuilder, ClusterConfig, FabricMode, ServerMode, DEFAULT_POLL_INTERVAL,
    FAST_POLL_INTERVAL,
};
pub use ctx::NodeCtx;
pub use dsm_net::{
    DeliveryRecord, DeliveryTrace, DropReason, DropRecord, MembershipReport, MembershipView,
    PartitionSpec, PauseSpec, PeerLiveness, SimConfig, TcpConfig,
};
pub use dsm_objspace::{DsmError, DsmResult};
pub use handle::{ArrayHandle, Matrix2dHandle, ScalarHandle};
pub use report::{ExecutionReport, SchedulerReport};
pub use vclock::VirtualClock;
pub use view::{ReadView, WriteView};
