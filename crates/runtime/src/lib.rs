//! # dsm-runtime — the simulated cluster runtime
//!
//! This crate turns the transport-agnostic protocol engine of `dsm-core`
//! into a running "cluster": one application thread and one protocol server
//! thread per simulated node, connected by the `dsm-net` fabric, with
//! per-node virtual clocks advanced by the Hockney network model and a
//! configurable computation cost model.
//!
//! The programming model mirrors the paper's distributed JVM: the same
//! application closure runs on every node (like a Java thread dispatched to
//! each cluster node), shares objects through typed handles
//! ([`ArrayHandle`], [`ScalarHandle`], [`Matrix2dHandle`]), and
//! synchronizes with distributed locks and barriers. Object access goes
//! through **zero-copy scoped views**: [`NodeCtx::view`] /
//! [`NodeCtx::view_mut`] return guards that `Deref` to `&[T]` / `&mut [T]`
//! borrowed directly from the engine's object storage, so accesses at the
//! home node never copy the payload; dropping a [`WriteView`] arms the
//! twin/diff bookkeeping for the interval's release. Every access and
//! synchronization operation also has a fallible `try_*` form returning
//! [`DsmResult`], so protocol misuse surfaces as a typed [`DsmError`]
//! instead of a node-thread panic.
//!
//! All coherence traffic, home migrations and statistics fall out of the
//! protocol engine; at the end of a run the [`Cluster`] returns an
//! [`ExecutionReport`] with the virtual execution time, the message/traffic
//! statistics and the protocol counters that the benchmark harness turns
//! into the paper's figures.
//!
//! ```no_run
//! use dsm_runtime::Cluster;
//! use dsm_core::MigrationPolicy;
//! use dsm_objspace::{HomeAssignment, LockId};
//!
//! // Chainable, seeded construction; the builder owns the registry.
//! let mut builder = Cluster::builder()
//!     .nodes(4)
//!     .migration(MigrationPolicy::adaptive())
//!     .seed(2004)
//!     .default_home(HomeAssignment::Master);
//! let counter = builder.register_array::<u64>("counter", 1);
//! let report = builder.build().run(move |ctx| {
//!     let lock = LockId::derive("counter.lock");
//!     for _ in 0..10 {
//!         ctx.acquire(lock);
//!         // Zero-copy write view: borrows the engine's storage in place.
//!         ctx.view_mut(&counter)[0] += 1;
//!         ctx.release(lock);
//!     }
//! });
//! assert!(report.execution_time.as_micros() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod ctx;
pub mod handle;
pub mod node;
pub mod report;
pub mod vclock;
pub mod view;

pub use cluster::{Cluster, ClusterBuilder, ClusterConfig};
pub use ctx::NodeCtx;
pub use dsm_objspace::{DsmError, DsmResult};
pub use handle::{ArrayHandle, Matrix2dHandle, ScalarHandle};
pub use report::ExecutionReport;
pub use vclock::VirtualClock;
pub use view::{ReadView, WriteView};
