//! A small scoped task pool for the parallel sim scheduler.
//!
//! The frontier scheduler (`crate::sim`) pops a conflict-free batch of
//! deliveries at each quiescence point and needs the batch's handlers run
//! on real threads — but the results merged back in a deterministic order.
//! This pool does the minimum for that: `workers` scoped threads each own
//! a private task channel (the scheduler deals a frontier's tasks round-
//! robin), run `(index, task)` pairs through a fixed closure, and send
//! `(index, result)` pairs back on one shared results channel. The *index*
//! is the task's position in the frontier; the scheduler uses it to
//! restore canonical order regardless of which worker finished first.
//!
//! Frontier tasks are short — often a few microseconds of protocol handler
//! — so a blocking hand-off would spend more time in futex wakeups than in
//! the handlers themselves. Both receive sides therefore **spin briefly
//! before blocking**: a worker polls its task channel (and the scheduler
//! polls the results channel) for [`SPIN_LIMIT`] pause-loop iterations
//! before falling back to a blocking `recv`. During a flush storm the
//! frontiers arrive back-to-back, the spin window covers the gap, and a
//! dispatched task starts in nanoseconds; between storms the workers park
//! in the kernel as before.
//!
//! Panics inside a task are caught (`catch_unwind`) and shipped back as
//! the task's result, so one panicking protocol handler cannot wedge the
//! barrier: the scheduler re-raises the first panic *in frontier order*
//! on its own thread, which keeps even the panic deterministic.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::{Result as TaskResult, Scope};

/// Pause-loop iterations a receive side polls before blocking, on hosts
/// with real parallelism. At ~1-10 ns per `spin_loop` hint this bounds the
/// busy wait to well under a millisecond while comfortably covering the
/// inter-frontier gaps of a busy simulation.
const SPIN_LIMIT: u32 = 20_000;

/// The effective spin budget: [`SPIN_LIMIT`] when the host has more than
/// one hardware thread, zero otherwise. On a single-core host a spinning
/// worker *is* the reason the sender cannot run — polling there turns
/// every hand-off into a scheduler-quantum stall, so the pool goes
/// straight to the blocking receive.
fn spin_limit() -> u32 {
    use std::sync::OnceLock;
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_LIMIT,
        _ => 0,
    })
}

/// Poll `try_recv` with a bounded spin before falling back to a blocking
/// `recv`. Returns `None` once the channel is disconnected and drained.
fn spin_recv<T>(rx: &Receiver<T>) -> Option<T> {
    for _ in 0..spin_limit() {
        match rx.try_recv() {
            Ok(value) => return Some(value),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

/// A pool of scoped worker threads running one fixed task closure.
///
/// Dropping the pool closes the per-worker task queues; the workers then
/// drain what is left and exit, and the owning [`std::thread::Scope`]
/// joins them.
pub(crate) struct TaskPool<T, R> {
    /// One private task channel per worker; `submit` deals round-robin.
    inject: Vec<Sender<(usize, T)>>,
    /// How many tasks `submit` has dealt (selects the next worker).
    dealt: std::cell::Cell<usize>,
    results: Receiver<(usize, TaskResult<R>)>,
}

impl<T: Send, R: Send> TaskPool<T, R> {
    /// Spawn `workers` worker threads on `scope`, all running `run`.
    pub(crate) fn new<'scope, 'env, F>(
        scope: &'scope Scope<'scope, 'env>,
        workers: usize,
        run: F,
    ) -> Self
    where
        F: Fn(T) -> R + Send + Sync + 'scope,
        T: 'scope,
        R: 'scope,
    {
        let (result_tx, results) = channel();
        let run = Arc::new(run);
        let mut inject = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (task_tx, tasks) = channel::<(usize, T)>();
            inject.push(task_tx);
            let run = Arc::clone(&run);
            let result_tx = result_tx.clone();
            scope.spawn(move || {
                while let Some((index, task)) = spin_recv(&tasks) {
                    let outcome = catch_unwind(AssertUnwindSafe(|| run(task)));
                    if result_tx.send((index, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        TaskPool {
            inject,
            dealt: std::cell::Cell::new(0),
            results,
        }
    }

    /// Queue one task; `index` is echoed back with its result. Tasks are
    /// dealt round-robin across the workers' private queues, spreading one
    /// frontier's tasks over distinct workers (a frontier wider than the
    /// pool queues the excess behind the earliest deals, which is still
    /// correct — just serialized per worker).
    pub(crate) fn submit(&self, index: usize, task: T) {
        let worker = self.dealt.get() % self.inject.len();
        self.dealt.set(self.dealt.get() + 1);
        self.inject[worker]
            .send((index, task))
            .expect("task pool workers exited early");
    }

    /// Collect `count` results in completion order (pair each with the
    /// index it was submitted under; the caller restores canonical order).
    pub(crate) fn collect(&self, count: usize) -> Vec<(usize, TaskResult<R>)> {
        (0..count)
            .map(|_| spin_recv(&self.results).expect("task pool workers exited early"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_carry_their_submission_index() {
        std::thread::scope(|scope| {
            let pool = TaskPool::new(scope, 3, |n: u64| n * 10);
            for (i, n) in [7u64, 8, 9].into_iter().enumerate() {
                pool.submit(i, n);
            }
            let mut results: Vec<(usize, u64)> = pool
                .collect(3)
                .into_iter()
                .map(|(i, r)| (i, r.expect("no panics")))
                .collect();
            results.sort_unstable();
            assert_eq!(results, vec![(0, 70), (1, 80), (2, 90)]);
        });
    }

    #[test]
    fn task_panics_are_shipped_back_not_propagated() {
        std::thread::scope(|scope| {
            let pool = TaskPool::new(scope, 2, |n: u64| {
                assert!(n != 1, "boom on task {n}");
                n
            });
            pool.submit(0, 0);
            pool.submit(1, 1);
            let mut results = pool.collect(2);
            results.sort_by_key(|(i, _)| *i);
            assert!(results[0].1.is_ok());
            let payload = results[1].1.as_ref().expect_err("task 1 panicked");
            let msg = payload
                .downcast_ref::<String>()
                .expect("panic payload is a String");
            assert!(msg.contains("boom on task 1"), "got: {msg}");
        });
    }

    #[test]
    fn dropping_the_pool_shuts_workers_down() {
        std::thread::scope(|scope| {
            let pool = TaskPool::new(scope, 4, |n: u64| n);
            pool.submit(0, 42);
            assert_eq!(pool.collect(1)[0].0, 0);
            drop(pool);
            // The scope join below completes only if all workers exited.
        });
    }

    #[test]
    fn many_more_tasks_than_workers_all_complete() {
        std::thread::scope(|scope| {
            let pool = TaskPool::new(scope, 2, |n: u64| n + 1);
            for i in 0..64usize {
                pool.submit(i, i as u64);
            }
            let mut results: Vec<(usize, u64)> = pool
                .collect(64)
                .into_iter()
                .map(|(i, r)| (i, r.expect("no panics")))
                .collect();
            results.sort_unstable();
            for (i, (index, value)) in results.into_iter().enumerate() {
                assert_eq!(index, i);
                assert_eq!(value, i as u64 + 1);
            }
        });
    }
}
