//! The event-driven node executor: wake-on-send server scheduling on a
//! bounded worker pool.
//!
//! The classic threaded runner burns one polling server thread per node
//! (`recv_timeout` loops in [`crate::node`]), which caps realistic
//! in-process clusters at roughly the machine's core count. This module
//! multiplexes the server-side protocol handling of *many* nodes onto a
//! small pool of worker threads, driven by **wake-on-send notifications**
//! from the fabric instead of timers:
//!
//! * Every enqueue into a node's inbound queue fires the fabric's
//!   [`dsm_net::WakeNotifier`] hook, which marks the destination node
//!   *runnable* and unparks one worker. A quiet cluster performs **zero**
//!   sleep-loop wakeups — parked workers sit on a condvar until a message
//!   actually arrives.
//! * A worker claims a runnable node and runs one **handler step**: it
//!   drains a bounded batch of inbound messages through the exact same
//!   [`crate::node::handle_request`] dispatch as the polling loops
//!   (replies complete pending requests, `Busy` outcomes park on the
//!   node's deferral queue) and retries the deferral queue after each
//!   message.
//! * The per-entry Busy-deferral queue **re-arms the node's runnable bit**
//!   instead of re-polling: a `Busy` outcome can only originate from a live
//!   application view holding the payload lease, so the view guard's drop
//!   (see [`crate::view`]) fires [`RearmHook::lease_released`], which
//!   re-schedules the node exactly when the deferred work can make
//!   progress. The handshake below makes this lost-wakeup-free.
//!
//! ## The node state machine
//!
//! Each node carries an atomic scheduling state with four values — `IDLE`,
//! `QUEUED` (in the run queue), `RUNNING` (a worker is stepping it) and
//! `RUNNING_NOTIFIED` (a wake arrived mid-step). [`ExecShared::schedule`]
//! transitions `IDLE → QUEUED` (push + unpark) or `RUNNING →
//! RUNNING_NOTIFIED` (the finishing worker re-queues the node itself), and
//! is a no-op in the other states, so a node is in the run queue **at most
//! once** and never stepped by two workers concurrently — per-node message
//! handling stays serialized exactly as with one server thread per node.
//!
//! ## The Busy re-arm handshake
//!
//! A worker that ends a step with a non-empty deferral queue publishes
//! `has_deferred = true`, snapshots the node's `rearm_epoch`, and gives the
//! queue one final retry. The view-guard dropper (running on the
//! application thread, strictly *after* the payload lease is released)
//! increments `rearm_epoch` and schedules the node if it observes
//! `has_deferred`. All accesses are `SeqCst`, so either the dropper sees
//! `has_deferred` (and re-schedules), or the worker's final retry ran after
//! the lease release (and drains the entry), or the worker observes the
//! epoch moved and re-queues the node itself — in every interleaving the
//! deferred work is retried after the release, with no polling.
//!
//! ## Why deadlock-freedom carries over
//!
//! Handler steps never block: the engine only ever takes `try_` payload
//! locks and reports `Busy`, workers take the node's serve lock (a leaf
//! lock, uncontended — at most one worker runs a node) and the run-queue
//! mutex, never both while calling into the engine, and the termination
//! check reads only atomics and queue depths. An application thread blocked
//! on the network therefore always has a responsive (schedulable) server,
//! which is the same argument the per-node-thread loops rely on.
//!
//! The sim fabric keeps its own virtual-time scheduler (`crate::sim`):
//! its sequential reference loop never touches this module, and its
//! parallel frontier loop borrows only the scoped [`pool::TaskPool`]
//! below — the wake-on-send state machine stays executor-only.

pub(crate) mod pool;

use crate::node::{handle_request, retry_deferred, trace_enabled, BatchPartials, NodeShared};
use crate::report::SchedulerReport;
use dsm_core::ProtocolMsg;
use dsm_net::{Envelope, WakeNotifier};
use dsm_objspace::NodeId;
use dsm_util::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar};

/// Node scheduling states (see the module docs).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_NOTIFIED: u8 = 3;

/// Upper bound on messages drained in one handler step, so one flooded
/// node cannot starve the rest of the pool; a capped step re-queues its
/// node behind the already-runnable ones.
const STEP_BATCH: usize = 64;

/// The serve-side state a worker needs while stepping a node: the
/// Busy-deferral queue and the partially resolved diff batches. Protected
/// by a per-node leaf mutex that is uncontended in steady state (the state
/// machine admits one worker per node); the lock exists so the state
/// survives hand-offs between different workers.
struct ServeState {
    deferred: VecDeque<(NodeId, ProtocolMsg)>,
    partials: BatchPartials,
}

/// Per-node scheduling state.
struct NodeSched {
    /// `IDLE` / `QUEUED` / `RUNNING` / `RUNNING_NOTIFIED`.
    state: AtomicU8,
    /// Bumped by the application thread on every view-lease release; the
    /// worker-side epoch comparison closes the re-arm race window.
    rearm_epoch: AtomicU64,
    /// Whether the node's last completed step left deferred work behind
    /// (published so lease releases know to re-schedule).
    has_deferred: AtomicBool,
    /// Length of the deferral queue after the node's last step — read by
    /// the termination check without taking the serve lock.
    deferred_len: AtomicUsize,
    serve: Mutex<ServeState>,
}

impl NodeSched {
    fn new() -> Self {
        NodeSched {
            state: AtomicU8::new(IDLE),
            rearm_epoch: AtomicU64::new(0),
            has_deferred: AtomicBool::new(false),
            deferred_len: AtomicUsize::new(0),
            serve: Mutex::new(ServeState {
                deferred: VecDeque::new(),
                partials: BatchPartials::new(),
            }),
        }
    }
}

/// The run queue and pool bookkeeping, behind the executor's one mutex.
struct RunQueue {
    /// Nodes in `QUEUED` state, FIFO.
    runnable: VecDeque<usize>,
    /// Workers currently inside a handler step.
    active: usize,
    /// Workers parked on the condvar.
    parked: usize,
    /// Shutdown has been requested (teardown may still need steps).
    shutdown: bool,
    /// Every queue is drained post-shutdown; workers exit.
    done: bool,
    runnable_hwm: usize,
    parked_hwm: usize,
}

/// State shared by the workers, the fabric's wake hook and the re-arm
/// hooks. Deliberately does **not** hold the `NodeShared`s (they hold
/// `RearmHook`s back into this struct; an `Arc` cycle would leak) — workers
/// borrow the node slice for the duration of the run instead.
pub(crate) struct ExecShared {
    queue: Mutex<RunQueue>,
    idle: Condvar,
    nodes: Box<[NodeSched]>,
    /// Cluster node ids by executor slot (identity for in-process runners;
    /// a single entry for a multi-process TCP worker).
    ids: Box<[NodeId]>,
    steps: AtomicU64,
    idle_steps: AtomicU64,
    wakeups: AtomicU64,
    renotifies: AtomicU64,
    rearm_requeues: AtomicU64,
}

impl WakeNotifier for ExecShared {
    fn wake(&self, node: NodeId) {
        if let Some(slot) = self.slot(node) {
            self.schedule(slot);
        }
    }
}

impl ExecShared {
    /// Map a cluster node id to its executor slot. In-process runners use
    /// the identity mapping; a multi-process TCP worker hosts one node
    /// under slot 0.
    fn slot(&self, node: NodeId) -> Option<usize> {
        let guess = node.0 as usize;
        if self.ids.get(guess) == Some(&node) {
            return Some(guess);
        }
        self.ids.iter().position(|&id| id == node)
    }

    /// Mark a node runnable: `IDLE → QUEUED` enqueues it and unparks one
    /// worker; `RUNNING → RUNNING_NOTIFIED` tells the stepping worker to
    /// re-queue it; `QUEUED`/`RUNNING_NOTIFIED` are no-ops. Callers enqueue
    /// the triggering message *before* scheduling, so a node observed
    /// `IDLE` here either gets queued or is already being (re)stepped —
    /// wakes are never lost.
    pub(crate) fn schedule(&self, node: usize) {
        let state = &self.nodes[node].state;
        loop {
            match state.compare_exchange(IDLE, QUEUED, SeqCst, SeqCst) {
                Ok(_) => {
                    self.wakeups.fetch_add(1, SeqCst);
                    {
                        let mut q = self.queue.lock();
                        q.runnable.push_back(node);
                        q.runnable_hwm = q.runnable_hwm.max(q.runnable.len());
                    }
                    self.idle.notify_one();
                    return;
                }
                Err(RUNNING) => {
                    if state
                        .compare_exchange(RUNNING, RUNNING_NOTIFIED, SeqCst, SeqCst)
                        .is_ok()
                    {
                        self.renotifies.fetch_add(1, SeqCst);
                        return;
                    }
                    // The step finished (or another wake landed) between the
                    // two CASes; re-examine from the top.
                }
                Err(_) => return, // QUEUED or RUNNING_NOTIFIED: already armed
            }
        }
    }

    /// Claim the next runnable node, parking until one appears. Returns
    /// `None` when the pool is done (shutdown requested and every queue
    /// drained).
    fn next_runnable(&self, shareds: &[Arc<NodeShared>]) -> Option<usize> {
        let mut q = self.queue.lock();
        loop {
            if q.done {
                return None;
            }
            if let Some(node) = q.runnable.pop_front() {
                let was = self.nodes[node].state.swap(RUNNING, SeqCst);
                debug_assert_eq!(was, QUEUED, "popped a node that was not queued");
                q.active += 1;
                return Some(node);
            }
            if q.shutdown && q.active == 0 && self.all_drained(shareds) {
                q.done = true;
                self.idle.notify_all();
                return None;
            }
            q.parked += 1;
            q.parked_hwm = q.parked_hwm.max(q.parked);
            q = self
                .idle
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q.parked -= 1;
        }
    }

    /// Whether every node's inbound and deferral queues are empty (and, on
    /// the TCP fabric, every peer's leave has been received). Reads only
    /// atomics — never a serve lock — so it cannot invert lock order
    /// against a stepping worker.
    fn all_drained(&self, shareds: &[Arc<NodeShared>]) -> bool {
        shareds.iter().enumerate().all(|(slot, shared)| {
            self.nodes[slot].deferred_len.load(SeqCst) == 0 && shared.link_drained()
        })
    }

    /// Run one handler step of `node`: drain up to [`STEP_BATCH`] inbound
    /// messages through the shared dispatch, retry the deferral queue, and
    /// execute the Busy re-arm handshake. Returns whether the node must be
    /// re-queued immediately (batch cap hit, or the re-arm epoch moved
    /// under the final retry).
    fn run_step(&self, node: usize, shared: &Arc<NodeShared>) -> bool {
        self.steps.fetch_add(1, SeqCst);
        let sched = &self.nodes[node];
        let mut serve_guard = sched.serve.lock();
        // Reborrow as a plain `&mut ServeState` so the deferral queue and
        // the batch partials can be borrowed independently.
        let serve = &mut *serve_guard;
        let entered_empty = serve.deferred.is_empty();
        let mut handled = 0usize;
        while handled < STEP_BATCH {
            let Some(envelope) = shared.link_try_recv() else {
                break;
            };
            handled += 1;
            dispatch(shared, envelope, serve);
        }
        let mut requeue = handled == STEP_BATCH && shared.link_pending() > 0;

        // Busy re-arm endgame (see the module docs): publish, snapshot the
        // epoch, retry once more, then compare.
        if serve.deferred.is_empty() {
            sched.has_deferred.store(false, SeqCst);
        } else {
            sched.has_deferred.store(true, SeqCst);
            let epoch = sched.rearm_epoch.load(SeqCst);
            retry_deferred(shared, &mut serve.deferred, &mut serve.partials);
            if serve.deferred.is_empty() {
                sched.has_deferred.store(false, SeqCst);
            } else if sched.rearm_epoch.load(SeqCst) != epoch {
                self.rearm_requeues.fetch_add(1, SeqCst);
                requeue = true;
            }
        }
        debug_assert!(
            !serve.deferred.is_empty() || serve.partials.is_empty(),
            "batch partials outlived their deferred entries"
        );
        sched.deferred_len.store(serve.deferred.len(), SeqCst);

        // TCP teardown: a step that leaves the node fully drained after
        // shutdown announces the leave (idempotent), exactly where the
        // polling loop does. Per-link FIFO makes it the last frame peers
        // read from us.
        if shared.should_shutdown() && serve.deferred.is_empty() && shared.link_pending() == 0 {
            shared.link_announce_leave();
        }

        if handled == 0 && entered_empty {
            self.idle_steps.fetch_add(1, SeqCst);
        }
        requeue
    }

    /// Return a stepped node to `IDLE`, honouring mid-step notifications,
    /// and run the termination check. The re-queue happens *before* the
    /// active count drops, so a concurrent termination check can never
    /// observe "no work" while a hand-off is in flight.
    fn finish_step(&self, node: usize, shareds: &[Arc<NodeShared>], requeue: bool) {
        let was = self.nodes[node].state.swap(IDLE, SeqCst);
        debug_assert!(
            was == RUNNING || was == RUNNING_NOTIFIED,
            "finished a node that was not running"
        );
        if was == RUNNING_NOTIFIED || requeue {
            self.schedule(node);
        }
        let mut q = self.queue.lock();
        q.active -= 1;
        if q.shutdown
            && !q.done
            && q.active == 0
            && q.runnable.is_empty()
            && self.all_drained(shareds)
        {
            q.done = true;
            self.idle.notify_all();
        }
    }
}

/// Dispatch one inbound envelope exactly as the polling server loops do.
fn dispatch(shared: &Arc<NodeShared>, envelope: Envelope<ProtocolMsg>, serve: &mut ServeState) {
    if trace_enabled() {
        eprintln!(
            "[{}] serve from {} {:?}",
            shared.node, envelope.src, envelope.payload
        );
    }
    shared
        .clock
        .merge_and_advance(envelope.arrival, shared.handling_cost);
    let arrival = envelope.arrival;
    let src = envelope.src;
    let msg = envelope.payload;
    if msg.is_reply() {
        let req = msg.reply_req().expect("reply carries request id");
        shared.complete(req, msg, arrival);
    } else if let Some(busy) = handle_request(shared, src, msg, &mut serve.partials) {
        serve.deferred.push_back((src, busy));
    }
    retry_deferred(shared, &mut serve.deferred, &mut serve.partials);
}

/// The bounded worker pool driving one cluster run.
pub(crate) struct Executor {
    shared: Arc<ExecShared>,
    workers: usize,
}

impl Executor {
    /// Create a pool of `workers` threads scheduling the given nodes
    /// (`ids[slot]` is the cluster identity of executor slot `slot`).
    pub(crate) fn new(ids: Vec<NodeId>, workers: usize) -> Self {
        assert!(workers > 0, "executor needs at least one worker");
        let nodes: Box<[NodeSched]> = ids.iter().map(|_| NodeSched::new()).collect();
        Executor {
            shared: Arc::new(ExecShared {
                queue: Mutex::new(RunQueue {
                    runnable: VecDeque::new(),
                    active: 0,
                    parked: 0,
                    shutdown: false,
                    done: false,
                    runnable_hwm: 0,
                    parked_hwm: 0,
                }),
                idle: Condvar::new(),
                nodes,
                ids: ids.into_boxed_slice(),
                steps: AtomicU64::new(0),
                idle_steps: AtomicU64::new(0),
                wakeups: AtomicU64::new(0),
                renotifies: AtomicU64::new(0),
                rearm_requeues: AtomicU64::new(0),
            }),
            workers,
        }
    }

    /// Number of worker threads the pool was sized for.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// The wake hook to install into the fabric (`WakeHub::install` /
    /// `TcpEndpoint::install_notifier`).
    pub(crate) fn notifier(&self) -> Arc<dyn WakeNotifier> {
        Arc::clone(&self.shared) as Arc<dyn WakeNotifier>
    }

    /// The re-arm hook for the node in executor slot `slot` (attached to
    /// its `NodeShared` so view-lease releases re-schedule it).
    pub(crate) fn hook(&self, slot: usize) -> RearmHook {
        RearmHook {
            exec: Arc::clone(&self.shared),
            node: slot,
        }
    }

    /// Schedule every node once. Wakes that fired before the notifier was
    /// installed were dropped (the fabric is created first), so the pool
    /// must sweep every inbound queue once before relying on wake-on-send —
    /// essential for multi-process TCP workers, where remote peers may
    /// have sent before this process finished wiring up.
    pub(crate) fn prime(&self) {
        for slot in 0..self.shared.nodes.len() {
            self.shared.schedule(slot);
        }
    }

    /// Begin teardown: mark shutdown, schedule every node for its drain
    /// step (the TCP leave announcement happens there) and unpark everyone
    /// so the termination check runs.
    pub(crate) fn begin_shutdown(&self) {
        self.shared.queue.lock().shutdown = true;
        for slot in 0..self.shared.nodes.len() {
            self.shared.schedule(slot);
        }
        self.idle_notify_all();
    }

    fn idle_notify_all(&self) {
        // Touch the queue lock so a worker between its empty-check and its
        // park cannot miss the notification.
        drop(self.shared.queue.lock());
        self.shared.idle.notify_all();
    }

    /// One worker's main loop: claim runnable nodes and step them until the
    /// pool is done.
    pub(crate) fn run_worker(&self, shareds: &[Arc<NodeShared>]) {
        while let Some(node) = self.shared.next_runnable(shareds) {
            let requeue = self.shared.run_step(node, &shareds[node]);
            self.shared.finish_step(node, shareds, requeue);
        }
    }

    /// The scheduling counters of the finished run.
    pub(crate) fn report(&self, queue_depth_high_watermark: usize) -> SchedulerReport {
        let shared = &self.shared;
        let q = shared.queue.lock();
        SchedulerReport {
            mode: "executor",
            workers: self.workers,
            steps: shared.steps.load(SeqCst),
            wakeups: shared.wakeups.load(SeqCst),
            idle_wakeups: shared.idle_steps.load(SeqCst),
            renotifies: shared.renotifies.load(SeqCst),
            rearm_requeues: shared.rearm_requeues.load(SeqCst),
            runnable_high_watermark: q.runnable_hwm,
            parked_high_watermark: q.parked_hwm,
            queue_depth_high_watermark,
            frontiers: 0,
            frontier_events: 0,
            frontier_high_watermark: 0,
        }
    }
}

/// The per-node re-arm hook held by a `NodeShared`: view-lease releases and
/// teardown aborts re-schedule the node through it.
pub(crate) struct RearmHook {
    exec: Arc<ExecShared>,
    node: usize,
}

impl RearmHook {
    /// Called by the application thread after a view's payload lease is
    /// truly released (the guard has dropped). Bumps the re-arm epoch and
    /// re-schedules the node if its last step left deferred work.
    pub(crate) fn lease_released(&self) {
        let sched = &self.exec.nodes[self.node];
        sched.rearm_epoch.fetch_add(1, SeqCst);
        if sched.has_deferred.load(SeqCst) {
            self.exec.schedule(self.node);
        }
    }

    /// Unconditionally mark the node runnable (teardown paths).
    pub(crate) fn schedule(&self) {
        self.exec.schedule(self.node);
    }
}

impl std::fmt::Debug for RearmHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RearmHook")
            .field("node", &self.node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(nodes: usize) -> Executor {
        Executor::new((0..nodes).map(|n| NodeId(n as u16)).collect(), 2)
    }

    #[test]
    fn schedule_queues_an_idle_node_exactly_once() {
        let e = exec(2);
        e.shared.schedule(1);
        e.shared.schedule(1); // QUEUED: no-op
        let q = e.shared.queue.lock();
        assert_eq!(q.runnable, vec![1]);
        assert_eq!(q.runnable_hwm, 1);
        drop(q);
        assert_eq!(e.shared.wakeups.load(SeqCst), 1);
    }

    #[test]
    fn notification_during_a_step_requeues_via_the_state_machine() {
        let e = exec(1);
        // Simulate a worker mid-step: QUEUED -> RUNNING as next_runnable does.
        e.shared.schedule(0);
        {
            let mut q = e.shared.queue.lock();
            let node = q.runnable.pop_front().unwrap();
            e.shared.nodes[node].state.swap(RUNNING, SeqCst);
            q.active += 1;
        }
        // A wake lands while the step runs: no queue push, just the flag.
        e.shared.schedule(0);
        assert_eq!(e.shared.renotifies.load(SeqCst), 1);
        assert!(e.shared.queue.lock().runnable.is_empty());
        // The finishing worker observes the flag and re-queues the node.
        e.shared.finish_step(0, &[], false);
        let q = e.shared.queue.lock();
        assert_eq!(q.runnable, vec![0]);
        assert_eq!(q.active, 0);
        assert_eq!(e.shared.wakeups.load(SeqCst), 2);
    }

    #[test]
    fn lease_release_reschedules_only_with_deferred_work() {
        let e = exec(1);
        let hook = e.hook(0);
        hook.lease_released();
        assert!(e.shared.queue.lock().runnable.is_empty());
        assert_eq!(e.shared.nodes[0].rearm_epoch.load(SeqCst), 1);
        e.shared.nodes[0].has_deferred.store(true, SeqCst);
        hook.lease_released();
        assert_eq!(e.shared.queue.lock().runnable, vec![0]);
        assert_eq!(e.shared.nodes[0].rearm_epoch.load(SeqCst), 2);
    }

    #[test]
    fn slot_maps_identity_and_single_node_workers() {
        let cluster = exec(4);
        assert_eq!(cluster.shared.slot(NodeId(3)), Some(3));
        assert_eq!(cluster.shared.slot(NodeId(4)), None);
        let worker = Executor::new(vec![NodeId(7)], 1);
        assert_eq!(worker.shared.slot(NodeId(7)), Some(0));
        assert_eq!(worker.shared.slot(NodeId(0)), None);
    }
}
