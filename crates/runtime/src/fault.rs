//! Timeout/retry, duplicate suppression and home re-election: the recovery
//! machinery that keeps a run live when the fabric drops messages.
//!
//! Lossless fabrics (threaded, TCP, calm/perturbed sim) never instantiate
//! this state — every request is sent exactly once and answered exactly
//! once, and any stall is a genuine deadlock. Under a *lossy* sim config
//! ([`dsm_net::SimConfig::is_lossy`]) each node carries a [`FaultState`]:
//!
//! * **Client side** — every blocking request (and every tracked one-way
//!   message, e.g. an acknowledged `LockRelease` or a `HomeFence`) leaves a
//!   [`RetryEntry`]. When the scheduler observes a stall with agents still
//!   parked, [`fire_retries`] advances each waiting node's clock by the
//!   retry timeout and retransmits every outstanding message — the sim
//!   analogue of a per-request timeout timer.
//! * **Server side** — requests are admitted through a dedup table keyed by
//!   [`ReqId`] ([`admit_request`]): a re-delivered request whose original is
//!   still in flight is absorbed, and one whose reply was already sent gets
//!   the cached reply retransmitted instead of re-executing the handler.
//!   This is what makes retransmission safe for non-idempotent operations
//!   (lock acquires, barrier arrivals, diff applications).
//! * **Home re-election** — a fault-in or flush that stays unanswered for
//!   [`FaultConfig::failover_after`] retry rounds treats its destination as
//!   a dark home and asks the object's *arbiter* (its registered manager,
//!   or the next node when the manager is the suspect) to elect a reachable
//!   replacement; see `dsm_core::engine`'s "Fault model & recovery" docs
//!   for the election and epoch-fencing rules. The election exchange itself
//!   is idempotent by construction (sticky arbiter decisions) and is
//!   deliberately *not* deduplicated.
//!
//! Everything here is driven by the deterministic scheduler thread between
//! quiescence points, so retransmissions, elections and fences replay
//! bit-identically for a given seed.

use crate::node::NodeShared;
use dsm_core::{ProtocolMsg, ReqId};
use dsm_model::SimDuration;
use dsm_objspace::{NodeId, ObjectId};
use dsm_util::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Tuning of the lossy-run recovery machinery.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultConfig {
    /// Virtual time a retrying node's clock advances per retry round.
    pub retry_timeout: SimDuration,
    /// Total sends (original + retransmissions) per entry before it is
    /// declared exhausted; when every outstanding entry is exhausted the
    /// scheduler gives up and panics with diagnostics.
    pub max_attempts: u32,
    /// Retry rounds an electable request (fault-in or diff flush) waits on
    /// one destination before suspecting a dead home and asking the
    /// arbiter for a re-election. Must comfortably exceed the retry rounds
    /// a partition window spans, so a healable partition never triggers a
    /// spurious election.
    pub failover_after: u32,
}

impl FaultConfig {
    /// The defaults used by lossy sim runs: 50 µs retry timeout (a few
    /// round trips under the default network model), effectively-unbounded
    /// retries (1000 — a partition crossing needs a few hundred), and
    /// failover after 16 silent rounds.
    pub fn sim_default() -> Self {
        FaultConfig {
            retry_timeout: SimDuration::from_micros(50.0),
            max_attempts: 1000,
            failover_after: 16,
        }
    }
}

/// Which stage of recovery a tracked message is in.
#[derive(Debug, Clone)]
enum RetryPhase {
    /// Retransmitting the original message to its believed destination.
    Normal,
    /// The destination went dark: retransmitting a `HomeElect` to the
    /// arbiter, original aim parked for the revert/re-aim on reply.
    Electing {
        original_dst: NodeId,
        original_msg: ProtocolMsg,
    },
    /// A `HomeFence` to the deposed home: retried until acked, never
    /// re-elected (the fence *is* the recovery).
    Fence,
}

/// One outstanding tracked message.
#[derive(Debug, Clone)]
struct RetryEntry {
    dst: NodeId,
    msg: ProtocolMsg,
    /// Retry rounds in the current phase/aim (reset on re-aim).
    attempts: u32,
    /// Lifetime sends, bounded by [`FaultConfig::max_attempts`].
    total: u32,
    phase: RetryPhase,
}

/// Per-node fault-recovery state; `None` on lossless fabrics.
pub(crate) struct FaultState {
    pub config: FaultConfig,
    /// Outstanding tracked messages, keyed by request id. A `BTreeMap` so
    /// the retry pass iterates in a deterministic order.
    retries: Mutex<BTreeMap<ReqId, RetryEntry>>,
    /// Server-side at-most-once table: requests seen (`None` — original
    /// still being processed or absorbed) and requests answered (`Some` —
    /// the cached reply to retransmit on a duplicate).
    dedup: Mutex<HashMap<ReqId, Option<(NodeId, ProtocolMsg)>>>,
}

impl FaultState {
    pub fn new(config: FaultConfig) -> Self {
        FaultState {
            config,
            retries: Mutex::new(BTreeMap::new()),
            dedup: Mutex::new(HashMap::new()),
        }
    }

    /// Track an outstanding message for retransmission. Called with the
    /// original send, which counts as the first attempt.
    pub fn track(&self, req: ReqId, dst: NodeId, msg: ProtocolMsg) {
        self.track_phase(req, dst, msg, RetryPhase::Normal);
    }

    fn track_phase(&self, req: ReqId, dst: NodeId, msg: ProtocolMsg, phase: RetryPhase) {
        let previous = self.retries.lock().insert(
            req,
            RetryEntry {
                dst,
                msg,
                attempts: 0,
                total: 1,
                phase,
            },
        );
        debug_assert!(previous.is_none(), "duplicate tracked request {req:?}");
    }

    /// Stop retransmitting `req` (its reply or ack arrived).
    pub fn clear(&self, req: ReqId) {
        self.retries.lock().remove(&req);
    }

    /// Drop every tracked message (teardown after a panic).
    pub fn abort(&self) {
        self.retries.lock().clear();
    }

    /// Record the reply/ack the server produced for request `req`, so a
    /// retransmitted duplicate of that request can be answered from cache.
    fn cache_reply(&self, req: ReqId, dst: NodeId, msg: ProtocolMsg) {
        self.dedup.lock().insert(req, Some((dst, msg)));
    }
}

/// Hook for [`NodeShared::send`]: under a lossy fabric, remember every
/// reply and acknowledgement by the request id it answers.
pub(crate) fn note_sent(shared: &NodeShared, dst: NodeId, msg: &ProtocolMsg) {
    let Some(fault) = &shared.fault else { return };
    // `HomeElectReply` deliberately reuses the suspended request's id and
    // is excluded here (its request is not deduplicated either): caching it
    // would let a retransmitted fault-in be "answered" with an election
    // reply it cannot use.
    if let Some(req) = msg.reply_req().or_else(|| msg.ack_req()) {
        fault.cache_reply(req, dst, msg.clone());
    }
}

/// Server-ingress admission: returns `true` when the message should be
/// processed, `false` when it was absorbed as a duplicate (re-sending the
/// cached reply if one exists). Only messages with a
/// [`ProtocolMsg::dedup_req`] id participate; replies, notifications and
/// the election/fence exchange pass straight through.
pub(crate) fn admit_request(shared: &Arc<NodeShared>, msg: &ProtocolMsg) -> bool {
    let Some(fault) = &shared.fault else {
        return true;
    };
    let Some(req) = msg.dedup_req() else {
        return true;
    };
    let cached = {
        let mut dedup = fault.dedup.lock();
        match dedup.get(&req) {
            None => {
                dedup.insert(req, None);
                return true;
            }
            Some(None) => None,
            Some(Some((dst, reply))) => Some((*dst, reply.clone())),
        }
    };
    if let Some((dst, reply)) = cached {
        shared.send(dst, reply);
    }
    false
}

/// The object a message would re-elect a home for: only fault-ins and
/// individual diff flushes fail over. Lock/barrier traffic aims at the
/// fixed sync manager and diff batches are re-planned by their sender, so
/// those retry until the network heals instead.
fn electable_obj(msg: &ProtocolMsg) -> Option<ObjectId> {
    match msg {
        ProtocolMsg::ObjectRequest { obj, .. } | ProtocolMsg::DiffFlush { obj, .. } => Some(*obj),
        _ => None,
    }
}

/// The arbiter for re-electing `obj`'s home: its registered manager
/// (initial home), or the next node around the ring when the manager is
/// the suspect itself.
fn arbiter_for(shared: &NodeShared, obj: ObjectId, suspect: NodeId) -> NodeId {
    let manager = shared.engine.manager_of(obj);
    if manager == suspect {
        NodeId((manager.0 + 1) % shared.num_nodes as u16)
    } else {
        manager
    }
}

/// Swing a silent entry to the election phase: its next transmissions carry
/// a `HomeElect` to the arbiter instead of the original message.
fn begin_election(shared: &NodeShared, req: ReqId, entry: &mut RetryEntry, obj: ObjectId) {
    let suspect = entry.dst;
    let elect = ProtocolMsg::HomeElect {
        req,
        obj,
        suspect,
        candidate: shared.node,
        epoch: shared.engine.home_epoch(obj),
        has_copy: shared.engine.has_copy(obj),
    };
    entry.phase = RetryPhase::Electing {
        original_dst: suspect,
        original_msg: std::mem::replace(&mut entry.msg, elect),
    };
    entry.dst = arbiter_for(shared, obj, suspect);
    entry.attempts = 0;
}

/// What provoked a retransmission round — it decides how the retrying
/// nodes' clocks move.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RetryRound {
    /// The fabric stalled with agents parked: nothing else can advance
    /// virtual time, so each retrying node's clock advances by one retry
    /// timeout (healable partitions eventually heal in virtual time).
    Stalled,
    /// A timed round: the scheduler's retry deadline came due while the
    /// network was still busy. Clocks are left alone — retransmissions are
    /// stamped at each owner's current clock, exactly as if that node had
    /// re-sent on its own. Dragging a parked node's clock up to the busy
    /// traffic's time would change which of its sends fall inside seeded
    /// loss windows ([`dsm_net::PauseSpec`] decides drops by the *sender's*
    /// `sent_at`), and with it the recovery ordering the windows were
    /// placed to exercise — e.g. a deposed home's `HomeFence` must clear a
    /// heal boundary before the barrier release that wakes the deposed
    /// node's application can.
    Due,
}

/// One retransmission round across every node, in node order then request
/// id order — fired by the scheduler either when the fabric stalled with
/// agents parked ([`RetryRound::Stalled`]) or when the retry deadline
/// passed on a busy network ([`RetryRound::Due`]). The timed flavor is
/// what makes the retry machinery a true timer: a lost reply must be
/// retransmitted even while *other* nodes keep the event queue busy (a
/// redirect chase chattering over a stale hint can otherwise starve the
/// very retransmission that would resolve it). Each node with live
/// entries moves its clock per the round flavor (stall rounds advance by
/// one timeout, timed rounds not at all), then retransmits every
/// non-exhausted entry. Returns whether anything was sent; `false` means
/// every entry is exhausted (or none exists).
///
/// Only **stall** rounds count toward [`FaultConfig::failover_after`] and
/// can escalate to a home re-election. A stalled fabric is true silence —
/// an unanswered electable request really is aimed at something
/// unreachable. On a busy network an unanswered request usually means a
/// live home that is slow or `Busy`-deferring; electing it away would
/// depose a healthy home mid-operation (its already-applied diffs then
/// get re-applied at the new home — double-applied writes and wrong
/// results). Timed rounds therefore retransmit without aging entries: a
/// genuinely dark destination keeps dropping traffic until the run drains
/// into a stall, and failover proceeds from there.
pub(crate) fn fire_retries(shareds: &[Arc<NodeShared>], round: RetryRound) -> bool {
    let mut progressed = false;
    for shared in shareds {
        let Some(fault) = &shared.fault else { continue };
        let mut retries = fault.retries.lock();
        if !retries
            .values()
            .any(|entry| entry.total < fault.config.max_attempts)
        {
            continue;
        }
        // One timeout per round per node, not per entry: all of the node's
        // outstanding timers burn down concurrently. Timed rounds leave
        // clocks alone — see [`RetryRound::Due`].
        if matches!(round, RetryRound::Stalled) {
            shared.clock.advance(fault.config.retry_timeout);
        }
        for (req, entry) in retries.iter_mut() {
            if entry.total >= fault.config.max_attempts {
                continue;
            }
            entry.total += 1;
            if matches!(round, RetryRound::Stalled) {
                entry.attempts += 1;
                if matches!(entry.phase, RetryPhase::Normal)
                    && entry.attempts >= fault.config.failover_after
                    && entry.dst != shared.node
                {
                    if let Some(obj) = electable_obj(&entry.msg) {
                        begin_election(shared, *req, entry, obj);
                    }
                }
            }
            shared.send(entry.dst, entry.msg.clone());
            progressed = true;
        }
    }
    progressed
}

/// Candidate-side handling of a `HomeElectReply` (delivered through the
/// normal request path — it is not a blocking reply). A refusal reverts
/// the entry to retrying its original destination; an acceptance installs
/// the elected home, notifies the rest of the cluster, arms an
/// acknowledged `HomeFence` at the deposed home and re-aims the suspended
/// request at the winner.
pub(crate) fn handle_elect_reply(
    shared: &Arc<NodeShared>,
    req: ReqId,
    obj: ObjectId,
    home: NodeId,
    epoch: u32,
) {
    let Some(fault) = &shared.fault else { return };
    // Re-aim the suspended request if its election entry is still live.
    // The entry may instead be gone (the request completed through another
    // path — e.g. a late reply from the deposed home crossed the election)
    // or back in a non-electing phase (duplicate of an older reply). A
    // *refusal* is then simply stale. An **acceptance is not**: the
    // arbiter's decision is sticky — it answers every later election for
    // this object with the same `(home, epoch)` and already redirects
    // traffic there — so the candidate must adopt it with or without the
    // entry. A candidate that shrugs off its own acceptance becomes the
    // cluster's lone dissenter: every other node can learn the new home
    // from epoch-guarded hints, but the elected node itself rejects
    // "the home is you" hints, keeps aiming traffic at the deposed home,
    // and the two redirect at each other until the convergence bound
    // trips.
    let entry_aim = {
        let mut retries = fault.retries.lock();
        if let Some(entry) = retries.get_mut(&req) {
            if let RetryPhase::Electing {
                original_dst,
                original_msg,
            } = entry.phase.clone()
            {
                if home == original_dst || epoch == 0 {
                    // Refusal: no reachable copy holder (or the arbiter
                    // thinks the suspect is fine). Fall back to retrying
                    // the original aim — if the silence was a partition,
                    // healing resolves it.
                    entry.dst = original_dst;
                    entry.msg = original_msg;
                    entry.phase = RetryPhase::Normal;
                    entry.attempts = 0;
                    return;
                }
                entry.dst = home;
                entry.msg = original_msg.clone();
                entry.phase = RetryPhase::Normal;
                entry.attempts = 0;
                entry.total += 1;
                Some((original_dst, original_msg))
            } else {
                None
            }
        } else {
            None
        }
    };
    if epoch == 0 || (entry_aim.is_none() && shared.engine.home_epoch(obj) >= epoch) {
        // A refusal with no live election, or an acceptance this node
        // already adopted (duplicate reply): nothing new was decided.
        return;
    }
    // The deposed home: the suspended request's original aim, or — entry
    // gone — this node's own pre-install belief of the object's home.
    let deposed = entry_aim
        .as_ref()
        .map(|(dst, _)| *dst)
        .unwrap_or_else(|| shared.engine.home_hint(obj));
    // Adopt (or promote to) the elected home before resending, so our own
    // redirect handling and flush planning agree with the new aim.
    shared.engine.install_elected_home(obj, home, epoch);
    if entry_aim.is_none() && (home != shared.node || deposed == shared.node || deposed == home) {
        // Someone else's sticky decision (its candidate fenced and
        // notified on install), or no distinct deposed home left to
        // fence: adopting the hint was all there was to do.
        return;
    }
    // Spread the news. These are fire-and-forget and may themselves be
    // dropped; a node that misses one re-discovers the home through the
    // sticky arbiter when its own traffic to the dead home times out.
    for n in 0..shared.num_nodes as u16 {
        let n = NodeId(n);
        if n != shared.node && n != deposed && n != home {
            shared.send(
                n,
                ProtocolMsg::HomeNotify {
                    obj,
                    new_home: home,
                    epoch,
                },
            );
        }
    }
    // Fence the deposed home: retried until acknowledged, so the moment it
    // becomes reachable again it demotes its stale copy instead of serving
    // split-brain grants.
    let fence_req = shared.new_req();
    let fence = ProtocolMsg::HomeFence {
        req: fence_req,
        obj,
        new_home: home,
        epoch,
    };
    fault.track_phase(fence_req, deposed, fence.clone(), RetryPhase::Fence);
    shared.send(deposed, fence);
    // Resend the suspended request at its new home immediately (the entry
    // was already re-aimed above, so later retry rounds agree).
    if let Some((_, original_msg)) = entry_aim {
        shared.send(home, original_msg);
    }
}

/// Clear the retry entry an acknowledgement answers (`LockReleaseAck`,
/// `HomeFenceAck`). Duplicate acks are ignored.
pub(crate) fn handle_ack(shared: &NodeShared, req: ReqId) {
    if let Some(fault) = &shared.fault {
        fault.clear(req);
    }
}
