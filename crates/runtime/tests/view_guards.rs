//! Guard-semantics tests for the zero-copy view API: diff bookkeeping on
//! drop, conflict detection, and the fallible surface's typed errors.

use dsm_core::ProtocolConfig;
use dsm_model::ComputeModel;
use dsm_net::MsgCategory;
use dsm_objspace::{BarrierId, DsmError, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ClusterConfig};

fn config(nodes: usize) -> ClusterConfig {
    Cluster::builder()
        .nodes(nodes)
        .protocol(ProtocolConfig::no_migration())
        .compute(ComputeModel::free())
        .config()
}

/// Dropping one `WriteView` produces exactly one diff at the next release,
/// no matter how many elements it touched; a view whose writes are no-ops
/// produces none.
#[test]
fn write_view_drop_produces_exactly_one_diff_per_release() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.data",
        0,
        32,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("guards.lock");
    let intervals = 5u64;

    let report = Cluster::new(config(2), registry).run(move |ctx| {
        if ctx.node_id() == NodeId(1) {
            for i in 0..intervals {
                ctx.acquire(lock);
                {
                    // Many writes through one view...
                    let mut view = ctx.view_mut(&data);
                    for (k, slot) in view.iter_mut().enumerate() {
                        *slot = i * 100 + k as u64 + 1;
                    }
                }
                // ...and a second, no-op write view in the same interval:
                // its diff against the twin is empty combined with the
                // first view's writes — the twin is per-interval, so the
                // interval still flushes exactly one diff.
                {
                    let mut view = ctx.view_mut(&data);
                    let first = view[0];
                    view[0] = first.wrapping_add(0);
                }
                ctx.release(lock);
            }
        }
        ctx.barrier(BarrierId(1));
    });
    // Exactly one diff per writing interval reached the home.
    assert_eq!(report.messages(MsgCategory::Diff), intervals);
    assert_eq!(report.protocol.diffs_applied, intervals);
    // And each interval created exactly one twin.
    assert_eq!(report.protocol.twins_created, intervals);
}

/// An unchanged write view produces no diff at all at the release.
#[test]
fn untouched_write_view_flushes_nothing() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.noop",
        0,
        8,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("guards.noop.lock");
    let report = Cluster::new(config(2), registry).run(move |ctx| {
        if ctx.node_id() == NodeId(1) {
            ctx.acquire(lock);
            let view = ctx.view_mut(&data);
            drop(view);
            ctx.release(lock);
        }
        ctx.barrier(BarrierId(1));
    });
    assert_eq!(report.messages(MsgCategory::Diff), 0);
}

/// Overlapping views of one object in one critical section follow
/// reader/writer rules: many reads are fine, a write view conflicts with
/// any live view of the same object.
#[test]
fn overlapping_view_mut_is_rejected_with_view_conflict() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.conflict",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let other: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.other",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Cluster::new(config(1), registry).run(move |ctx| {
        // Shared views coexist.
        let r1 = ctx.view(&data);
        let r2 = ctx.view(&data);
        assert_eq!(r1[0], r2[0]);
        // A write view overlapping a live read view is a typed error.
        assert!(matches!(
            ctx.try_view_mut(&data),
            Err(DsmError::ViewConflict { .. })
        ));
        drop(r1);
        drop(r2);
        // Now the write view succeeds; a second one conflicts, a read view
        // of the same object conflicts, but another object is independent.
        let w = ctx.view_mut(&data);
        assert!(matches!(
            ctx.try_view_mut(&data),
            Err(DsmError::ViewConflict { .. })
        ));
        assert!(matches!(
            ctx.try_view(&data),
            Err(DsmError::ViewConflict { .. })
        ));
        let other_view = ctx.view(&other);
        assert_eq!(other_view[0], 0);
        drop(other_view);
        drop(w);
        // After dropping, everything is available again.
        assert!(ctx.try_view_mut(&data).is_ok());
    });
}

/// `try_view` on an id that was never registered returns
/// `DsmError::UnknownObject` instead of panicking; a handle whose length
/// disagrees with the registry returns `DsmError::SizeMismatch` at first
/// access (the `ArrayHandle::lookup` validation bugfix).
#[test]
fn unknown_objects_and_size_mismatches_are_typed_errors() {
    let mut registry = ObjectRegistry::new();
    let _known: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.known",
        0,
        16,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Cluster::new(config(1), registry).run(|ctx| {
        let unknown: ArrayHandle<u64> = ArrayHandle::lookup("guards.never", 0, 16);
        assert_eq!(
            ctx.try_view(&unknown).err(),
            Some(DsmError::UnknownObject { obj: unknown.id })
        );
        // Length lies are caught before any element is decoded.
        let wrong: ArrayHandle<u64> = ArrayHandle::lookup("guards.known", 0, 8);
        assert_eq!(
            ctx.try_view(&wrong).err(),
            Some(DsmError::SizeMismatch {
                obj: wrong.id,
                registered_bytes: 128,
                handle_bytes: 64,
            })
        );
        assert!(ctx.try_view_mut(&wrong).is_err());
        // A compatible reinterpretation (same byte size) is allowed.
        let reinterpreted: ArrayHandle<u32> = ArrayHandle::lookup("guards.known", 0, 32);
        assert!(ctx.try_view(&reinterpreted).is_ok());
    });
}

/// Synchronization with live views is refused with a typed error; after
/// dropping the views it succeeds.
#[test]
fn synchronization_with_live_views_is_refused() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.sync",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Cluster::new(config(1), registry).run(move |ctx| {
        let lock = LockId::derive("guards.sync.lock");
        let view = ctx.view(&data);
        assert_eq!(
            ctx.try_acquire(lock).err(),
            Some(DsmError::ViewsOutstanding { count: 1 })
        );
        assert!(ctx.try_barrier(BarrierId(2)).is_err());
        drop(view);
        assert!(ctx.try_acquire(lock).is_ok());
        let w = ctx.view_mut(&data);
        assert_eq!(
            ctx.try_release(lock).err(),
            Some(DsmError::ViewsOutstanding { count: 1 })
        );
        drop(w);
        assert!(ctx.try_release(lock).is_ok());
        assert_eq!(ctx.live_views(), 0);
    });
}

/// Views at the home node operate on the home copy in place: a write seen
/// through a read view without any release in between, and zero coherence
/// messages on a single node.
#[test]
fn home_views_are_in_place_and_message_free() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<f64> = ArrayHandle::register(
        &mut registry,
        "guards.home",
        0,
        1024,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let report = Cluster::new(config(1), registry).run(move |ctx| {
        {
            let mut w = ctx.view_mut(&data);
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = i as f64;
            }
        }
        let r = ctx.view(&data);
        assert_eq!(r[1023], 1023.0);
    });
    assert_eq!(
        report.breakdown_messages(),
        0,
        "home accesses never communicate"
    );
}

/// A remote fault-in while a write view is live is refused with a typed
/// error (blocking there could deadlock two nodes through mutual server
/// deferral); after dropping the write view the same access succeeds.
#[test]
fn remote_fetch_with_live_write_view_is_refused() {
    let mut registry = ObjectRegistry::new();
    // `local` is homed per creation node; `remote` always on the master.
    let local: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.local",
        0,
        4,
        NodeId(1),
        HomeAssignment::CreationNode,
    );
    let remote: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.remote",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Cluster::new(config(2), registry).run(move |ctx| {
        if ctx.node_id() == NodeId(1) {
            // `local` is homed here: the write view takes no fetch.
            let w = ctx.view_mut(&local);
            // `remote` would need a fault-in from the master: refused.
            assert!(matches!(
                ctx.try_view(&remote),
                Err(DsmError::FetchWithLiveWrites { writers: 1, .. })
            ));
            assert!(matches!(
                ctx.try_view_mut(&remote),
                Err(DsmError::FetchWithLiveWrites { .. })
            ));
            drop(w);
            // Without the write lease the fetch goes through, and further
            // views of the now-resident object are fine even under a write
            // view of another object.
            assert!(ctx.try_view(&remote).is_ok());
            let w = ctx.view_mut(&local);
            assert!(
                ctx.try_view(&remote).is_ok(),
                "resident objects need no fetch"
            );
            drop(w);
        }
        ctx.barrier(BarrierId(3));
    });
}

/// Bootstrapping an object that has a live view is refused instead of
/// wedging on the payload lease.
#[test]
fn bootstrap_with_live_view_is_refused() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "guards.boot",
        0,
        4,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    Cluster::new(config(1), registry).run(move |ctx| {
        let view = ctx.view(&data);
        assert!(matches!(
            ctx.try_bootstrap(&data, &[1, 2, 3, 4]),
            Err(DsmError::ViewConflict { .. })
        ));
        drop(view);
        assert!(ctx.try_bootstrap(&data, &[1, 2, 3, 4]).is_ok());
        assert_eq!(ctx.view(&data)[3], 4);
    });
}
