//! End-to-end tests of the deterministic sim-fabric runtime: event-driven
//! scheduling, seeded perturbations, replayable delivery traces.

use dsm_core::{MigrationPolicy, ProtocolConfig};
use dsm_model::ComputeModel;
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{
    ArrayHandle, Cluster, ClusterConfig, DeliveryTrace, ExecutionReport, FabricMode, SimConfig,
};

fn sim_config(nodes: usize, protocol: ProtocolConfig, sim: SimConfig) -> ClusterConfig {
    ClusterConfig::new(nodes, protocol)
        .with_compute(ComputeModel::free())
        .with_fabric(FabricMode::Sim(sim))
}

/// Lock-protected counter increments on the sim fabric; returns the final
/// counter value and the report.
fn counter_run(sim: SimConfig) -> (u64, ExecutionReport) {
    let nodes = 4;
    let increments = 10u64;
    let mut registry = ObjectRegistry::new();
    let counter: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "sim.counter",
        0,
        1,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("sim.counter.lock");
    let done = BarrierId(1);
    let total = std::sync::Arc::new(std::sync::Mutex::new(0u64));
    let total_in_run = std::sync::Arc::clone(&total);

    let report = Cluster::new(sim_config(nodes, ProtocolConfig::adaptive(), sim), registry).run(
        move |ctx| {
            for _ in 0..increments {
                ctx.acquire(lock);
                ctx.update(&counter, |v| v[0] += 1);
                ctx.release(lock);
            }
            ctx.barrier(done);
            let seen = ctx.read(&counter)[0];
            assert_eq!(seen, 4 * increments, "lost update on the sim fabric");
            if ctx.is_master() {
                *total_in_run.lock().unwrap() = seen;
            }
        },
    );
    let total = *total.lock().unwrap();
    (total, report)
}

fn trace(report: &ExecutionReport) -> &DeliveryTrace {
    report
        .delivery_trace
        .as_ref()
        .expect("sim runs carry a delivery trace")
}

#[test]
fn sim_fabric_runs_the_full_protocol() {
    let (total, report) = counter_run(SimConfig::perturbed(2004));
    assert_eq!(total, 40);
    assert_eq!(report.protocol.lock_acquires, 40);
    assert!(report.execution_time.as_micros() > 0.0);
    let trace = trace(&report);
    assert!(!trace.is_empty());
    // Message-count reconciliation: every recorded send was delivered.
    assert_eq!(trace.len() as u64, report.total_messages());
    // Per-link FIFO survived the perturbations.
    assert_eq!(trace.per_link_fifo_violation(), None);
}

#[test]
fn same_seed_replays_a_bit_identical_trace() {
    let (total_a, report_a) = counter_run(SimConfig::perturbed(7));
    let (total_b, report_b) = counter_run(SimConfig::perturbed(7));
    assert_eq!(total_a, total_b);
    assert_eq!(trace(&report_a), trace(&report_b), "seed 7 must replay");
    assert_eq!(trace(&report_a).checksum(), trace(&report_b).checksum());
    assert_eq!(report_a.execution_time, report_b.execution_time);
    assert_eq!(report_a.node_times, report_b.node_times);
}

#[test]
fn distinct_seeds_reorder_deliveries_but_agree_on_results() {
    let (total_a, report_a) = counter_run(SimConfig::perturbed(1));
    let (total_b, report_b) = counter_run(SimConfig::perturbed(2));
    assert_eq!(total_a, total_b, "results are schedule-independent");
    assert_ne!(
        trace(&report_a).order_signature(),
        trace(&report_b).order_signature(),
        "seeds 1 and 2 should explore different delivery orders"
    );
}

#[test]
fn calm_sim_matches_threaded_results() {
    let (sim_total, sim_report) = counter_run(SimConfig::calm(0));
    assert_eq!(sim_total, 40);
    assert_eq!(trace(&sim_report).per_link_fifo_violation(), None);
    // The threaded fabric computes the same application result.
    let mut registry = ObjectRegistry::new();
    let counter: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "sim.counter",
        0,
        1,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("sim.counter.lock");
    let config =
        ClusterConfig::new(4, ProtocolConfig::adaptive()).with_compute(ComputeModel::free());
    Cluster::new(config, registry).run(move |ctx| {
        for _ in 0..10 {
            ctx.synchronized(lock, || ctx.update(&counter, |v| v[0] += 1));
        }
        ctx.barrier(BarrierId(1));
        assert_eq!(ctx.read(&counter)[0], 40);
    });
}

#[test]
fn migration_happens_deterministically_on_the_sim_fabric() {
    // Single-writer pattern from node 1: the adaptive policy must migrate
    // the home, identically on every replay.
    let run = |seed: u64| {
        let mut registry = ObjectRegistry::new();
        let obj: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "sim.mig",
            0,
            4,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let lock = LockId::derive("sim.mig.lock");
        let done = BarrierId(9);
        let config = sim_config(
            4,
            ProtocolConfig::no_migration().with_migration(MigrationPolicy::adaptive()),
            SimConfig::perturbed(seed),
        );
        Cluster::new(config, registry).run(move |ctx| {
            if ctx.node_id() == NodeId(1) {
                for i in 0..6u64 {
                    ctx.synchronized(lock, || ctx.update(&obj, |v| v[0] = i + 1));
                }
            }
            ctx.barrier(done);
            if ctx.node_id() == NodeId(1) {
                assert!(ctx.is_home(&obj), "home must have migrated to the writer");
            }
        })
    };
    let a = run(5);
    let b = run(5);
    assert!(a.migrations() >= 1);
    assert_eq!(a.migrations(), b.migrations());
    assert_eq!(
        a.delivery_trace.as_ref().unwrap(),
        b.delivery_trace.as_ref().unwrap()
    );
}

#[test]
fn protocol_deadlock_panics_with_diagnostics_instead_of_hanging() {
    // Two nodes wait at *different* barriers: a genuine application
    // deadlock. The threaded runtime would hang forever; the sim scheduler
    // must detect the stall, wake the parked threads and panic with replay
    // diagnostics.
    let result = std::panic::catch_unwind(|| {
        let config = ClusterConfig::new(2, ProtocolConfig::adaptive())
            .with_compute(ComputeModel::free())
            .with_fabric(FabricMode::Sim(SimConfig::perturbed(0)));
        Cluster::new(config, ObjectRegistry::new()).run(|ctx| {
            if ctx.node_id() == NodeId(0) {
                ctx.barrier(BarrierId(1));
            } else {
                ctx.barrier(BarrierId(2));
            }
        });
    });
    let err = result.expect_err("a deadlocked sim cluster must panic, not hang");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("no progress possible"),
        "diagnostic panic expected, got: {msg}"
    );
}

#[test]
fn original_application_panic_is_preserved_through_teardown() {
    // Node 2 fails while nodes 0 and 1 park at a barrier; teardown wakes
    // them into secondary "cluster shut down" panics, but the payload that
    // reaches the caller must be node 2's original message.
    let result = std::panic::catch_unwind(|| {
        let config = sim_config(3, ProtocolConfig::adaptive(), SimConfig::perturbed(0));
        Cluster::new(config, ObjectRegistry::new()).run(|ctx| {
            if ctx.node_id() == NodeId(2) {
                panic!("ORIGINAL application failure");
            }
            ctx.barrier(BarrierId(3));
        });
    });
    let err = result.expect_err("the application panic must propagate");
    let msg = err
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        msg.contains("ORIGINAL application failure"),
        "teardown fallout must not mask the original panic, got: {msg}"
    );
}

#[test]
fn application_panic_tears_the_sim_cluster_down() {
    let result = std::panic::catch_unwind(|| {
        let mut registry = ObjectRegistry::new();
        let _obj: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "sim.panic",
            0,
            1,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let done = BarrierId(3);
        let config = sim_config(3, ProtocolConfig::adaptive(), SimConfig::perturbed(0));
        Cluster::new(config, registry).run(move |ctx| {
            if ctx.node_id() == NodeId(2) {
                panic!("deliberate application failure");
            }
            // The other nodes park at a barrier node 2 never reaches; the
            // scheduler must tear them down instead of hanging.
            ctx.barrier(done);
        });
    });
    assert!(result.is_err(), "the application panic must propagate");
}
