//! End-to-end tests of the threaded cluster runtime: real node threads, the
//! full protocol stack, locks, barriers and home migration.

use dsm_core::{MigrationPolicy, ProtocolConfig};
use dsm_model::ComputeModel;
use dsm_net::MsgCategory;
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ClusterConfig, Matrix2dHandle};

fn config(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
    ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
}

#[test]
fn lock_protected_counter_is_consistent() {
    // Every node increments a shared counter 25 times under a lock; the
    // final value must be exactly nodes * 25 regardless of protocol
    // interleaving. This is the fundamental no-lost-updates guarantee.
    let nodes = 4;
    let increments = 25u64;
    let mut registry = ObjectRegistry::new();
    let counter: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "counter",
        0,
        1,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("counter.lock");
    let done = BarrierId(1);

    let report =
        Cluster::new(config(nodes, ProtocolConfig::adaptive()), registry).run(move |ctx| {
            for _ in 0..increments {
                ctx.acquire(lock);
                ctx.update(&counter, |v| v[0] += 1);
                ctx.release(lock);
            }
            ctx.barrier(done);
            // After the final barrier every node must observe the same total.
            let total = ctx.read(&counter)[0];
            assert_eq!(total, nodes as u64 * increments);
        });
    assert_eq!(report.num_nodes, nodes);
    assert!(report.execution_time.as_micros() > 0.0);
    assert_eq!(report.protocol.lock_acquires, nodes as u64 * increments);
}

#[test]
fn single_writer_pattern_migrates_home_and_cuts_messages() {
    // Node 1 is the only writer of an object initially homed on node 0.
    // With the adaptive policy the home must migrate to node 1 and the
    // per-interval fault-in + diff pair must disappear; without migration it
    // persists.
    let nodes = 2;
    let intervals = 30u64;

    let run = |protocol: ProtocolConfig| {
        let mut registry = ObjectRegistry::new();
        let data: ArrayHandle<u64> = ArrayHandle::register(
            &mut registry,
            "single_writer",
            0,
            64,
            NodeId::MASTER,
            HomeAssignment::Master,
        );
        let lock = LockId::derive("sw.lock");
        Cluster::new(config(nodes, protocol), registry).run(move |ctx| {
            if ctx.node_id() == NodeId(1) {
                for i in 0..intervals {
                    ctx.acquire(lock);
                    ctx.update(&data, |v| {
                        for (k, slot) in v.iter_mut().enumerate() {
                            *slot = i + k as u64 + 1;
                        }
                    });
                    ctx.release(lock);
                }
            }
            ctx.barrier(BarrierId(9));
        })
    };

    let adaptive = run(ProtocolConfig::adaptive());
    let no_migration = run(ProtocolConfig::no_migration());

    assert_eq!(no_migration.migrations(), 0);
    assert!(
        adaptive.migrations() >= 1,
        "adaptive policy must migrate the home"
    );
    // Fault-ins and diffs: NoHM pays one of each per interval; AT pays a
    // handful before the migration and nothing afterwards.
    assert!(no_migration.messages(MsgCategory::Diff) >= intervals - 1);
    assert!(adaptive.messages(MsgCategory::Diff) <= 3);
    assert!(
        adaptive.messages(MsgCategory::ObjReply) + adaptive.messages(MsgCategory::ObjReplyMigrate)
            <= 3
    );
    assert!(
        adaptive.breakdown_messages() * 4 < no_migration.breakdown_messages(),
        "home migration should eliminate most coherence messages ({} vs {})",
        adaptive.breakdown_messages(),
        no_migration.breakdown_messages()
    );
    // And virtual execution time improves accordingly.
    assert!(adaptive.execution_time < no_migration.execution_time);
}

#[test]
fn barrier_based_producer_consumer_sees_fresh_data() {
    // Node 0 produces a vector in even phases, node 1 checks it in odd
    // phases; barriers separate the phases. Verifies diff propagation,
    // invalidation at barriers and fault-in of fresh copies.
    let nodes = 2;
    let phases = 10u64;
    let mut registry = ObjectRegistry::new();
    let buf: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "pc.buffer",
        0,
        32,
        NodeId(1),
        HomeAssignment::CreationNode,
    );
    let barrier = BarrierId(2);

    Cluster::new(config(nodes, ProtocolConfig::adaptive()), registry).run(move |ctx| {
        for phase in 0..phases {
            if ctx.node_id() == NodeId(0) {
                ctx.update(&buf, |v| {
                    for (i, slot) in v.iter_mut().enumerate() {
                        *slot = phase * 1000 + i as u64;
                    }
                });
            }
            ctx.barrier(barrier);
            if ctx.node_id() == NodeId(1) {
                let seen = ctx.read(&buf);
                for (i, value) in seen.iter().enumerate() {
                    assert_eq!(
                        *value,
                        phase * 1000 + i as u64,
                        "stale read in phase {phase}"
                    );
                }
            }
            ctx.barrier(barrier);
        }
    });
}

#[test]
fn round_robin_rows_relocate_to_their_writers() {
    // A miniature SOR-like pattern: each node owns a band of rows that are
    // initially homed round-robin (so most rows start with the wrong home).
    // After a few iterations with the adaptive policy, every row's home must
    // have migrated to its writer, eliminating almost all coherence traffic
    // in later iterations.
    let nodes = 4;
    let rows_per_node = 4usize;
    let total_rows = nodes * rows_per_node;
    let iterations = 6u64;

    let mut registry = ObjectRegistry::new();
    let rows = Matrix2dHandle::<u64>::register(
        &mut registry,
        "rows",
        total_rows,
        16,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let barrier = BarrierId(3);

    let report =
        Cluster::new(config(nodes, ProtocolConfig::adaptive()), registry).run(move |ctx| {
            let me = ctx.node_id().index();
            let my_rows: Vec<_> = (0..total_rows)
                .filter(|r| r / rows_per_node == me)
                .collect();
            for iter in 0..iterations {
                for &r in &my_rows {
                    // Zero-copy write view: fills the row in place.
                    let mut row = ctx.view_mut(rows.row(r));
                    for slot in row.iter_mut() {
                        *slot = iter * 100 + r as u64 + 1;
                    }
                    drop(row);
                }
                ctx.barrier(barrier);
            }
        });

    // Each row is written by exactly one node, so each should migrate
    // exactly once (to its writer); rows that already start at their writer
    // by luck of the round-robin need no migration.
    assert!(report.migrations() >= (total_rows - total_rows / nodes) as u64);
    assert!(report.migrations() <= total_rows as u64);
    // After migration the steady-state iterations are message-free for row
    // updates: total diffs are bounded by roughly one per row per
    // pre-migration iteration, far below rows × iterations.
    assert!(
        report.messages(MsgCategory::Diff) < (total_rows as u64) * iterations / 2,
        "diff traffic should collapse after homes migrate (got {})",
        report.messages(MsgCategory::Diff)
    );
}

#[test]
fn immutable_objects_are_fetched_at_most_once_per_node() {
    let nodes = 4;
    let mut registry = ObjectRegistry::new();
    let table: ArrayHandle<u64> = ArrayHandle::register_immutable(
        &mut registry,
        "lookup.table",
        0,
        64,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("work.lock");
    let barrier = BarrierId(4);

    let report =
        Cluster::new(config(nodes, ProtocolConfig::adaptive()), registry).run(move |ctx| {
            if ctx.is_master() {
                ctx.bootstrap(&table, &(0..64).map(|i| i * 7).collect::<Vec<u64>>());
            } else {
                ctx.bootstrap(&table, &(0..64).map(|i| i * 7).collect::<Vec<u64>>());
            }
            ctx.barrier(barrier);
            // Many critical sections, each reading the immutable table: without
            // the read-only optimization every acquire would force a re-fetch.
            for _ in 0..10 {
                ctx.acquire(lock);
                let t = ctx.read(&table);
                assert_eq!(t[3], 21);
                ctx.release(lock);
            }
            ctx.barrier(barrier);
        });
    // Three non-home nodes fetch the table once each; the master reads it
    // locally. A few extra fetches may occur due to bootstrap ordering, but
    // nothing close to 10 per node.
    assert!(
        report.messages(MsgCategory::ObjReply) <= (nodes as u64 - 1) + 2,
        "immutable object was re-fetched: {} replies",
        report.messages(MsgCategory::ObjReply)
    );
}

#[test]
fn jump_policy_bounces_home_between_alternating_writers() {
    let nodes = 3;
    let mut registry = ObjectRegistry::new();
    let obj: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "bounce",
        0,
        8,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let lock = LockId::derive("bounce.lock");
    let protocol = ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest);
    let report = Cluster::new(config(nodes, protocol), registry).run(move |ctx| {
        if ctx.node_id().index() > 0 {
            for i in 0..10u64 {
                ctx.acquire(lock);
                ctx.update(&obj, |v| v[0] = v[0].wrapping_add(i + 1));
                ctx.release(lock);
            }
        }
        ctx.barrier(BarrierId(5));
    });
    // The JUMP-style policy migrates on every write fault by a non-home
    // node, so the home bounces between the two writers many times.
    assert!(
        report.migrations() >= 10,
        "JUMP should migrate frequently, got {}",
        report.migrations()
    );
}

#[test]
fn single_node_cluster_degenerates_to_local_execution() {
    let mut registry = ObjectRegistry::new();
    let data: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        "solo",
        0,
        16,
        NodeId::MASTER,
        HomeAssignment::CreationNode,
    );
    let lock = LockId::derive("solo.lock");
    let report = Cluster::new(config(1, ProtocolConfig::adaptive()), registry).run(move |ctx| {
        for i in 0..20u64 {
            ctx.acquire(lock);
            ctx.update(&data, |v| v[0] += i);
            ctx.release(lock);
        }
        ctx.barrier(BarrierId(6));
        assert_eq!(ctx.read(&data)[0], (0..20u64).sum());
    });
    assert_eq!(
        report.breakdown_messages(),
        0,
        "no coherence traffic on one node"
    );
    assert_eq!(report.migrations(), 0);
}
