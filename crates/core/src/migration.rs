//! Home migration policies.
//!
//! The decision "should this object's home move to the node that is asking
//! for it?" is taken at the object's current home, based on per-object
//! bookkeeping ([`MigrationState`]) updated on every protocol event that the
//! paper's GOS monitors:
//!
//! * a **remote write** — a diff received from a non-home node (one per
//!   synchronization interval in which that node updated the object);
//! * a **home write** — the first write fault at the home node in an
//!   interval (the home copy is set to `Invalid` at acquire time purely so
//!   this event can be observed);
//! * a **redirected object request** — a request that had to be forwarded
//!   because it reached an obsolete home (redirection accumulation counts
//!   each hop);
//! * an **object request** — the decision point: when the single-writer
//!   pattern has been detected and the writing node faults the object again,
//!   the reply both carries the data and migrates the home.
//!
//! The engine no longer consults the closed [`MigrationPolicy`] enum
//! directly — protocol decisions go through the open
//! [`HomeMigrationPolicy`](crate::policy::HomeMigrationPolicy) trait of the
//! [`policy`](crate::policy) module. The enum survives as two things: the
//! ergonomic *description* of the paper's policies (every historical call
//! site such as `builder.migration(MigrationPolicy::adaptive())` still
//! compiles, converting into the matching trait impl), and the **frozen
//! pre-refactor decision spec**: the `MigrationState` methods below that take
//! `&MigrationPolicy` are the original decision rules, kept verbatim as the
//! oracle the seeded equivalence suite replays against the trait-based
//! implementations.
//!
//! Five paper/related-work policies are described: the paper's adaptive
//! threshold (AT), the fixed threshold (FT) of the authors' earlier work, no
//! migration (NoHM), and two related-work baselines — JUMP's migrating-home
//! protocol (always migrate to the requester) and Jackal's
//! lazy-flushing-style exclusive ownership transfer capped at a maximum
//! number of transitions. The genuinely new policies (hysteresis, EWMA
//! write-ratio) exist only behind the trait.

use dsm_objspace::NodeId;
use std::fmt;

/// Description of a home migration policy (see the module docs: the open,
/// engine-facing interface is [`crate::policy::HomeMigrationPolicy`]; this
/// enum converts into the built-in trait impls).
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationPolicy {
    /// Never migrate (the paper's `NoHM` / `NM` baseline).
    NoMigration,
    /// Migrate when the number of consecutive remote writes from one node
    /// reaches a fixed threshold (the authors' previous protocol; the paper
    /// evaluates thresholds 1 and 2 as `FT1` and `FT2`).
    FixedThreshold {
        /// The fixed threshold value.
        threshold: u32,
    },
    /// The paper's contribution: a per-object threshold that decreases with
    /// evidence of a lasting single-writer pattern and increases with
    /// evidence that migrations only caused redirections.
    AdaptiveThreshold {
        /// Feedback coefficient λ (the paper sets it to 1).
        lambda: f64,
        /// Initial (and minimum) threshold `T_init` (the paper sets it to 1
        /// to speed up initial data relocation).
        initial_threshold: f64,
        /// If set, overrides the home access coefficient α instead of
        /// deriving it from object/diff sizes and the network's half-peak
        /// length. Used by the sensitivity ablation.
        alpha_override: Option<f64>,
    },
    /// JUMP-style migrating-home protocol: the requester of a write fault
    /// always becomes the new home, regardless of access history.
    MigrateOnRequest,
    /// Jackal-style lazy flushing: ownership moves to a writing requester as
    /// long as the object has not changed home more than `max_transitions`
    /// times (Jackal caps the transitions at five).
    LazyFlushing {
        /// Maximum number of home transitions allowed for one object.
        max_transitions: u32,
    },
}

impl MigrationPolicy {
    /// The paper's adaptive policy with its published constants
    /// (λ = 1, T_init = 1, α derived from the network model).
    pub fn adaptive() -> Self {
        MigrationPolicy::AdaptiveThreshold {
            lambda: 1.0,
            initial_threshold: 1.0,
            alpha_override: None,
        }
    }

    /// A fixed-threshold policy (`FT1`, `FT2`, ...).
    pub fn fixed(threshold: u32) -> Self {
        MigrationPolicy::FixedThreshold { threshold }
    }

    /// Jackal-style lazy flushing with the default cap of five transitions.
    pub fn lazy_flushing() -> Self {
        MigrationPolicy::LazyFlushing { max_transitions: 5 }
    }
}

/// The short report label ("NM", "FT2", "AT", ...), written without
/// allocating. The strings are byte-identical to the historical
/// `label() -> String` output, so figure reproductions keyed on them stay
/// stable; code that needs a borrowed label should go through the cached
/// [`HomeMigrationPolicy::label`](crate::policy::HomeMigrationPolicy::label)
/// of the corresponding trait impl.
impl fmt::Display for MigrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationPolicy::NoMigration => f.write_str("NM"),
            MigrationPolicy::FixedThreshold { threshold } => write!(f, "FT{threshold}"),
            MigrationPolicy::AdaptiveThreshold { .. } => f.write_str("AT"),
            MigrationPolicy::MigrateOnRequest => f.write_str("JUMP"),
            MigrationPolicy::LazyFlushing { .. } => f.write_str("LAZY"),
        }
    }
}

/// Small per-object state owned by the *policy* rather than the engine.
///
/// The engine never reads or writes these fields; they exist so stateful
/// policies (EWMA write-ratio, hysteresis variants, user-defined impls) can
/// keep per-object observations without the engine knowing their shape. The
/// scratch travels inside [`MigrationState`]: it is shipped to the new home
/// with the migration grant, and the default epoch reset leaves it untouched
/// (a policy that wants a fresh scratch after migration clears it in its
/// [`on_migrate`](crate::policy::HomeMigrationPolicy::on_migrate) hook).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyScratch {
    /// First policy-defined value (the EWMA write-ratio policy keeps its
    /// exponentially weighted remote-write share here).
    pub a: f64,
    /// Second policy-defined value (unused by the built-in policies).
    pub b: f64,
}

/// Per-object migration bookkeeping kept at the object's current home.
///
/// Field names follow §4.2 of the paper: `C_i` consecutive remote writes,
/// `T_i` the adaptive threshold, `R_i` redirected requests and `E_i`
/// exclusive home writes since the previous migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationState {
    /// `C_i`: consecutive remote writes from `last_remote_writer`, not
    /// interleaved with writes from the home or from other remote nodes.
    pub consecutive_remote_writes: u32,
    /// The node whose writes `consecutive_remote_writes` counts.
    pub last_remote_writer: Option<NodeId>,
    /// `T_{i-1}`: the threshold value inherited from the previous migration
    /// epoch (1 initially).
    pub threshold_base: f64,
    /// `R_i`: redirected object requests observed since the previous
    /// migration (each hop of a redirection chain counts once).
    pub redirected_requests: u64,
    /// `E_i`: exclusive home writes since the previous migration.
    pub exclusive_home_writes: u64,
    /// Whether the most recent recorded write event was a home write (used
    /// to decide if the next home write is "exclusive").
    pub last_write_was_home: bool,
    /// Total number of migrations this object has undergone.
    pub migrations: u32,
    /// Running mean of observed diff wire sizes (bytes), the `d` of the home
    /// access coefficient.
    pub mean_diff_bytes: f64,
    /// Number of diffs contributing to `mean_diff_bytes`.
    pub diff_samples: u64,
    /// The node the home most recently migrated *away from* (`None` until
    /// the first migration). A migration granted back to this node is a
    /// *migrate-back* — the ping-pong signature that hysteresis policies
    /// damp and the decision telemetry counts.
    pub prev_home: Option<NodeId>,
    /// Policy-owned per-object state; see [`PolicyScratch`].
    pub scratch: PolicyScratch,
}

impl Default for MigrationState {
    fn default() -> Self {
        MigrationState::new()
    }
}

impl MigrationState {
    /// Fresh state for an object that has never migrated.
    pub fn new() -> Self {
        MigrationState {
            consecutive_remote_writes: 0,
            last_remote_writer: None,
            threshold_base: 1.0,
            redirected_requests: 0,
            exclusive_home_writes: 0,
            last_write_was_home: false,
            migrations: 0,
            mean_diff_bytes: 0.0,
            diff_samples: 0,
            prev_home: None,
            scratch: PolicyScratch::default(),
        }
    }

    /// Record a remote write: a diff of `diff_bytes` wire bytes received from
    /// `from`. Updates the consecutive-remote-write counter and the diff
    /// size average, and breaks any exclusive-home-write chain.
    pub fn record_remote_write(&mut self, from: NodeId, diff_bytes: u64) {
        if self.last_remote_writer == Some(from) && !self.last_write_was_home {
            self.consecutive_remote_writes += 1;
        } else {
            self.consecutive_remote_writes = 1;
            self.last_remote_writer = Some(from);
        }
        self.last_write_was_home = false;
        self.diff_samples += 1;
        let n = self.diff_samples as f64;
        self.mean_diff_bytes += (diff_bytes as f64 - self.mean_diff_bytes) / n;
    }

    /// Record a home write (the first write fault at the home node in an
    /// interval). Returns `true` if the write was *exclusive*, i.e. no
    /// remote write occurred since an earlier home write.
    pub fn record_home_write(&mut self) -> bool {
        let exclusive = self.last_write_was_home;
        if exclusive {
            self.exclusive_home_writes += 1;
        }
        self.last_write_was_home = true;
        self.consecutive_remote_writes = 0;
        self.last_remote_writer = None;
        exclusive
    }

    /// Record `hops` redirections reported by an arriving request (negative
    /// feedback: the cost of previous migrations).
    pub fn record_redirections(&mut self, hops: u32) {
        self.redirected_requests += u64::from(hops);
    }

    /// The home access coefficient α for this object: either the policy's
    /// override or `2 + (o + d)/m_½` with `d` the observed mean diff size
    /// (falling back to the object size before any diff has been seen, which
    /// over-estimates α slightly and therefore errs on the eager side —
    /// matching the paper's choice of a small initial threshold).
    pub fn alpha(&self, policy: &MigrationPolicy, object_bytes: u64, half_peak_len: f64) -> f64 {
        if let MigrationPolicy::AdaptiveThreshold {
            alpha_override: Some(a),
            ..
        } = policy
        {
            return *a;
        }
        let d = if self.diff_samples > 0 {
            self.mean_diff_bytes
        } else {
            object_bytes as f64
        };
        2.0 + (object_bytes as f64 + d) / half_peak_len.max(1.0)
    }

    /// The current value of the migration threshold `T_i` under `policy`.
    ///
    /// For the adaptive policy this is
    /// `max(T_{i-1} + λ·(R_i − α·E_i), T_init)`, evaluated continuously as
    /// feedback accumulates. Fixed policies return their constant; policies
    /// without a threshold return 1 (they migrate on the first opportunity)
    /// or infinity (never migrate).
    pub fn current_threshold(
        &self,
        policy: &MigrationPolicy,
        object_bytes: u64,
        half_peak_len: f64,
    ) -> f64 {
        match policy {
            MigrationPolicy::NoMigration => f64::INFINITY,
            MigrationPolicy::FixedThreshold { threshold } => f64::from(*threshold),
            MigrationPolicy::AdaptiveThreshold {
                lambda,
                initial_threshold,
                ..
            } => {
                let alpha = self.alpha(policy, object_bytes, half_peak_len);
                let feedback =
                    self.redirected_requests as f64 - alpha * self.exclusive_home_writes as f64;
                (self.threshold_base + lambda * feedback).max(*initial_threshold)
            }
            MigrationPolicy::MigrateOnRequest => 0.0,
            MigrationPolicy::LazyFlushing { .. } => 1.0,
        }
    }

    /// Decide whether the home should migrate to `requester`, which has just
    /// faulted the object (with `for_write` indicating a write fault).
    ///
    /// This is the frozen pre-refactor decision rule; the engine consults
    /// [`crate::policy::HomeMigrationPolicy::decide`] instead, and the
    /// seeded equivalence suite replays this method as the oracle for the
    /// built-in trait impls.
    pub fn should_migrate(
        &self,
        policy: &MigrationPolicy,
        requester: NodeId,
        for_write: bool,
        object_bytes: u64,
        half_peak_len: f64,
    ) -> bool {
        match policy {
            MigrationPolicy::NoMigration => false,
            MigrationPolicy::MigrateOnRequest => for_write,
            MigrationPolicy::LazyFlushing { max_transitions } => {
                for_write && self.migrations < *max_transitions
            }
            MigrationPolicy::FixedThreshold { .. } | MigrationPolicy::AdaptiveThreshold { .. } => {
                if self.last_remote_writer != Some(requester) {
                    return false;
                }
                let threshold = self.current_threshold(policy, object_bytes, half_peak_len);
                f64::from(self.consecutive_remote_writes) >= threshold
            }
        }
    }

    /// Called at the old home when a migration is performed: returns the
    /// state to be shipped to the new home (threshold carried over, per-epoch
    /// counters reset, migration count incremented). Part of the frozen
    /// pre-refactor spec; the engine goes through [`Self::migrated`], which
    /// the trait layer feeds with the policy's own carried threshold.
    #[must_use]
    pub fn migrate(
        &self,
        policy: &MigrationPolicy,
        object_bytes: u64,
        half_peak_len: f64,
    ) -> MigrationState {
        let mut shipped = self.migrated(
            self.current_threshold(policy, object_bytes, half_peak_len),
            None,
        );
        // The spec predates previous-home tracking.
        shipped.prev_home = None;
        shipped
    }

    /// The engine-facing migration transition: the per-epoch counters reset,
    /// the migration count (home epoch) advances, `threshold_base` becomes
    /// `carried_threshold` (clamped to a large finite value so `NoMigration`
    /// style infinities cannot poison later arithmetic), diff-size history
    /// and the policy scratch are retained, and `old_home` is recorded so a
    /// later migration back to it is observable as a migrate-back.
    #[must_use]
    pub fn migrated(&self, carried_threshold: f64, old_home: Option<NodeId>) -> MigrationState {
        MigrationState {
            consecutive_remote_writes: 0,
            last_remote_writer: None,
            threshold_base: carried_threshold.min(1e9),
            redirected_requests: 0,
            exclusive_home_writes: 0,
            last_write_was_home: false,
            migrations: self.migrations + 1,
            mean_diff_bytes: self.mean_diff_bytes,
            diff_samples: self.diff_samples,
            prev_home: old_home,
            scratch: self.scratch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HALF_PEAK: f64 = 1150.0;
    const OBJ: u64 = 1024;

    fn adaptive() -> MigrationPolicy {
        MigrationPolicy::adaptive()
    }

    #[test]
    fn display_labels_are_byte_identical_to_the_historical_strings() {
        assert_eq!(MigrationPolicy::NoMigration.to_string(), "NM");
        assert_eq!(MigrationPolicy::fixed(1).to_string(), "FT1");
        assert_eq!(MigrationPolicy::fixed(2).to_string(), "FT2");
        assert_eq!(MigrationPolicy::adaptive().to_string(), "AT");
        assert_eq!(MigrationPolicy::MigrateOnRequest.to_string(), "JUMP");
        assert_eq!(MigrationPolicy::lazy_flushing().to_string(), "LAZY");
    }

    #[test]
    fn consecutive_remote_writes_count_same_writer_only() {
        let mut s = MigrationState::new();
        s.record_remote_write(NodeId(1), 100);
        s.record_remote_write(NodeId(1), 100);
        assert_eq!(s.consecutive_remote_writes, 2);
        // A different writer resets the run to 1 and retargets it.
        s.record_remote_write(NodeId(2), 100);
        assert_eq!(s.consecutive_remote_writes, 1);
        assert_eq!(s.last_remote_writer, Some(NodeId(2)));
        // A home write clears the run entirely.
        s.record_home_write();
        assert_eq!(s.consecutive_remote_writes, 0);
        assert_eq!(s.last_remote_writer, None);
    }

    #[test]
    fn home_write_after_home_write_is_exclusive() {
        let mut s = MigrationState::new();
        // The first home write has no earlier home write -> not exclusive.
        assert!(!s.record_home_write());
        assert!(s.record_home_write());
        assert!(s.record_home_write());
        assert_eq!(s.exclusive_home_writes, 2);
        // A remote write breaks the chain.
        s.record_remote_write(NodeId(1), 64);
        assert!(!s.record_home_write());
        assert!(s.record_home_write());
        assert_eq!(s.exclusive_home_writes, 3);
    }

    #[test]
    fn mean_diff_size_is_running_average() {
        let mut s = MigrationState::new();
        s.record_remote_write(NodeId(1), 100);
        s.record_remote_write(NodeId(1), 300);
        assert!((s.mean_diff_bytes - 200.0).abs() < 1e-9);
        assert_eq!(s.diff_samples, 2);
    }

    #[test]
    fn no_migration_policy_never_migrates() {
        let mut s = MigrationState::new();
        for _ in 0..100 {
            s.record_remote_write(NodeId(1), 100);
        }
        assert!(!s.should_migrate(
            &MigrationPolicy::NoMigration,
            NodeId(1),
            true,
            OBJ,
            HALF_PEAK
        ));
        assert!(s
            .current_threshold(&MigrationPolicy::NoMigration, OBJ, HALF_PEAK)
            .is_infinite());
    }

    #[test]
    fn fixed_threshold_requires_enough_consecutive_writes() {
        let policy = MigrationPolicy::fixed(2);
        let mut s = MigrationState::new();
        s.record_remote_write(NodeId(1), 100);
        assert!(!s.should_migrate(&policy, NodeId(1), true, OBJ, HALF_PEAK));
        s.record_remote_write(NodeId(1), 100);
        assert!(s.should_migrate(&policy, NodeId(1), true, OBJ, HALF_PEAK));
        // A different node asking does not trigger migration.
        assert!(!s.should_migrate(&policy, NodeId(2), true, OBJ, HALF_PEAK));
    }

    #[test]
    fn adaptive_threshold_starts_at_one() {
        let s = MigrationState::new();
        assert!((s.current_threshold(&adaptive(), OBJ, HALF_PEAK) - 1.0).abs() < 1e-12);
        // So a single remote write from a node already triggers migration on
        // its next request (speeding up initial data relocation).
        let mut s = MigrationState::new();
        s.record_remote_write(NodeId(3), 100);
        assert!(s.should_migrate(&adaptive(), NodeId(3), true, OBJ, HALF_PEAK));
    }

    #[test]
    fn redirections_raise_the_adaptive_threshold() {
        let mut s = MigrationState::new();
        s.record_redirections(3);
        let t = s.current_threshold(&adaptive(), OBJ, HALF_PEAK);
        assert!(
            (t - 4.0).abs() < 1e-12,
            "T = 1 + 3 redirections = 4, got {t}"
        );
        // Migration now requires 4 consecutive writes from the same node.
        s.record_remote_write(NodeId(1), 100);
        s.record_remote_write(NodeId(1), 100);
        s.record_remote_write(NodeId(1), 100);
        assert!(!s.should_migrate(&adaptive(), NodeId(1), true, OBJ, HALF_PEAK));
        s.record_remote_write(NodeId(1), 100);
        assert!(s.should_migrate(&adaptive(), NodeId(1), true, OBJ, HALF_PEAK));
    }

    #[test]
    fn exclusive_home_writes_lower_the_adaptive_threshold() {
        let mut s = MigrationState::new();
        // Raise the threshold first so there is room to go down.
        s.record_redirections(10);
        let before = s.current_threshold(&adaptive(), OBJ, HALF_PEAK);
        s.record_home_write();
        s.record_home_write(); // exclusive
        s.record_home_write(); // exclusive
        let after = s.current_threshold(&adaptive(), OBJ, HALF_PEAK);
        assert!(
            after < before,
            "exclusive home writes must lower T ({before} -> {after})"
        );
    }

    #[test]
    fn adaptive_threshold_never_drops_below_initial() {
        let mut s = MigrationState::new();
        for _ in 0..1000 {
            s.record_home_write();
        }
        let t = s.current_threshold(&adaptive(), OBJ, HALF_PEAK);
        assert!(
            (t - 1.0).abs() < 1e-12,
            "threshold is clamped at T_init, got {t}"
        );
    }

    #[test]
    fn alpha_uses_observed_diff_sizes_and_override() {
        let mut s = MigrationState::new();
        let a0 = s.alpha(&adaptive(), 1024, HALF_PEAK);
        assert!((a0 - (2.0 + 2048.0 / HALF_PEAK)).abs() < 1e-9);
        s.record_remote_write(NodeId(1), 512);
        let a1 = s.alpha(&adaptive(), 1024, HALF_PEAK);
        assert!((a1 - (2.0 + 1536.0 / HALF_PEAK)).abs() < 1e-9);
        let forced = MigrationPolicy::AdaptiveThreshold {
            lambda: 1.0,
            initial_threshold: 1.0,
            alpha_override: Some(7.5),
        };
        assert_eq!(s.alpha(&forced, 1024, HALF_PEAK), 7.5);
    }

    #[test]
    fn lambda_scales_feedback() {
        let gentle = MigrationPolicy::AdaptiveThreshold {
            lambda: 0.5,
            initial_threshold: 1.0,
            alpha_override: None,
        };
        let mut s = MigrationState::new();
        s.record_redirections(4);
        assert!((s.current_threshold(&gentle, OBJ, HALF_PEAK) - 3.0).abs() < 1e-12);
        assert!((s.current_threshold(&adaptive(), OBJ, HALF_PEAK) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn jump_policy_migrates_on_any_write_fault() {
        let s = MigrationState::new();
        assert!(s.should_migrate(
            &MigrationPolicy::MigrateOnRequest,
            NodeId(5),
            true,
            OBJ,
            HALF_PEAK
        ));
        assert!(!s.should_migrate(
            &MigrationPolicy::MigrateOnRequest,
            NodeId(5),
            false,
            OBJ,
            HALF_PEAK
        ));
    }

    #[test]
    fn lazy_flushing_caps_transitions() {
        let policy = MigrationPolicy::lazy_flushing();
        let mut s = MigrationState::new();
        for i in 0..5 {
            assert!(
                s.should_migrate(&policy, NodeId(1), true, OBJ, HALF_PEAK),
                "transition {i}"
            );
            s = s.migrate(&policy, OBJ, HALF_PEAK);
        }
        assert_eq!(s.migrations, 5);
        assert!(!s.should_migrate(&policy, NodeId(1), true, OBJ, HALF_PEAK));
    }

    #[test]
    fn migrate_carries_threshold_and_resets_epoch_counters() {
        let mut s = MigrationState::new();
        s.record_redirections(2);
        s.record_remote_write(NodeId(1), 128);
        s.record_home_write();
        let t_before = s.current_threshold(&adaptive(), OBJ, HALF_PEAK);
        let shipped = s.migrate(&adaptive(), OBJ, HALF_PEAK);
        assert_eq!(shipped.migrations, 1);
        assert_eq!(shipped.consecutive_remote_writes, 0);
        assert_eq!(shipped.redirected_requests, 0);
        assert_eq!(shipped.exclusive_home_writes, 0);
        assert!(!shipped.last_write_was_home);
        assert!((shipped.threshold_base - t_before).abs() < 1e-12);
        // Diff size history is retained across migrations.
        assert_eq!(shipped.diff_samples, s.diff_samples);
    }

    #[test]
    fn transient_pattern_is_suppressed_after_feedback() {
        // Scenario from §5.2: writers take turns in short bursts (transient
        // single-writer pattern). After the first migration causes
        // redirections, the adaptive threshold grows beyond the burst length
        // and migration stops; a fixed threshold of 1 would keep migrating.
        let policy = adaptive();
        let burst = 2u32;
        let mut s = MigrationState::new();
        let mut migrations = 0;
        for round in 0..20 {
            let writer = NodeId(1 + (round % 2) as u16);
            for _ in 0..burst {
                s.record_remote_write(writer, 64);
                if s.should_migrate(&policy, writer, true, OBJ, HALF_PEAK) {
                    s = s.migrate(&policy, OBJ, HALF_PEAK);
                    migrations += 1;
                    // After migrating, the *other* node's next request is
                    // redirected (it still points at the old home).
                    s.record_redirections(1);
                    s.record_redirections(1);
                }
            }
        }
        // The first burst may trigger a migration or two, but feedback must
        // shut the behaviour down: far fewer migrations than rounds.
        assert!(
            migrations <= 3,
            "adaptive policy kept migrating: {migrations}"
        );

        // The fixed threshold 1 policy, by contrast, migrates every burst.
        let ft1 = MigrationPolicy::fixed(1);
        let mut s = MigrationState::new();
        let mut ft1_migrations = 0;
        for round in 0..20 {
            let writer = NodeId(1 + (round % 2) as u16);
            for _ in 0..burst {
                s.record_remote_write(writer, 64);
                if s.should_migrate(&ft1, writer, true, OBJ, HALF_PEAK) {
                    s = s.migrate(&ft1, OBJ, HALF_PEAK);
                    ft1_migrations += 1;
                }
            }
        }
        assert!(
            ft1_migrations >= 15,
            "FT1 should migrate every burst: {ft1_migrations}"
        );
    }

    #[test]
    fn lasting_pattern_keeps_adaptive_threshold_low() {
        // A lasting single-writer pattern: after migration the new home keeps
        // writing exclusively. The threshold must stay at (or fall back to)
        // its minimum so the protocol stays sensitive.
        let policy = adaptive();
        let mut s = MigrationState::new();
        s.record_remote_write(NodeId(1), 256);
        assert!(s.should_migrate(&policy, NodeId(1), true, OBJ, HALF_PEAK));
        let mut at_new_home = s.migrate(&policy, OBJ, HALF_PEAK);
        // One stray redirection from a reader...
        at_new_home.record_redirections(1);
        // ...followed by a long run of exclusive home writes.
        for _ in 0..50 {
            at_new_home.record_home_write();
        }
        let t = at_new_home.current_threshold(&policy, OBJ, HALF_PEAK);
        assert!(
            (t - 1.0).abs() < 1e-12,
            "threshold should be back at T_init, got {t}"
        );
    }
}
