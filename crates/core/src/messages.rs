//! The wire protocol between cluster nodes.
//!
//! Every variant corresponds to one message of the home-based protocol; the
//! [`ProtocolMsg::category`] and [`ProtocolMsg::payload_bytes`] methods feed
//! the statistics that reproduce the paper's message-count and
//! network-traffic figures.

use dsm_net::MsgCategory;
use dsm_objspace::{BarrierId, Diff, LockId, NodeId, ObjectId, Version};

/// Identifier matching a reply to the request that a node thread is blocked
/// on. Allocated per requesting node; never interpreted by the receiver
/// beyond echoing it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// State shipped with a migrating home (threshold and history), defined in
/// the engine module; re-exported here for the message definition.
pub use crate::engine::MigrationGrant;

/// Modelled wire overhead per entry of a [`ProtocolMsg::DiffBatch`]: the
/// object id plus entry framing. The batch as a whole still pays the single
/// fixed message header the fabric adds, so batching k flushes saves
/// `(k-1) * MESSAGE_HEADER_BYTES - k * DIFF_BATCH_ENTRY_HEADER_BYTES` header
/// bytes on top of the `(k-1) * t0` start-up saving that motivates it.
pub const DIFF_BATCH_ENTRY_HEADER_BYTES: u64 = 8;

/// One entry of a [`ProtocolMsg::DiffBatch`]: a diff destined for the home
/// the batch was addressed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffBatchEntry {
    /// The object.
    pub obj: ObjectId,
    /// The diff to apply at the home.
    pub diff: Diff,
}

/// Home-side resolution of one batch entry, reported in the
/// [`ProtocolMsg::DiffBatchAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffEntryStatus {
    /// The diff was applied to the home copy.
    Applied {
        /// Version of the home copy after applying the diff.
        version: Version,
    },
    /// The receiver is no longer the home of this entry's object (it
    /// migrated mid-flight); the flusher must re-plan this entry
    /// individually, following the usual epoch-guarded redirect rules.
    Redirect {
        /// Where the receiver believes the home is now.
        new_home: NodeId,
        /// The home epoch the receiver believes `new_home` became home at
        /// (0 for routing-only hints such as a pointer to the manager).
        epoch: u32,
    },
}

/// Per-entry result inside a [`ProtocolMsg::DiffBatchAck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffBatchResult {
    /// The entry's object.
    pub obj: ObjectId,
    /// How the home resolved the entry.
    pub status: DiffEntryStatus,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolMsg {
    /// Fault-in request for an object, sent to the believed home.
    ObjectRequest {
        /// Request id for reply matching.
        req: ReqId,
        /// The requested object.
        obj: ObjectId,
        /// The requesting node (destination of the reply).
        requester: NodeId,
        /// Whether the fault was a write fault.
        for_write: bool,
        /// How many times this logical request has already been redirected
        /// (redirection accumulation; becomes negative feedback `R_i` at the
        /// home that finally serves it).
        redirections: u32,
    },
    /// Successful fault-in reply carrying the object contents.
    ObjectReply {
        /// Echo of the request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// Object payload.
        data: Vec<u8>,
        /// Version of the home copy the payload was taken from.
        version: Version,
        /// If present, the home has migrated to the requester and this is
        /// the migration state to install.
        migration: Option<MigrationGrant>,
    },
    /// Redirection reply: the receiver is not (any longer) the home.
    ObjectRedirect {
        /// Echo of the request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// Where the sender believes the home is now.
        new_home: NodeId,
        /// The home epoch the sender believes `new_home` became home at
        /// (0 for routing-only hints such as a pointer to the manager).
        epoch: u32,
    },
    /// Diff propagation to the home at release time.
    DiffFlush {
        /// Request id (the releaser blocks until all diffs are acknowledged).
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// The diff.
        diff: Diff,
        /// The writing node.
        from: NodeId,
        /// Redirection hops already taken by this flush.
        redirections: u32,
    },
    /// Acknowledgement that a diff has been applied at the home.
    DiffAck {
        /// Echo of the request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// Version of the home copy after applying the diff.
        version: Version,
    },
    /// Batched diff propagation at release time: every dirty object of the
    /// interval whose (believed) home is the same node, in one message. The
    /// receiver resolves each entry independently — applied, redirected
    /// (home migrated mid-flight) or deferred while its payload is leased to
    /// a live view — and answers with a single [`ProtocolMsg::DiffBatchAck`]
    /// once no entry is pending.
    DiffBatch {
        /// Request id (the releaser blocks until the batch is acknowledged).
        req: ReqId,
        /// The batched diffs, ordered by object id.
        entries: Vec<DiffBatchEntry>,
        /// The writing node.
        from: NodeId,
    },
    /// Per-entry acknowledgement of a [`ProtocolMsg::DiffBatch`]. Entries
    /// resolve independently, so results may arrive in a different order
    /// than they were sent; the flusher matches them by object id.
    DiffBatchAck {
        /// Echo of the request id.
        req: ReqId,
        /// One result per batch entry.
        results: Vec<DiffBatchResult>,
    },
    /// Redirection reply for a diff that reached an obsolete home.
    DiffRedirect {
        /// Echo of the request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// Where the sender believes the home is now.
        new_home: NodeId,
        /// The home epoch the sender believes `new_home` became home at.
        epoch: u32,
    },
    /// Lock acquire request, sent to the lock's manager node.
    LockAcquire {
        /// Request id (the acquirer blocks until granted).
        req: ReqId,
        /// The lock.
        lock: LockId,
        /// The requesting node.
        requester: NodeId,
    },
    /// Lock grant from the manager.
    LockGrant {
        /// Echo of the request id.
        req: ReqId,
        /// The lock.
        lock: LockId,
    },
    /// Lock release notification to the manager.
    LockRelease {
        /// The lock.
        lock: LockId,
        /// The releasing node.
        holder: NodeId,
        /// Request id for the [`ProtocolMsg::LockReleaseAck`]. `ReqId(0)`
        /// means "unacknowledged" — the classic fire-and-forget release
        /// used on lossless fabrics; lossy runs allocate a real id so the
        /// release can be retried and deduplicated safely.
        req: ReqId,
    },
    /// Acknowledgement of an acked [`ProtocolMsg::LockRelease`]. Not a
    /// blocking reply: the releaser does not wait for it, it only clears
    /// the release's retry entry.
    LockReleaseAck {
        /// Echo of the release's request id.
        req: ReqId,
        /// The lock.
        lock: LockId,
    },
    /// Barrier arrival, sent to the barrier's manager node.
    BarrierArrive {
        /// Request id (the arriving node blocks until released).
        req: ReqId,
        /// The barrier.
        barrier: BarrierId,
        /// The arriving node.
        node: NodeId,
        /// The arriving node's phase number (for sanity checking).
        epoch: u64,
    },
    /// Barrier release from the manager once all nodes have arrived.
    BarrierRelease {
        /// Echo of the request id.
        req: ReqId,
        /// The barrier.
        barrier: BarrierId,
        /// The phase that completed.
        epoch: u64,
    },
    /// New-home notification (broadcast or home-manager mechanisms only).
    HomeNotify {
        /// The object whose home moved.
        obj: ObjectId,
        /// The new home.
        new_home: NodeId,
        /// The home epoch `new_home` became home at, so stale notifications
        /// can never overwrite fresher beliefs.
        epoch: u32,
    },
    /// Query to the home manager: where is the home of `obj` now?
    HomeLookup {
        /// Request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
    },
    /// Reply to a [`ProtocolMsg::HomeLookup`].
    HomeLookupReply {
        /// Echo of the request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// The registered home.
        home: NodeId,
    },
    /// Home re-election request: `candidate` could not reach `suspect`
    /// (the believed home of `obj`) past the runtime's failover threshold
    /// and asks the object's arbiter to elect a reachable home. Carries
    /// the candidate's believed home epoch and whether it holds a local
    /// copy to promote.
    HomeElect {
        /// Request id (reuses the stuck request's id for bookkeeping; the
        /// reply is matched through the retry table, not the pending
        /// table).
        req: ReqId,
        /// The orphaned object.
        obj: ObjectId,
        /// The unreachable believed home.
        suspect: NodeId,
        /// The requesting node.
        candidate: NodeId,
        /// The candidate's believed home epoch for `obj`.
        epoch: u32,
        /// Whether the candidate holds a promotable local copy.
        has_copy: bool,
    },
    /// Arbiter's answer to a [`ProtocolMsg::HomeElect`]. `home == suspect`
    /// with `epoch == 0` encodes a refusal (no surviving copy to promote);
    /// otherwise `home` is the elected home at the fencing `epoch`.
    HomeElectReply {
        /// Echo of the election request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// The elected home (or the suspect itself on refusal).
        home: NodeId,
        /// The fencing home epoch (0 on refusal).
        epoch: u32,
    },
    /// Fence sent to a deposed home after an election: demote yourself,
    /// the cluster elected `new_home` at `epoch`. Retried until the
    /// [`ProtocolMsg::HomeFenceAck`] arrives, so a suspect that was merely
    /// slow learns of its demotion as soon as it resumes.
    HomeFence {
        /// Request id for the ack (a fresh id, tracked in the retry
        /// table only).
        req: ReqId,
        /// The object.
        obj: ObjectId,
        /// The elected home.
        new_home: NodeId,
        /// The fencing home epoch.
        epoch: u32,
    },
    /// Acknowledgement of a [`ProtocolMsg::HomeFence`]. Like
    /// [`ProtocolMsg::LockReleaseAck`], clears a retry entry without
    /// unblocking anything.
    HomeFenceAck {
        /// Echo of the fence's request id.
        req: ReqId,
        /// The object.
        obj: ObjectId,
    },
    /// Orderly shutdown of a node's protocol server.
    Shutdown,
}

impl ProtocolMsg {
    /// The statistics category this message is accounted under.
    pub fn category(&self) -> MsgCategory {
        match self {
            ProtocolMsg::ObjectRequest { .. } => MsgCategory::ObjRequest,
            ProtocolMsg::ObjectReply { migration, .. } => {
                if migration.is_some() {
                    MsgCategory::ObjReplyMigrate
                } else {
                    MsgCategory::ObjReply
                }
            }
            ProtocolMsg::ObjectRedirect { .. } | ProtocolMsg::DiffRedirect { .. } => {
                MsgCategory::Redirect
            }
            ProtocolMsg::DiffFlush { .. } => MsgCategory::Diff,
            ProtocolMsg::DiffAck { .. } => MsgCategory::DiffAck,
            ProtocolMsg::DiffBatch { .. } => MsgCategory::DiffBatch,
            ProtocolMsg::DiffBatchAck { .. } => MsgCategory::DiffBatchAck,
            ProtocolMsg::LockAcquire { .. } => MsgCategory::LockAcquire,
            ProtocolMsg::LockGrant { .. } => MsgCategory::LockGrant,
            ProtocolMsg::LockRelease { .. } => MsgCategory::LockRelease,
            ProtocolMsg::BarrierArrive { .. } => MsgCategory::BarrierArrive,
            ProtocolMsg::BarrierRelease { .. } => MsgCategory::BarrierRelease,
            ProtocolMsg::HomeNotify { .. } => MsgCategory::HomeNotify,
            ProtocolMsg::HomeLookup { .. } | ProtocolMsg::HomeLookupReply { .. } => {
                MsgCategory::HomeLookup
            }
            // Fault-recovery control traffic: rare by construction (only
            // under loss), so it shares the catch-all control category
            // rather than widening the paper's per-category breakdown.
            ProtocolMsg::LockReleaseAck { .. }
            | ProtocolMsg::HomeElect { .. }
            | ProtocolMsg::HomeElectReply { .. }
            | ProtocolMsg::HomeFence { .. }
            | ProtocolMsg::HomeFenceAck { .. }
            | ProtocolMsg::Shutdown => MsgCategory::Control,
        }
    }

    /// Modelled payload size in bytes (the message header is added by the
    /// fabric). Control fields are folded into the fixed header; what is
    /// counted here is the variable part: object data and diff contents.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            ProtocolMsg::ObjectReply { data, .. } => data.len() as u64,
            ProtocolMsg::DiffFlush { diff, .. } => diff.wire_bytes() as u64,
            // A batch is ONE message: the summed diff payloads plus a small
            // per-entry header (the single fixed message header is added by
            // the fabric, exactly once).
            ProtocolMsg::DiffBatch { entries, .. } => entries
                .iter()
                .map(|e| e.diff.wire_bytes() as u64 + DIFF_BATCH_ENTRY_HEADER_BYTES)
                .sum(),
            // Unit-sized protocol messages: requests, grants, redirections,
            // acks, notifications. The paper models a redirection as a
            // "unit-sized message"; we charge only the fixed header.
            _ => 0,
        }
    }

    /// True for messages that complete a blocked request on the requester
    /// side (the runtime routes them to the waiting application thread
    /// instead of the protocol handler).
    pub fn is_reply(&self) -> bool {
        matches!(
            self,
            ProtocolMsg::ObjectReply { .. }
                | ProtocolMsg::ObjectRedirect { .. }
                | ProtocolMsg::DiffAck { .. }
                | ProtocolMsg::DiffBatchAck { .. }
                | ProtocolMsg::DiffRedirect { .. }
                | ProtocolMsg::LockGrant { .. }
                | ProtocolMsg::BarrierRelease { .. }
                | ProtocolMsg::HomeLookupReply { .. }
        )
    }

    /// The request id echoed by a reply, if this is a reply.
    pub fn reply_req(&self) -> Option<ReqId> {
        match self {
            ProtocolMsg::ObjectReply { req, .. }
            | ProtocolMsg::ObjectRedirect { req, .. }
            | ProtocolMsg::DiffAck { req, .. }
            | ProtocolMsg::DiffBatchAck { req, .. }
            | ProtocolMsg::DiffRedirect { req, .. }
            | ProtocolMsg::LockGrant { req, .. }
            | ProtocolMsg::BarrierRelease { req, .. }
            | ProtocolMsg::HomeLookupReply { req, .. } => Some(*req),
            _ => None,
        }
    }

    /// The request id a non-blocking acknowledgement answers, if this is
    /// one. Acks are *not* replies ([`ProtocolMsg::is_reply`] is false):
    /// nobody blocks on them, they only clear retry entries — but like
    /// replies they are cached by request id so a duplicate of the acked
    /// message can be answered without re-executing it.
    pub fn ack_req(&self) -> Option<ReqId> {
        match self {
            ProtocolMsg::LockReleaseAck { req, .. } => Some(*req),
            _ => None,
        }
    }

    /// The request id under which a *server* deduplicates this message, if
    /// it is an at-most-once request. Covers every retriable request with
    /// side effects; election and fence traffic is excluded (idempotent by
    /// construction, and election reuses the stuck request's id).
    pub fn dedup_req(&self) -> Option<ReqId> {
        match self {
            ProtocolMsg::ObjectRequest { req, .. }
            | ProtocolMsg::DiffFlush { req, .. }
            | ProtocolMsg::DiffBatch { req, .. }
            | ProtocolMsg::LockAcquire { req, .. }
            | ProtocolMsg::BarrierArrive { req, .. }
            | ProtocolMsg::HomeLookup { req, .. } => Some(*req),
            ProtocolMsg::LockRelease { req, .. } if req.0 != 0 => Some(*req),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object_reply(migrate: bool) -> ProtocolMsg {
        ProtocolMsg::ObjectReply {
            req: ReqId(1),
            obj: ObjectId::derive("x", 0),
            data: vec![0u8; 256],
            version: Version(3),
            migration: if migrate {
                Some(MigrationGrant {
                    state: crate::migration::MigrationState::new(),
                })
            } else {
                None
            },
        }
    }

    #[test]
    fn categories_match_paper_breakdown() {
        assert_eq!(object_reply(false).category(), MsgCategory::ObjReply);
        assert_eq!(object_reply(true).category(), MsgCategory::ObjReplyMigrate);
        let redirect = ProtocolMsg::ObjectRedirect {
            req: ReqId(1),
            obj: ObjectId::derive("x", 0),
            new_home: NodeId(2),
            epoch: 1,
        };
        assert_eq!(redirect.category(), MsgCategory::Redirect);
        let diff = ProtocolMsg::DiffFlush {
            req: ReqId(1),
            obj: ObjectId::derive("x", 0),
            diff: Diff::full(&[1, 2, 3, 4]),
            from: NodeId(1),
            redirections: 0,
        };
        assert_eq!(diff.category(), MsgCategory::Diff);
        assert_eq!(ProtocolMsg::Shutdown.category(), MsgCategory::Control);
    }

    #[test]
    fn payload_bytes_cover_data_and_diffs() {
        assert_eq!(object_reply(false).payload_bytes(), 256);
        let diff = Diff::full(&[0u8; 100]);
        let wire = diff.wire_bytes() as u64;
        let msg = ProtocolMsg::DiffFlush {
            req: ReqId(1),
            obj: ObjectId::derive("x", 0),
            diff,
            from: NodeId(1),
            redirections: 0,
        };
        assert_eq!(msg.payload_bytes(), wire);
        assert_eq!(ProtocolMsg::Shutdown.payload_bytes(), 0);
        let req = ProtocolMsg::ObjectRequest {
            req: ReqId(1),
            obj: ObjectId::derive("x", 0),
            requester: NodeId(1),
            for_write: true,
            redirections: 2,
        };
        assert_eq!(req.payload_bytes(), 0);
    }

    fn batch(entry_payloads: &[&[u8]]) -> ProtocolMsg {
        ProtocolMsg::DiffBatch {
            req: ReqId(7),
            entries: entry_payloads
                .iter()
                .enumerate()
                .map(|(i, bytes)| DiffBatchEntry {
                    obj: ObjectId::derive("batch.obj", i as u64),
                    diff: Diff::full(bytes),
                })
                .collect(),
            from: NodeId(3),
        }
    }

    #[test]
    fn diff_batch_is_one_message_with_summed_payload() {
        // The wire/stat accounting contract of batching: k entries make ONE
        // message of the `DiffBatch` category whose payload is the *sum* of
        // the entry diffs' wire sizes (plus the per-entry header) — never k
        // `Diff` messages.
        let msg = batch(&[&[1u8; 64], &[2u8; 32], &[3u8; 128]]);
        assert_eq!(msg.category(), MsgCategory::DiffBatch);
        let expected: u64 = [64usize, 32, 128]
            .iter()
            .map(|len| Diff::full(&vec![9u8; *len]).wire_bytes() as u64)
            .sum::<u64>()
            + 3 * DIFF_BATCH_ENTRY_HEADER_BYTES;
        assert_eq!(msg.payload_bytes(), expected);
        assert!(!msg.is_reply());
        // The ack is a unit-sized reply carrying the request id.
        let ack = ProtocolMsg::DiffBatchAck {
            req: ReqId(7),
            results: vec![DiffBatchResult {
                obj: ObjectId::derive("batch.obj", 0),
                status: DiffEntryStatus::Applied {
                    version: Version(2),
                },
            }],
        };
        assert_eq!(ack.category(), MsgCategory::DiffBatchAck);
        assert_eq!(ack.payload_bytes(), 0);
        assert!(ack.is_reply());
        assert_eq!(ack.reply_req(), Some(ReqId(7)));
    }

    #[test]
    fn reply_detection_and_request_ids() {
        assert!(object_reply(false).is_reply());
        assert_eq!(object_reply(false).reply_req(), Some(ReqId(1)));
        let req = ProtocolMsg::LockAcquire {
            req: ReqId(9),
            lock: LockId(1),
            requester: NodeId(0),
        };
        assert!(!req.is_reply());
        assert_eq!(req.reply_req(), None);
        let grant = ProtocolMsg::LockGrant {
            req: ReqId(9),
            lock: LockId(1),
        };
        assert!(grant.is_reply());
        assert_eq!(grant.reply_req(), Some(ReqId(9)));
    }
}
