//! The pluggable home-migration policy API.
//!
//! The paper's contribution is a *policy* — the rule deciding when an
//! object's home should migrate — and this module makes that rule an open
//! extension point instead of a closed enum. A policy is any type
//! implementing [`HomeMigrationPolicy`]: a `Send + Sync` object shared by
//! every engine shard (and, for the common single-policy cluster, by every
//! node), consulted through
//!
//! * three **observation hooks** ([`on_remote_write`], [`on_home_write`],
//!   [`on_redirect`]) called after the engine has recorded the protocol
//!   event into the object's [`MigrationState`], and
//! * one **pure decision step** ([`decide`]) evaluated at the object's home
//!   whenever a remote node faults the object in.
//!
//! ## Who owns which state
//!
//! The *engine* owns the per-object observation record, [`MigrationState`]:
//! consecutive remote writes, redirection and exclusive-home-write feedback,
//! diff-size history, the carried threshold base and the previous home. The
//! engine updates it on every protocol event *before* invoking the policy's
//! hook, ships it to the new home inside the migration grant, and performs
//! the epoch reset on migration. The *policy* owns only two things: its own
//! configuration (immutable after construction — policies are shared across
//! threads without locks) and the small per-object
//! [`PolicyScratch`] embedded in `MigrationState`, which the hooks may
//! mutate freely and which travels with the grant.
//!
//! ## Determinism requirements
//!
//! `decide` must be a pure function of [`PolicyInputs`], and the hooks must
//! be pure functions of their arguments and the scratch: no interior
//! mutability, no randomness, no clocks. The experiment harness replays
//! seeded traces and asserts bit-identical migration decisions; a policy
//! that violates purity breaks reproducibility for every figure it appears
//! in.
//!
//! ## Built-in policies
//!
//! The paper's policy set ([`AdaptiveThresholdPolicy`],
//! [`FixedThresholdPolicy`], [`NoMigrationPolicy`]) plus the related-work
//! baselines ([`MigrateOnRequestPolicy`], [`LazyFlushingPolicy`]) reproduce
//! the pre-refactor [`MigrationPolicy`] enum decisions bit-for-bit (a seeded
//! equivalence suite in `tests/` replays both). Two policies go beyond the
//! paper: [`HysteresisPolicy`] damps migrate-back ping-pong by demanding
//! extra evidence before the home returns to the node it just left, and
//! [`EwmaWriteRatioPolicy`] tracks an exponentially weighted remote-write
//! share in the scratch and migrates on a ratio bound instead of a count.
//!
//! [`on_remote_write`]: HomeMigrationPolicy::on_remote_write
//! [`on_home_write`]: HomeMigrationPolicy::on_home_write
//! [`on_redirect`]: HomeMigrationPolicy::on_redirect
//! [`decide`]: HomeMigrationPolicy::decide

use crate::migration::{MigrationPolicy, MigrationState, PolicyScratch};
use dsm_objspace::{NodeId, ObjectId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The outcome of one policy decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the home where it is.
    Stay,
    /// Migrate the home to the requester, inside the reply that carries the
    /// object.
    Migrate,
}

impl Decision {
    /// Whether this decision migrates the home.
    pub fn is_migrate(self) -> bool {
        matches!(self, Decision::Migrate)
    }
}

/// Everything a policy may consult when deciding whether the home should
/// migrate to the requester: the engine-owned per-object observation state
/// plus the cost-model terms of the paper's home access coefficient.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInputs<'a> {
    /// The object's migration bookkeeping at its current home.
    pub state: &'a MigrationState,
    /// The node that faulted the object in (never the home itself; the
    /// engine answers local requests without consulting the policy).
    pub requester: NodeId,
    /// Whether the fault was a write fault.
    pub for_write: bool,
    /// Registered size of the object in bytes (`o` of Appendix A).
    pub object_bytes: u64,
    /// Half-peak message length `m_½` of the configured network, in bytes.
    pub half_peak_len: f64,
}

impl PolicyInputs<'_> {
    /// The paper's home access coefficient `α = 2 + (o + d)/m_½`, with `d`
    /// the observed mean diff size (falling back to the object size before
    /// any diff has been seen, which over-estimates α slightly and therefore
    /// errs on the eager side — matching the paper's choice of a small
    /// initial threshold).
    pub fn default_alpha(&self) -> f64 {
        let d = if self.state.diff_samples > 0 {
            self.state.mean_diff_bytes
        } else {
            self.object_bytes as f64
        };
        2.0 + (self.object_bytes as f64 + d) / self.half_peak_len.max(1.0)
    }
}

/// An open home-migration policy, consulted by every engine shard.
///
/// See the [module documentation](self) for the contract: which state the
/// engine owns, which state the policy owns, and the determinism
/// requirements. All methods take `&self` — one policy value is shared
/// (behind an [`Arc`]) by all shards of a node and usually by all nodes of
/// the cluster.
pub trait HomeMigrationPolicy: fmt::Debug + Send + Sync {
    /// Short report label ("AT", "FT2", "HYST1+2", ...). Implementations
    /// must return a borrowed, allocation-free label: either a `&'static
    /// str` or a `String` cached at construction time.
    fn label(&self) -> &str;

    /// The pure decision step, evaluated at the object's home for every
    /// fault-in request arriving from a remote node.
    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision;

    /// The policy's current decision threshold for this object, used for
    /// two purposes: the telemetry's threshold trajectory (non-finite
    /// values are not sampled), and the `threshold_base` carried to the new
    /// home when a migration is granted. Policies without a meaningful
    /// threshold should return the constant that best describes their
    /// eagerness (`0` for always, `f64::INFINITY` for never).
    fn current_threshold(&self, inputs: &PolicyInputs<'_>) -> f64;

    /// Observation hook: a diff from `from` was just applied at the home
    /// and recorded into `state` (consecutive-write run and diff-size
    /// average already updated).
    fn on_remote_write(&self, state: &mut MigrationState, from: NodeId, diff_bytes: u64) {
        let _ = (state, from, diff_bytes);
    }

    /// Observation hook: the home node's first write fault of the interval
    /// was just recorded into `state`; `exclusive` is true when no remote
    /// write intervened since an earlier home write.
    fn on_home_write(&self, state: &mut MigrationState, exclusive: bool) {
        let _ = (state, exclusive);
    }

    /// Observation hook: an arriving request or diff reported `hops`
    /// redirection hops, already accumulated into `state` (the negative
    /// feedback of previous migrations). Only called when `hops > 0`.
    fn on_redirect(&self, state: &mut MigrationState, hops: u32) {
        let _ = (state, hops);
    }

    /// Migration hook: `shipped` is the state about to travel to the new
    /// home, after the engine's standard epoch reset (which keeps the
    /// scratch). Policies that want a fresh [`PolicyScratch`] at the new
    /// home clear it here.
    fn on_migrate(&self, shipped: &mut MigrationState) {
        let _ = shipped;
    }
}

/// Conversion into a shared policy object, implemented by the
/// [`MigrationPolicy`] description enum (preserving every historical call
/// site), by `Arc`s of policy values, and by the built-in policy types
/// themselves — so `builder.migration(MigrationPolicy::adaptive())`,
/// `builder.migration(HysteresisPolicy::default())` and
/// `builder.migration(Arc::new(MyPolicy))` all work.
pub trait IntoMigrationPolicy {
    /// Convert into the shared trait object the engine consults.
    fn into_policy(self) -> Arc<dyn HomeMigrationPolicy>;
}

impl IntoMigrationPolicy for Arc<dyn HomeMigrationPolicy> {
    fn into_policy(self) -> Arc<dyn HomeMigrationPolicy> {
        self
    }
}

impl<P: HomeMigrationPolicy + 'static> IntoMigrationPolicy for Arc<P> {
    fn into_policy(self) -> Arc<dyn HomeMigrationPolicy> {
        self
    }
}

impl IntoMigrationPolicy for MigrationPolicy {
    fn into_policy(self) -> Arc<dyn HomeMigrationPolicy> {
        match self {
            MigrationPolicy::NoMigration => Arc::new(NoMigrationPolicy),
            MigrationPolicy::FixedThreshold { threshold } => {
                Arc::new(FixedThresholdPolicy::new(threshold))
            }
            MigrationPolicy::AdaptiveThreshold {
                lambda,
                initial_threshold,
                alpha_override,
            } => Arc::new(AdaptiveThresholdPolicy {
                lambda,
                initial_threshold,
                alpha_override,
            }),
            MigrationPolicy::MigrateOnRequest => Arc::new(MigrateOnRequestPolicy),
            MigrationPolicy::LazyFlushing { max_transitions } => {
                Arc::new(LazyFlushingPolicy::new(max_transitions))
            }
        }
    }
}

impl IntoMigrationPolicy for &MigrationPolicy {
    fn into_policy(self) -> Arc<dyn HomeMigrationPolicy> {
        self.clone().into_policy()
    }
}

macro_rules! impl_into_policy {
    ($($ty:ty),* $(,)?) => {$(
        impl IntoMigrationPolicy for $ty {
            fn into_policy(self) -> Arc<dyn HomeMigrationPolicy> {
                Arc::new(self)
            }
        }
    )*};
}
impl_into_policy!(
    NoMigrationPolicy,
    FixedThresholdPolicy,
    AdaptiveThresholdPolicy,
    MigrateOnRequestPolicy,
    LazyFlushingPolicy,
    HysteresisPolicy,
    EwmaWriteRatioPolicy,
);

// ----------------------------------------------------------------------
// The paper's policies and the related-work baselines
// ----------------------------------------------------------------------

/// The paper's `NoHM`/`NM` baseline: the home never migrates.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMigrationPolicy;

impl HomeMigrationPolicy for NoMigrationPolicy {
    fn label(&self) -> &str {
        "NM"
    }

    fn decide(&self, _inputs: &PolicyInputs<'_>) -> Decision {
        Decision::Stay
    }

    fn current_threshold(&self, _inputs: &PolicyInputs<'_>) -> f64 {
        f64::INFINITY
    }
}

/// The authors' earlier fixed-threshold protocol: migrate when the number of
/// consecutive remote writes from one node reaches a constant (the paper
/// evaluates `FT1` and `FT2`).
#[derive(Debug, Clone)]
pub struct FixedThresholdPolicy {
    threshold: u32,
    label: String,
}

impl FixedThresholdPolicy {
    /// A fixed-threshold policy with the given constant.
    pub fn new(threshold: u32) -> Self {
        FixedThresholdPolicy {
            threshold,
            label: format!("FT{threshold}"),
        }
    }

    /// The constant threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }
}

impl HomeMigrationPolicy for FixedThresholdPolicy {
    fn label(&self) -> &str {
        &self.label
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        let s = inputs.state;
        if s.last_remote_writer == Some(inputs.requester)
            && f64::from(s.consecutive_remote_writes) >= f64::from(self.threshold)
        {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, _inputs: &PolicyInputs<'_>) -> f64 {
        f64::from(self.threshold)
    }
}

/// The paper's contribution: a per-object threshold that decreases with
/// evidence of a lasting single-writer pattern and increases with evidence
/// that migrations only caused redirections,
/// `T_i = max(T_{i-1} + λ·(R_i − α·E_i), T_init)`.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveThresholdPolicy {
    lambda: f64,
    initial_threshold: f64,
    alpha_override: Option<f64>,
}

impl AdaptiveThresholdPolicy {
    /// The paper's published constants: λ = 1, `T_init` = 1, α derived from
    /// the network model.
    pub fn paper() -> Self {
        AdaptiveThresholdPolicy {
            lambda: 1.0,
            initial_threshold: 1.0,
            alpha_override: None,
        }
    }

    /// An adaptive policy with explicit feedback coefficient and initial
    /// (minimum) threshold.
    pub fn new(lambda: f64, initial_threshold: f64) -> Self {
        AdaptiveThresholdPolicy {
            lambda,
            initial_threshold,
            alpha_override: None,
        }
    }

    /// Force the home access coefficient α instead of deriving it from
    /// object/diff sizes and the half-peak length (the sensitivity
    /// ablation's knob).
    #[must_use]
    pub fn with_alpha_override(mut self, alpha: f64) -> Self {
        self.alpha_override = Some(alpha);
        self
    }

    fn alpha(&self, inputs: &PolicyInputs<'_>) -> f64 {
        self.alpha_override
            .unwrap_or_else(|| inputs.default_alpha())
    }
}

impl Default for AdaptiveThresholdPolicy {
    fn default() -> Self {
        AdaptiveThresholdPolicy::paper()
    }
}

impl HomeMigrationPolicy for AdaptiveThresholdPolicy {
    fn label(&self) -> &str {
        "AT"
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        let s = inputs.state;
        if s.last_remote_writer == Some(inputs.requester)
            && f64::from(s.consecutive_remote_writes) >= self.current_threshold(inputs)
        {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, inputs: &PolicyInputs<'_>) -> f64 {
        let s = inputs.state;
        let feedback =
            s.redirected_requests as f64 - self.alpha(inputs) * s.exclusive_home_writes as f64;
        (s.threshold_base + self.lambda * feedback).max(self.initial_threshold)
    }
}

/// JUMP-style migrating-home protocol: the requester of a write fault always
/// becomes the new home, regardless of access history.
#[derive(Debug, Clone, Copy, Default)]
pub struct MigrateOnRequestPolicy;

impl HomeMigrationPolicy for MigrateOnRequestPolicy {
    fn label(&self) -> &str {
        "JUMP"
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        if inputs.for_write {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, _inputs: &PolicyInputs<'_>) -> f64 {
        0.0
    }
}

/// Jackal-style lazy flushing: ownership moves to a writing requester as
/// long as the object has not changed home more than `max_transitions`
/// times (Jackal caps the transitions at five).
#[derive(Debug, Clone, Copy)]
pub struct LazyFlushingPolicy {
    max_transitions: u32,
}

impl LazyFlushingPolicy {
    /// A lazy-flushing policy with an explicit transition cap.
    pub fn new(max_transitions: u32) -> Self {
        LazyFlushingPolicy { max_transitions }
    }
}

impl Default for LazyFlushingPolicy {
    fn default() -> Self {
        LazyFlushingPolicy::new(5)
    }
}

impl HomeMigrationPolicy for LazyFlushingPolicy {
    fn label(&self) -> &str {
        "LAZY"
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        if inputs.for_write && inputs.state.migrations < self.max_transitions {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, _inputs: &PolicyInputs<'_>) -> f64 {
        1.0
    }
}

// ----------------------------------------------------------------------
// Policies beyond the paper
// ----------------------------------------------------------------------

/// A fixed-threshold policy with **hysteresis**: migrating the home *back*
/// to the node it most recently came from requires `migrate_back_penalty`
/// additional consecutive remote writes on top of the base threshold.
///
/// This directly damps the migrate-back ping-pong that eager policies
/// exhibit when two writers alternate in short bursts: the first migration
/// is as cheap as under the base threshold, but returning costs extra
/// evidence, so bursts shorter than `threshold + migrate_back_penalty`
/// leave the home where it is.
#[derive(Debug, Clone)]
pub struct HysteresisPolicy {
    threshold: u32,
    migrate_back_penalty: u32,
    label: String,
}

impl HysteresisPolicy {
    /// A hysteresis policy: `threshold` consecutive remote writes migrate
    /// the home, except back to the previous home, which takes
    /// `threshold + migrate_back_penalty`.
    pub fn new(threshold: u32, migrate_back_penalty: u32) -> Self {
        HysteresisPolicy {
            threshold,
            migrate_back_penalty,
            label: format!("HYST{threshold}+{migrate_back_penalty}"),
        }
    }

    /// The consecutive-write requirement for migrating to `requester`.
    fn required(&self, inputs: &PolicyInputs<'_>) -> u32 {
        if inputs.state.prev_home == Some(inputs.requester) {
            self.threshold.saturating_add(self.migrate_back_penalty)
        } else {
            self.threshold
        }
    }
}

impl Default for HysteresisPolicy {
    fn default() -> Self {
        HysteresisPolicy::new(1, 2)
    }
}

impl HomeMigrationPolicy for HysteresisPolicy {
    fn label(&self) -> &str {
        &self.label
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        let s = inputs.state;
        if s.last_remote_writer == Some(inputs.requester)
            && s.consecutive_remote_writes >= self.required(inputs)
        {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    fn current_threshold(&self, inputs: &PolicyInputs<'_>) -> f64 {
        f64::from(self.required(inputs))
    }
}

/// A policy that migrates on an **exponentially weighted remote-write
/// share** instead of a consecutive-write count.
///
/// The scratch's `a` field holds an EWMA of the indicator "the most recent
/// write event was a remote write by the currently tracked writer": each
/// remote write in an unbroken run pushes it toward 1 with gain `gamma` (a
/// retargeted run restarts at `gamma`), each home write decays it, and each
/// reported redirection hop decays it once more (negative feedback, like
/// the adaptive threshold's `R_i`). The home migrates to the tracked writer
/// once the share reaches `ratio`, so sporadic interleaved writers never
/// trigger a move while a sustained single writer does — a smoother version
/// of the paper's counter that also forgets old evidence geometrically.
#[derive(Debug, Clone, Copy)]
pub struct EwmaWriteRatioPolicy {
    gamma: f64,
    ratio: f64,
}

impl EwmaWriteRatioPolicy {
    /// An EWMA policy with smoothing gain `gamma` in (0, 1] and migration
    /// bound `ratio` in (0, 1].
    ///
    /// # Panics
    /// Panics if either parameter is outside (0, 1].
    pub fn new(gamma: f64, ratio: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
        EwmaWriteRatioPolicy { gamma, ratio }
    }

    /// The current remote-write share tracked for an object.
    pub fn share(state: &MigrationState) -> f64 {
        state.scratch.a
    }
}

impl Default for EwmaWriteRatioPolicy {
    /// Gain 0.5, bound 0.8: three unbroken remote writes from one node
    /// (share 0.5 → 0.75 → 0.875) arm migration on that node's next fault.
    fn default() -> Self {
        EwmaWriteRatioPolicy::new(0.5, 0.8)
    }
}

impl HomeMigrationPolicy for EwmaWriteRatioPolicy {
    fn label(&self) -> &str {
        "EWMA"
    }

    fn decide(&self, inputs: &PolicyInputs<'_>) -> Decision {
        let s = inputs.state;
        if inputs.for_write
            && s.last_remote_writer == Some(inputs.requester)
            && s.scratch.a >= self.ratio
        {
            Decision::Migrate
        } else {
            Decision::Stay
        }
    }

    /// The EWMA policy's decision boundary is the ratio bound, which is what
    /// the threshold telemetry tracks for it.
    fn current_threshold(&self, _inputs: &PolicyInputs<'_>) -> f64 {
        self.ratio
    }

    fn on_remote_write(&self, state: &mut MigrationState, _from: NodeId, _diff_bytes: u64) {
        // The engine has already updated the consecutive-write run: a run of
        // length 1 means the tracked writer changed (or a home write broke
        // the run), so the share restarts from this single sample.
        if state.consecutive_remote_writes <= 1 {
            state.scratch.a = self.gamma;
        } else {
            state.scratch.a = self.gamma + (1.0 - self.gamma) * state.scratch.a;
        }
    }

    fn on_home_write(&self, state: &mut MigrationState, _exclusive: bool) {
        state.scratch.a *= 1.0 - self.gamma;
    }

    fn on_redirect(&self, state: &mut MigrationState, hops: u32) {
        // Redirections are the cost of past migrations; decay the share once
        // per hop so the policy needs fresh writes to re-arm.
        for _ in 0..hops {
            state.scratch.a *= 1.0 - self.gamma;
        }
    }

    fn on_migrate(&self, shipped: &mut MigrationState) {
        // The tracked writer just became the home; its share is meaningless
        // at the new home, so start over.
        shipped.scratch = PolicyScratch::default();
    }
}

// ----------------------------------------------------------------------
// Per-object overrides
// ----------------------------------------------------------------------

/// Per-object home-migration policy overrides: objects listed here consult
/// their own policy instead of the cluster-wide default, so one cluster can
/// run different policies on different objects (a policy × object
/// experiment grid in a single run).
#[derive(Clone, Default)]
pub struct PolicyOverrides {
    map: HashMap<ObjectId, Arc<dyn HomeMigrationPolicy>>,
}

impl PolicyOverrides {
    /// No overrides: every object uses the cluster-wide default.
    pub fn new() -> Self {
        PolicyOverrides::default()
    }

    /// Set (or replace) the policy override for `obj`.
    pub fn set(&mut self, obj: ObjectId, policy: impl IntoMigrationPolicy) {
        self.map.insert(obj, policy.into_policy());
    }

    /// The override for `obj`, if any.
    pub fn get(&self, obj: ObjectId) -> Option<&Arc<dyn HomeMigrationPolicy>> {
        self.map.get(&obj)
    }

    /// Number of overridden objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no object is overridden.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The overridden object ids, sorted (deterministic iteration for
    /// reports and tests).
    pub fn ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.map.keys().copied().collect();
        ids.sort();
        ids
    }
}

impl fmt::Debug for PolicyOverrides {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for id in self.ids() {
            map.entry(&id, &self.map[&id].label());
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HALF_PEAK: f64 = 1150.0;
    const OBJ: u64 = 1024;

    fn inputs<'a>(
        state: &'a MigrationState,
        requester: NodeId,
        for_write: bool,
    ) -> PolicyInputs<'a> {
        PolicyInputs {
            state,
            requester,
            for_write,
            object_bytes: OBJ,
            half_peak_len: HALF_PEAK,
        }
    }

    #[test]
    fn labels_are_cached_and_byte_identical_to_the_enum_display() {
        assert_eq!(NoMigrationPolicy.label(), "NM");
        assert_eq!(FixedThresholdPolicy::new(2).label(), "FT2");
        assert_eq!(AdaptiveThresholdPolicy::paper().label(), "AT");
        assert_eq!(MigrateOnRequestPolicy.label(), "JUMP");
        assert_eq!(LazyFlushingPolicy::default().label(), "LAZY");
        assert_eq!(HysteresisPolicy::new(1, 2).label(), "HYST1+2");
        assert_eq!(EwmaWriteRatioPolicy::default().label(), "EWMA");
        // The enum conversion yields the same labels its Display writes.
        for spec in [
            MigrationPolicy::NoMigration,
            MigrationPolicy::fixed(1),
            MigrationPolicy::fixed(7),
            MigrationPolicy::adaptive(),
            MigrationPolicy::MigrateOnRequest,
            MigrationPolicy::lazy_flushing(),
        ] {
            assert_eq!(spec.clone().into_policy().label(), spec.to_string());
        }
    }

    #[test]
    fn builtins_match_the_enum_spec_on_a_seeded_trace() {
        // Drive identical random event sequences through the frozen enum
        // spec and the trait impls; every decision and threshold must agree
        // bit-for-bit. (The full engine-level suite lives in tests/.)
        use dsm_util::SmallRng;
        let pairs: Vec<(MigrationPolicy, Arc<dyn HomeMigrationPolicy>)> = vec![
            (
                MigrationPolicy::NoMigration,
                MigrationPolicy::NoMigration.into_policy(),
            ),
            (
                MigrationPolicy::fixed(1),
                MigrationPolicy::fixed(1).into_policy(),
            ),
            (
                MigrationPolicy::fixed(3),
                MigrationPolicy::fixed(3).into_policy(),
            ),
            (
                MigrationPolicy::adaptive(),
                MigrationPolicy::adaptive().into_policy(),
            ),
            (
                MigrationPolicy::MigrateOnRequest,
                MigrationPolicy::MigrateOnRequest.into_policy(),
            ),
            (
                MigrationPolicy::lazy_flushing(),
                MigrationPolicy::lazy_flushing().into_policy(),
            ),
        ];
        for (spec, policy) in &pairs {
            let mut rng = SmallRng::seed_from_u64(0x9_0C7 ^ spec.to_string().len() as u64);
            let mut state = MigrationState::new();
            for step in 0..400 {
                match rng.gen_index(4) {
                    0 => {
                        let from = NodeId(1 + rng.gen_index(3) as u16);
                        let bytes = 32 + rng.gen_index(512) as u64;
                        state.record_remote_write(from, bytes);
                        policy.on_remote_write(&mut state, from, bytes);
                    }
                    1 => {
                        let exclusive = state.record_home_write();
                        policy.on_home_write(&mut state, exclusive);
                    }
                    2 => {
                        let hops = 1 + rng.gen_index(3) as u32;
                        state.record_redirections(hops);
                        policy.on_redirect(&mut state, hops);
                    }
                    _ => {
                        let requester = NodeId(1 + rng.gen_index(3) as u16);
                        let for_write = rng.gen_index(2) == 0;
                        let spec_migrates =
                            state.should_migrate(spec, requester, for_write, OBJ, HALF_PEAK);
                        let got = policy.decide(&inputs(&state, requester, for_write));
                        assert_eq!(
                            got.is_migrate(),
                            spec_migrates,
                            "{spec:?} step {step}: trait and enum spec disagree"
                        );
                        let spec_t = state.current_threshold(spec, OBJ, HALF_PEAK);
                        let got_t = policy.current_threshold(&inputs(&state, requester, for_write));
                        assert!(
                            got_t == spec_t || (got_t.is_infinite() && spec_t.is_infinite()),
                            "{spec:?} step {step}: thresholds differ ({got_t} vs {spec_t})"
                        );
                        if spec_migrates {
                            let carried =
                                policy.current_threshold(&inputs(&state, requester, for_write));
                            let via_spec = state.migrate(spec, OBJ, HALF_PEAK);
                            let mut via_trait = state.migrated(carried, Some(NodeId(0)));
                            policy.on_migrate(&mut via_trait);
                            assert_eq!(via_trait.threshold_base, via_spec.threshold_base);
                            assert_eq!(via_trait.migrations, via_spec.migrations);
                            state = via_trait;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hysteresis_demands_extra_evidence_for_migrate_backs() {
        let policy = HysteresisPolicy::new(1, 2);
        let mut state = MigrationState::new();
        state.record_remote_write(NodeId(2), 64);
        // A first-time migration needs only the base threshold.
        assert!(policy.decide(&inputs(&state, NodeId(2), true)).is_migrate());
        assert_eq!(
            policy.current_threshold(&inputs(&state, NodeId(2), true)),
            1.0
        );
        // Ship the home 1 -> 2; node 1 becomes the previous home.
        let shipped = state.migrated(1.0, Some(NodeId(1)));
        // Back at node 1's request: 1 and 2 consecutive writes are refused,
        // 3 (threshold + penalty) migrate.
        let mut at_two = shipped;
        at_two.record_remote_write(NodeId(1), 64);
        assert_eq!(
            policy.current_threshold(&inputs(&at_two, NodeId(1), true)),
            3.0
        );
        assert!(!policy
            .decide(&inputs(&at_two, NodeId(1), true))
            .is_migrate());
        at_two.record_remote_write(NodeId(1), 64);
        assert!(!policy
            .decide(&inputs(&at_two, NodeId(1), true))
            .is_migrate());
        at_two.record_remote_write(NodeId(1), 64);
        assert!(policy
            .decide(&inputs(&at_two, NodeId(1), true))
            .is_migrate());
        // A third node pays only the base threshold.
        let mut fresh = MigrationState::new().migrated(1.0, Some(NodeId(1)));
        fresh.record_remote_write(NodeId(3), 64);
        assert!(policy.decide(&inputs(&fresh, NodeId(3), true)).is_migrate());
    }

    #[test]
    fn ewma_share_rises_with_runs_and_decays_on_interference() {
        let policy = EwmaWriteRatioPolicy::default();
        let mut state = MigrationState::new();
        // Two writes are not enough (0.5 then 0.75 < 0.8)...
        for _ in 0..2 {
            state.record_remote_write(NodeId(1), 64);
            policy.on_remote_write(&mut state, NodeId(1), 64);
            assert!(!policy.decide(&inputs(&state, NodeId(1), true)).is_migrate());
        }
        // ...the third arms it (0.875 >= 0.8).
        state.record_remote_write(NodeId(1), 64);
        policy.on_remote_write(&mut state, NodeId(1), 64);
        assert!(policy.decide(&inputs(&state, NodeId(1), true)).is_migrate());
        // But never for a read fault or for another node.
        assert!(!policy
            .decide(&inputs(&state, NodeId(1), false))
            .is_migrate());
        assert!(!policy.decide(&inputs(&state, NodeId(2), true)).is_migrate());
        // A home write decays the share below the bound again.
        let exclusive = state.record_home_write();
        policy.on_home_write(&mut state, exclusive);
        assert!(EwmaWriteRatioPolicy::share(&state) < 0.8);
        // A retargeted run restarts from a single sample.
        state.record_remote_write(NodeId(2), 64);
        policy.on_remote_write(&mut state, NodeId(2), 64);
        assert_eq!(EwmaWriteRatioPolicy::share(&state), 0.5);
        // Redirection feedback decays it too.
        state.record_redirections(2);
        policy.on_redirect(&mut state, 2);
        assert!(EwmaWriteRatioPolicy::share(&state) < 0.2);
        // Migration resets the scratch at the new home.
        let mut shipped = state.migrated(1.0, Some(NodeId(0)));
        policy.on_migrate(&mut shipped);
        assert_eq!(EwmaWriteRatioPolicy::share(&shipped), 0.0);
    }

    #[test]
    fn overrides_resolve_per_object() {
        let a = ObjectId::derive("override.a", 0);
        let b = ObjectId::derive("override.b", 0);
        let mut overrides = PolicyOverrides::new();
        assert!(overrides.is_empty());
        overrides.set(a, MigrationPolicy::NoMigration);
        overrides.set(b, HysteresisPolicy::default());
        assert_eq!(overrides.len(), 2);
        assert_eq!(overrides.get(a).unwrap().label(), "NM");
        assert_eq!(overrides.get(b).unwrap().label(), "HYST1+2");
        assert!(overrides.get(ObjectId::derive("other", 0)).is_none());
        let mut ids = vec![a, b];
        ids.sort();
        assert_eq!(overrides.ids(), ids);
        // Replacing an override keeps one entry.
        overrides.set(a, MigrationPolicy::adaptive());
        assert_eq!(overrides.len(), 2);
        assert_eq!(overrides.get(a).unwrap().label(), "AT");
        // Debug shows labels, not internals.
        assert!(format!("{overrides:?}").contains("AT"));
    }
}
