//! Distributed lock and barrier managers.
//!
//! Synchronization delimits the intervals of the (lazy) release consistency
//! model: diffs are flushed at release/arrival and cached copies are
//! invalidated at acquire/release-receipt. The managers live on one node
//! (the master by default — in the paper's synthetic benchmark "all
//! synchronization operations are distributed ones that are sent to the node
//! where the application is started"); other nodes reach them through
//! `LockAcquire`/`LockRelease`/`BarrierArrive` messages. Synchronization
//! message counts are invariant across home-migration policies, which is why
//! the paper excludes them from its message breakdown.

use crate::messages::ReqId;
use dsm_objspace::{BarrierId, LockId, NodeId};
use std::collections::{HashMap, VecDeque};

/// Outcome of a lock acquire request at the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockAcquireOutcome {
    /// The lock was free; the requester may proceed immediately.
    Granted,
    /// The lock is held; the requester has been queued and will be granted
    /// when the current holder releases.
    Queued,
}

/// Outcome of a lock release at the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockReleaseOutcome {
    /// If a node was waiting, the manager must now send it a grant (node and
    /// the request id it is blocked on).
    pub grant_next: Option<(NodeId, ReqId)>,
}

/// Outcome of a barrier arrival at the manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Not all nodes have arrived yet; the arriving node stays blocked.
    Waiting,
    /// The phase is complete: release every listed waiter (including the
    /// manager's own application thread if it participates).
    Complete {
        /// All blocked arrivals to release, in arrival order.
        waiters: Vec<(NodeId, ReqId)>,
        /// The phase number that completed.
        epoch: u64,
    },
}

/// State of one distributed lock at its manager.
#[derive(Debug, Default, Clone)]
struct LockState {
    holder: Option<NodeId>,
    queue: VecDeque<(NodeId, ReqId)>,
}

/// Manager-side state for all locks hosted on one node.
#[derive(Debug, Default, Clone)]
pub struct LockManager {
    locks: HashMap<LockId, LockState>,
}

impl LockManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Handle an acquire request from `requester` blocked on `req`.
    pub fn acquire(&mut self, lock: LockId, requester: NodeId, req: ReqId) -> LockAcquireOutcome {
        let state = self.locks.entry(lock).or_default();
        if state.holder.is_none() {
            state.holder = Some(requester);
            LockAcquireOutcome::Granted
        } else {
            state.queue.push_back((requester, req));
            LockAcquireOutcome::Queued
        }
    }

    /// Handle a release from `holder`.
    ///
    /// # Panics
    /// Panics if the lock is not currently held by `holder` — releasing a
    /// lock one does not hold is a protocol bug, not a recoverable runtime
    /// condition.
    pub fn release(&mut self, lock: LockId, holder: NodeId) -> LockReleaseOutcome {
        let state = self
            .locks
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        assert_eq!(
            state.holder,
            Some(holder),
            "node {holder} released lock {lock} it does not hold"
        );
        match state.queue.pop_front() {
            Some((next, req)) => {
                state.holder = Some(next);
                LockReleaseOutcome {
                    grant_next: Some((next, req)),
                }
            }
            None => {
                state.holder = None;
                LockReleaseOutcome { grant_next: None }
            }
        }
    }

    /// Current holder of a lock (testing/diagnostics).
    pub fn holder(&self, lock: LockId) -> Option<NodeId> {
        self.locks.get(&lock).and_then(|s| s.holder)
    }

    /// Number of nodes queued on a lock (testing/diagnostics).
    pub fn queue_len(&self, lock: LockId) -> usize {
        self.locks.get(&lock).map_or(0, |s| s.queue.len())
    }
}

/// State of one barrier at its manager.
#[derive(Debug, Default, Clone)]
struct BarrierState {
    epoch: u64,
    waiters: Vec<(NodeId, ReqId)>,
}

/// Manager-side state for all barriers hosted on one node.
#[derive(Debug, Clone)]
pub struct BarrierManager {
    participants: usize,
    barriers: HashMap<BarrierId, BarrierState>,
}

impl BarrierManager {
    /// Create a manager for barriers joined by `participants` nodes.
    ///
    /// # Panics
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        BarrierManager {
            participants,
            barriers: HashMap::new(),
        }
    }

    /// Handle an arrival of `node` (blocked on `req`) at `barrier`.
    pub fn arrive(&mut self, barrier: BarrierId, node: NodeId, req: ReqId) -> BarrierOutcome {
        let participants = self.participants;
        let state = self.barriers.entry(barrier).or_default();
        assert!(
            !state.waiters.iter().any(|(n, _)| *n == node),
            "node {node} arrived twice at {barrier} in the same phase"
        );
        state.waiters.push((node, req));
        if state.waiters.len() == participants {
            let epoch = state.epoch;
            state.epoch += 1;
            let waiters = std::mem::take(&mut state.waiters);
            BarrierOutcome::Complete { waiters, epoch }
        } else {
            BarrierOutcome::Waiting
        }
    }

    /// The phase number the barrier is currently collecting arrivals for.
    pub fn current_epoch(&self, barrier: BarrierId) -> u64 {
        self.barriers.get(&barrier).map_or(0, |s| s.epoch)
    }

    /// Number of nodes that have arrived in the current phase.
    pub fn arrived(&self, barrier: BarrierId) -> usize {
        self.barriers.get(&barrier).map_or(0, |s| s.waiters.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LockId = LockId(1);
    const B: BarrierId = BarrierId(1);

    #[test]
    fn free_lock_is_granted_immediately() {
        let mut m = LockManager::new();
        assert_eq!(
            m.acquire(L, NodeId(0), ReqId(1)),
            LockAcquireOutcome::Granted
        );
        assert_eq!(m.holder(L), Some(NodeId(0)));
    }

    #[test]
    fn contended_lock_queues_and_grants_in_fifo_order() {
        let mut m = LockManager::new();
        assert_eq!(
            m.acquire(L, NodeId(0), ReqId(1)),
            LockAcquireOutcome::Granted
        );
        assert_eq!(
            m.acquire(L, NodeId(1), ReqId(2)),
            LockAcquireOutcome::Queued
        );
        assert_eq!(
            m.acquire(L, NodeId(2), ReqId(3)),
            LockAcquireOutcome::Queued
        );
        assert_eq!(m.queue_len(L), 2);

        let out = m.release(L, NodeId(0));
        assert_eq!(out.grant_next, Some((NodeId(1), ReqId(2))));
        assert_eq!(m.holder(L), Some(NodeId(1)));

        let out = m.release(L, NodeId(1));
        assert_eq!(out.grant_next, Some((NodeId(2), ReqId(3))));

        let out = m.release(L, NodeId(2));
        assert_eq!(out.grant_next, None);
        assert_eq!(m.holder(L), None);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let mut m = LockManager::new();
        let l2 = LockId(2);
        assert_eq!(
            m.acquire(L, NodeId(0), ReqId(1)),
            LockAcquireOutcome::Granted
        );
        assert_eq!(
            m.acquire(l2, NodeId(1), ReqId(2)),
            LockAcquireOutcome::Granted
        );
        assert_eq!(m.holder(L), Some(NodeId(0)));
        assert_eq!(m.holder(l2), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn releasing_unheld_lock_panics() {
        let mut m = LockManager::new();
        m.acquire(L, NodeId(0), ReqId(1));
        let _ = m.release(L, NodeId(3));
    }

    #[test]
    #[should_panic(expected = "unknown lock")]
    fn releasing_never_acquired_lock_panics() {
        let mut m = LockManager::new();
        let _ = m.release(L, NodeId(0));
    }

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut m = BarrierManager::new(3);
        assert_eq!(m.arrive(B, NodeId(0), ReqId(1)), BarrierOutcome::Waiting);
        assert_eq!(m.arrived(B), 1);
        assert_eq!(m.arrive(B, NodeId(1), ReqId(2)), BarrierOutcome::Waiting);
        match m.arrive(B, NodeId(2), ReqId(3)) {
            BarrierOutcome::Complete { waiters, epoch } => {
                assert_eq!(epoch, 0);
                assert_eq!(
                    waiters,
                    vec![
                        (NodeId(0), ReqId(1)),
                        (NodeId(1), ReqId(2)),
                        (NodeId(2), ReqId(3))
                    ]
                );
            }
            other => panic!("expected completion, got {other:?}"),
        }
        // The next phase starts from scratch with a bumped epoch.
        assert_eq!(m.current_epoch(B), 1);
        assert_eq!(m.arrived(B), 0);
        assert_eq!(m.arrive(B, NodeId(1), ReqId(4)), BarrierOutcome::Waiting);
    }

    #[test]
    fn single_participant_barrier_completes_instantly() {
        let mut m = BarrierManager::new(1);
        assert!(matches!(
            m.arrive(B, NodeId(0), ReqId(1)),
            BarrierOutcome::Complete { epoch: 0, .. }
        ));
        assert!(matches!(
            m.arrive(B, NodeId(0), ReqId(2)),
            BarrierOutcome::Complete { epoch: 1, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    fn double_arrival_in_same_phase_panics() {
        let mut m = BarrierManager::new(3);
        m.arrive(B, NodeId(0), ReqId(1));
        m.arrive(B, NodeId(0), ReqId(2));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = BarrierManager::new(0);
    }
}
