//! Per-node protocol statistics.
//!
//! These complement the per-message network statistics of `dsm-net` with
//! protocol-level events: local hits vs faults, home accesses, migrations,
//! redirections and diff volume. The harness merges them across nodes into
//! the experiment report.

/// Telemetry of the home-migration policy's decision process.
///
/// Every object request that reaches an object's home from a remote node is
/// one *considered* decision (one [`decide`] call); the decisions that chose
/// to migrate, the subset that moved the home back to the node it last came
/// from (*migrate-backs* — the ping-pong signature), and the trajectory of
/// the policy's reported threshold are all recorded here. Thresholds are
/// kept in integer millis so the telemetry stays `Eq` and merges exactly;
/// non-finite thresholds (e.g. `NoMigration`'s "never") are not sampled.
///
/// [`decide`]: crate::policy::HomeMigrationPolicy::decide
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyTelemetry {
    /// Migration decisions evaluated (remote requests reaching the home).
    pub decisions_considered: u64,
    /// Decisions that chose to migrate the home.
    pub decisions_migrate: u64,
    /// Migrations granted back to the previous home (ping-pong events).
    pub migrate_backs: u64,
    /// Finite threshold samples taken (one per considered decision whose
    /// policy reported a finite threshold).
    pub threshold_samples: u64,
    /// Sum of sampled thresholds, in integer millis (saturating).
    pub threshold_sum_milli: u64,
    /// Largest sampled threshold, in integer millis.
    pub threshold_peak_milli: u64,
}

impl PolicyTelemetry {
    /// Record one considered decision: whether it migrated, whether that
    /// migration returned the home to its previous node, and the threshold
    /// the policy reported at the decision point.
    pub fn record_decision(&mut self, migrated: bool, migrate_back: bool, threshold: f64) {
        self.decisions_considered += 1;
        if migrated {
            self.decisions_migrate += 1;
            if migrate_back {
                self.migrate_backs += 1;
            }
        }
        if threshold.is_finite() && threshold >= 0.0 {
            let milli = (threshold * 1000.0).round().min(u64::MAX as f64) as u64;
            self.threshold_samples += 1;
            self.threshold_sum_milli = self.threshold_sum_milli.saturating_add(milli);
            self.threshold_peak_milli = self.threshold_peak_milli.max(milli);
        }
    }

    /// Mean sampled threshold (0 when nothing was sampled).
    pub fn mean_threshold(&self) -> f64 {
        if self.threshold_samples == 0 {
            return 0.0;
        }
        self.threshold_sum_milli as f64 / self.threshold_samples as f64 / 1000.0
    }

    /// Largest sampled threshold (0 when nothing was sampled).
    pub fn peak_threshold(&self) -> f64 {
        self.threshold_peak_milli as f64 / 1000.0
    }

    /// Merge counters from another node.
    pub fn merge(&mut self, other: &PolicyTelemetry) {
        self.decisions_considered += other.decisions_considered;
        self.decisions_migrate += other.decisions_migrate;
        self.migrate_backs += other.migrate_backs;
        self.threshold_samples += other.threshold_samples;
        self.threshold_sum_milli = self
            .threshold_sum_milli
            .saturating_add(other.threshold_sum_milli);
        self.threshold_peak_milli = self.threshold_peak_milli.max(other.threshold_peak_milli);
    }
}

/// Protocol event counters for one node (or, after merging, a whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Reads served from a valid local copy (home or cached).
    pub local_read_hits: u64,
    /// Writes served by a valid local read-write copy.
    pub local_write_hits: u64,
    /// Object fault-ins issued (remote reads from the home's perspective).
    pub fault_ins: u64,
    /// Diffs sent to remote homes.
    pub diffs_sent: u64,
    /// Diffs applied at this node as home.
    pub diffs_applied: u64,
    /// Object requests served at this node as home.
    pub requests_served: u64,
    /// Requests redirected because this node is no longer the home.
    pub redirections_served: u64,
    /// Server-side `Busy` outcomes: requests or diffs that found the home
    /// copy leased to a live application view and were deferred (each retry
    /// that still finds the copy busy counts again).
    pub busy_responses: u64,
    /// Redirection hops experienced by this node's own requests.
    pub redirections_suffered: u64,
    /// Home migrations granted by this node (it was the old home).
    pub migrations_out: u64,
    /// Home migrations received by this node (it became the new home).
    pub migrations_in: u64,
    /// Home read faults recorded (first read at home per interval).
    pub home_reads: u64,
    /// Home write faults recorded (first write at home per interval).
    pub home_writes: u64,
    /// Exclusive home writes (positive feedback of the adaptive protocol).
    pub exclusive_home_writes: u64,
    /// Twins created.
    pub twins_created: u64,
    /// Total wire bytes of diffs sent.
    pub diff_bytes_sent: u64,
    /// Cached copies invalidated at acquires.
    pub invalidations: u64,
    /// Lock acquires performed by this node's application thread.
    pub lock_acquires: u64,
    /// Barrier phases completed by this node's application thread.
    pub barriers: u64,
    /// Release-time `DiffBatch` messages sent (each replaces its entry
    /// count of individual `DiffFlush` messages).
    pub batched_flushes: u64,
    /// Total diff entries carried inside those batches; `diffs_sent` still
    /// counts every entry, so `batch_entries / batched_flushes` is the mean
    /// batch size. In the absence of mid-flight home migrations,
    /// `diffs_sent - batch_entries` is exactly the flushes that went out as
    /// singleton `DiffFlush` messages; a redirected batch entry is re-sent
    /// individually, so with migrations the same diff can appear both as a
    /// batch entry and on the singleton wire path.
    pub batch_entries: u64,
    /// Home-migration decision telemetry (considered vs. taken decisions,
    /// migrate-backs, threshold trajectory).
    pub policy: PolicyTelemetry,
    /// Home re-elections arbitrated by this node (a candidate could not
    /// reach a home and this node, as the object's arbiter, elected a
    /// reachable replacement). Zero on lossless fabrics.
    pub elections: u64,
    /// Stale home copies this node demoted after learning of a
    /// strictly-newer home epoch — the fencing path of crash recovery.
    pub homes_fenced: u64,
}

impl ProtocolStats {
    /// Merge counters from another node.
    pub fn merge(&mut self, other: &ProtocolStats) {
        self.local_read_hits += other.local_read_hits;
        self.local_write_hits += other.local_write_hits;
        self.fault_ins += other.fault_ins;
        self.diffs_sent += other.diffs_sent;
        self.diffs_applied += other.diffs_applied;
        self.requests_served += other.requests_served;
        self.redirections_served += other.redirections_served;
        self.busy_responses += other.busy_responses;
        self.redirections_suffered += other.redirections_suffered;
        self.migrations_out += other.migrations_out;
        self.migrations_in += other.migrations_in;
        self.home_reads += other.home_reads;
        self.home_writes += other.home_writes;
        self.exclusive_home_writes += other.exclusive_home_writes;
        self.twins_created += other.twins_created;
        self.diff_bytes_sent += other.diff_bytes_sent;
        self.invalidations += other.invalidations;
        self.lock_acquires += other.lock_acquires;
        self.barriers += other.barriers;
        self.batched_flushes += other.batched_flushes;
        self.batch_entries += other.batch_entries;
        self.policy.merge(&other.policy);
        self.elections += other.elections;
        self.homes_fenced += other.homes_fenced;
    }

    /// Total home migrations in a merged record (each migration is counted
    /// once as `migrations_out` by the old home and once as `migrations_in`
    /// by the new home; this returns the out-count which equals the number
    /// of migration events).
    pub fn migrations(&self) -> u64 {
        self.migrations_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_records_decisions_and_threshold_trajectory() {
        let mut t = PolicyTelemetry::default();
        t.record_decision(false, false, 1.0);
        t.record_decision(true, false, 2.5);
        t.record_decision(true, true, 4.0);
        // Non-finite thresholds (NoMigration's "never") are not sampled but
        // still count as considered decisions.
        t.record_decision(false, false, f64::INFINITY);
        assert_eq!(t.decisions_considered, 4);
        assert_eq!(t.decisions_migrate, 2);
        assert_eq!(t.migrate_backs, 1);
        assert_eq!(t.threshold_samples, 3);
        assert!((t.mean_threshold() - 2.5).abs() < 1e-9);
        assert!((t.peak_threshold() - 4.0).abs() < 1e-9);

        let mut merged = PolicyTelemetry::default();
        merged.record_decision(true, true, 8.0);
        merged.merge(&t);
        assert_eq!(merged.decisions_considered, 5);
        assert_eq!(merged.migrate_backs, 2);
        assert!((merged.peak_threshold() - 8.0).abs() < 1e-9);
        assert_eq!(merged.threshold_samples, 4);
    }

    #[test]
    fn default_is_all_zero() {
        let s = ProtocolStats::default();
        assert_eq!(s.fault_ins, 0);
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ProtocolStats {
            fault_ins: 2,
            diffs_sent: 1,
            migrations_out: 1,
            batched_flushes: 1,
            batch_entries: 3,
            ..ProtocolStats::default()
        };
        let b = ProtocolStats {
            fault_ins: 3,
            redirections_served: 4,
            migrations_in: 1,
            batched_flushes: 2,
            batch_entries: 4,
            ..ProtocolStats::default()
        };
        a.merge(&b);
        assert_eq!(a.batched_flushes, 3);
        assert_eq!(a.batch_entries, 7);
        assert_eq!(a.fault_ins, 5);
        assert_eq!(a.diffs_sent, 1);
        assert_eq!(a.redirections_served, 4);
        assert_eq!(a.migrations_out, 1);
        assert_eq!(a.migrations_in, 1);
        assert_eq!(a.migrations(), 1);
    }
}
