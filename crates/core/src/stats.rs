//! Per-node protocol statistics.
//!
//! These complement the per-message network statistics of `dsm-net` with
//! protocol-level events: local hits vs faults, home accesses, migrations,
//! redirections and diff volume. The harness merges them across nodes into
//! the experiment report.

/// Protocol event counters for one node (or, after merging, a whole run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Reads served from a valid local copy (home or cached).
    pub local_read_hits: u64,
    /// Writes served by a valid local read-write copy.
    pub local_write_hits: u64,
    /// Object fault-ins issued (remote reads from the home's perspective).
    pub fault_ins: u64,
    /// Diffs sent to remote homes.
    pub diffs_sent: u64,
    /// Diffs applied at this node as home.
    pub diffs_applied: u64,
    /// Object requests served at this node as home.
    pub requests_served: u64,
    /// Requests redirected because this node is no longer the home.
    pub redirections_served: u64,
    /// Server-side `Busy` outcomes: requests or diffs that found the home
    /// copy leased to a live application view and were deferred (each retry
    /// that still finds the copy busy counts again).
    pub busy_responses: u64,
    /// Redirection hops experienced by this node's own requests.
    pub redirections_suffered: u64,
    /// Home migrations granted by this node (it was the old home).
    pub migrations_out: u64,
    /// Home migrations received by this node (it became the new home).
    pub migrations_in: u64,
    /// Home read faults recorded (first read at home per interval).
    pub home_reads: u64,
    /// Home write faults recorded (first write at home per interval).
    pub home_writes: u64,
    /// Exclusive home writes (positive feedback of the adaptive protocol).
    pub exclusive_home_writes: u64,
    /// Twins created.
    pub twins_created: u64,
    /// Total wire bytes of diffs sent.
    pub diff_bytes_sent: u64,
    /// Cached copies invalidated at acquires.
    pub invalidations: u64,
    /// Lock acquires performed by this node's application thread.
    pub lock_acquires: u64,
    /// Barrier phases completed by this node's application thread.
    pub barriers: u64,
    /// Release-time `DiffBatch` messages sent (each replaces its entry
    /// count of individual `DiffFlush` messages).
    pub batched_flushes: u64,
    /// Total diff entries carried inside those batches; `diffs_sent` still
    /// counts every entry, so `batch_entries / batched_flushes` is the mean
    /// batch size. In the absence of mid-flight home migrations,
    /// `diffs_sent - batch_entries` is exactly the flushes that went out as
    /// singleton `DiffFlush` messages; a redirected batch entry is re-sent
    /// individually, so with migrations the same diff can appear both as a
    /// batch entry and on the singleton wire path.
    pub batch_entries: u64,
}

impl ProtocolStats {
    /// Merge counters from another node.
    pub fn merge(&mut self, other: &ProtocolStats) {
        self.local_read_hits += other.local_read_hits;
        self.local_write_hits += other.local_write_hits;
        self.fault_ins += other.fault_ins;
        self.diffs_sent += other.diffs_sent;
        self.diffs_applied += other.diffs_applied;
        self.requests_served += other.requests_served;
        self.redirections_served += other.redirections_served;
        self.busy_responses += other.busy_responses;
        self.redirections_suffered += other.redirections_suffered;
        self.migrations_out += other.migrations_out;
        self.migrations_in += other.migrations_in;
        self.home_reads += other.home_reads;
        self.home_writes += other.home_writes;
        self.exclusive_home_writes += other.exclusive_home_writes;
        self.twins_created += other.twins_created;
        self.diff_bytes_sent += other.diff_bytes_sent;
        self.invalidations += other.invalidations;
        self.lock_acquires += other.lock_acquires;
        self.barriers += other.barriers;
        self.batched_flushes += other.batched_flushes;
        self.batch_entries += other.batch_entries;
    }

    /// Total home migrations in a merged record (each migration is counted
    /// once as `migrations_out` by the old home and once as `migrations_in`
    /// by the new home; this returns the out-count which equals the number
    /// of migration events).
    pub fn migrations(&self) -> u64 {
        self.migrations_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = ProtocolStats::default();
        assert_eq!(s.fault_ins, 0);
        assert_eq!(s.migrations(), 0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ProtocolStats {
            fault_ins: 2,
            diffs_sent: 1,
            migrations_out: 1,
            batched_flushes: 1,
            batch_entries: 3,
            ..ProtocolStats::default()
        };
        let b = ProtocolStats {
            fault_ins: 3,
            redirections_served: 4,
            migrations_in: 1,
            batched_flushes: 2,
            batch_entries: 4,
            ..ProtocolStats::default()
        };
        a.merge(&b);
        assert_eq!(a.batched_flushes, 3);
        assert_eq!(a.batch_entries, 7);
        assert_eq!(a.fault_ins, 5);
        assert_eq!(a.diffs_sent, 1);
        assert_eq!(a.redirections_served, 4);
        assert_eq!(a.migrations_out, 1);
        assert_eq!(a.migrations_in, 1);
        assert_eq!(a.migrations(), 1);
    }
}
