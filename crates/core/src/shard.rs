//! One lock stripe of the per-node protocol engine.
//!
//! An [`EngineShard`] owns the per-object protocol state — home copies,
//! cached copies, home beliefs, interval write sets and the statistics those
//! operations generate — for the subset of objects whose id hashes onto the
//! shard. The [`ProtocolEngine`](crate::engine::ProtocolEngine) facade keeps
//! `N` shards behind `N` independent mutexes, so protocol operations on
//! objects in different shards never contend on a shared lock.
//!
//! Every method here runs under exactly one shard mutex (held by the
//! facade); a shard never reaches into another shard or into the node-global
//! state, which is what makes the engine's locking trivially deadlock-free:
//! no code path in the workspace ever holds two engine-internal locks at
//! once.

use crate::config::{NotificationMechanism, ProtocolConfig};
use crate::engine::{AccessPlan, DiffOutcome, FlushPlan, MigrationGrant, ObjectRequestOutcome};
use crate::migration::MigrationState;
use crate::policy::PolicyInputs;
use crate::stats::ProtocolStats;
use dsm_objspace::{
    new_store, AccessState, Diff, NodeId, ObjectData, ObjectId, ObjectRegistry, ObjectStore, Twin,
    Version,
};
use dsm_util::{RwReadGuard, RwWriteGuard};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A home copy plus its protocol metadata.
#[derive(Debug, Clone)]
struct HomeEntry {
    data: ObjectStore,
    version: Version,
    state: AccessState,
    migration: MigrationState,
}

/// A cached (non-home) copy.
#[derive(Debug, Clone)]
struct CacheEntry {
    data: ObjectStore,
    version: Version,
    state: AccessState,
    twin: Option<Twin>,
}

/// A node's belief about an object's current home: the node and the home
/// epoch it became home at. Beliefs only ever move forward in epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HomeBelief {
    node: NodeId,
    epoch: u32,
}

/// Per-object protocol state for one lock stripe of the engine. See the
/// module documentation.
#[derive(Debug)]
pub(crate) struct EngineShard {
    node: NodeId,
    num_nodes: usize,
    config: ProtocolConfig,
    registry: Arc<ObjectRegistry>,
    homes: HashMap<ObjectId, HomeEntry>,
    caches: HashMap<ObjectId, CacheEntry>,
    known_home: HashMap<ObjectId, HomeBelief>,
    /// Cached objects written (and twinned) in the current interval.
    dirty: HashSet<ObjectId>,
    /// Home objects written in the current interval (version bump at release).
    home_written: HashSet<ObjectId>,
    /// Protocol statistics for events handled by this shard.
    pub(crate) stats: ProtocolStats,
}

impl EngineShard {
    /// Create one shard for `node`, seeding home copies (zero-filled) for
    /// every registered object that hashes onto this shard *and* whose
    /// initial home is this node. `belongs` decides shard membership — the
    /// facade passes its `ObjectId -> shard index` mapping down.
    pub(crate) fn new(
        node: NodeId,
        num_nodes: usize,
        config: ProtocolConfig,
        registry: Arc<ObjectRegistry>,
        belongs: impl Fn(ObjectId) -> bool,
    ) -> Self {
        let mut homes = HashMap::new();
        for desc in registry.iter() {
            if belongs(desc.id) && desc.initial_home(num_nodes) == node {
                homes.insert(
                    desc.id,
                    HomeEntry {
                        data: new_store(ObjectData::zeroed(desc.size_bytes)),
                        version: Version::INITIAL,
                        state: AccessState::Invalid,
                        migration: MigrationState::new(),
                    },
                );
            }
        }
        EngineShard {
            node,
            num_nodes,
            config,
            registry,
            homes,
            caches: HashMap::new(),
            known_home: HashMap::new(),
            dirty: HashSet::new(),
            home_written: HashSet::new(),
            stats: ProtocolStats::default(),
        }
    }

    /// Whether this node currently is the home of `obj`.
    pub(crate) fn is_home(&self, obj: ObjectId) -> bool {
        self.homes.contains_key(&obj)
    }

    /// The node this shard currently believes to be the home of `obj`.
    pub(crate) fn home_hint(&self, obj: ObjectId) -> NodeId {
        if self.is_home(obj) {
            return self.node;
        }
        match self.known_home.get(&obj) {
            Some(belief) => belief.node,
            // Fall back to the well-known initial assignment.
            None => self.registry.expect(obj).initial_home(self.num_nodes),
        }
    }

    /// The home epoch this node believes `obj`'s current home is at.
    pub(crate) fn home_epoch(&self, obj: ObjectId) -> u32 {
        if let Some(entry) = self.homes.get(&obj) {
            return entry.migration.migrations;
        }
        self.known_home.get(&obj).map_or(0, |belief| belief.epoch)
    }

    /// The manager node of `obj` under the home-manager notification
    /// mechanism: its well-known initial home.
    pub(crate) fn manager_of(&self, obj: ObjectId) -> NodeId {
        self.registry.expect(obj).initial_home(self.num_nodes)
    }

    /// Seed the home copy of `obj` with deterministic initial contents.
    ///
    /// # Panics
    /// Panics if the payload size does not match the registered descriptor,
    /// or if the object has already been written through the protocol.
    pub(crate) fn bootstrap_object(&mut self, obj: ObjectId, data: ObjectData) {
        let desc = self.registry.expect(obj);
        assert_eq!(
            data.len(),
            desc.size_bytes,
            "bootstrap payload size mismatch for {obj}"
        );
        if let Some(entry) = self.homes.get_mut(&obj) {
            assert_eq!(
                entry.version,
                Version::INITIAL,
                "bootstrap after the protocol already ran on {obj}"
            );
            *entry.data.write() = data;
        }
    }

    // ------------------------------------------------------------------
    // Application side
    // ------------------------------------------------------------------

    /// Open a new interval for this shard's objects: home-access traps are
    /// re-armed and cached non-home copies conservatively invalidated (own
    /// unflushed writes preserved).
    pub(crate) fn begin_interval(&mut self) {
        for entry in self.homes.values_mut() {
            entry.state = AccessState::Invalid;
        }
        let cache_immutable = self.config.cache_immutable_objects;
        let registry = Arc::clone(&self.registry);
        for (obj, entry) in self.caches.iter_mut() {
            if self.dirty.contains(obj) {
                // Our own writes from an interval that has not released yet;
                // never discard them.
                continue;
            }
            if cache_immutable && registry.expect(*obj).is_immutable() {
                continue;
            }
            if entry.state != AccessState::Invalid {
                entry.state = AccessState::Invalid;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Plan a read of `obj` by the local application thread.
    pub(crate) fn plan_read(&mut self, obj: ObjectId) -> AccessPlan {
        if let Some(entry) = self.homes.get_mut(&obj) {
            if entry.state.read_faults() {
                self.stats.home_reads += 1;
                entry.state = entry.state.after_read();
            } else {
                self.stats.local_read_hits += 1;
            }
            return AccessPlan::LocalHit;
        }
        if let Some(entry) = self.caches.get(&obj) {
            if !entry.state.read_faults() {
                self.stats.local_read_hits += 1;
                return AccessPlan::LocalHit;
            }
        }
        self.stats.fault_ins += 1;
        AccessPlan::Fetch {
            target: self.home_hint(obj),
        }
    }

    /// Plan a write of `obj` by the local application thread.
    pub(crate) fn plan_write(&mut self, obj: ObjectId) -> AccessPlan {
        if let Some(entry) = self.homes.get_mut(&obj) {
            if entry.state.write_faults() {
                self.stats.home_writes += 1;
                let exclusive = entry.migration.record_home_write();
                if exclusive {
                    self.stats.exclusive_home_writes += 1;
                }
                // `config` and `homes` are disjoint fields, so the policy
                // borrow coexists with the entry borrow — no Arc clone on
                // the home-write fast path.
                self.config
                    .policy_for(obj)
                    .on_home_write(&mut entry.migration, exclusive);
                entry.state = entry.state.after_write();
                self.home_written.insert(obj);
            } else {
                self.stats.local_write_hits += 1;
            }
            return AccessPlan::LocalHit;
        }
        if let Some(entry) = self.caches.get_mut(&obj) {
            match entry.state {
                AccessState::ReadWrite => {
                    self.stats.local_write_hits += 1;
                    return AccessPlan::LocalHit;
                }
                AccessState::ReadOnly => {
                    if entry.twin.is_none() {
                        entry.twin = Some(Twin::capture(&entry.data.read()));
                        self.stats.twins_created += 1;
                    }
                    entry.state = AccessState::ReadWrite;
                    self.dirty.insert(obj);
                    return AccessPlan::LocalHit;
                }
                AccessState::Invalid => {}
            }
        }
        self.stats.fault_ins += 1;
        AccessPlan::Fetch {
            target: self.home_hint(obj),
        }
    }

    /// Lease the payload store of a locally *readable* copy of `obj`.
    ///
    /// # Panics
    /// Panics if the object is not locally readable.
    pub(crate) fn lease_read(&self, obj: ObjectId) -> ObjectStore {
        if let Some(entry) = self.homes.get(&obj) {
            return Arc::clone(&entry.data);
        }
        if let Some(entry) = self.caches.get(&obj) {
            assert!(
                entry.state != AccessState::Invalid,
                "read lease of invalid cached copy of {obj}; fault it in first"
            );
            return Arc::clone(&entry.data);
        }
        panic!(
            "read lease of {obj} which is neither homed nor cached on {}",
            self.node
        );
    }

    /// Lease the payload store of a locally *writable* copy of `obj`.
    ///
    /// # Panics
    /// Panics if the object is not locally writable.
    pub(crate) fn lease_write(&self, obj: ObjectId) -> ObjectStore {
        if let Some(entry) = self.homes.get(&obj) {
            assert!(
                entry.state == AccessState::ReadWrite,
                "write lease of home copy of {obj} without a write plan"
            );
            return Arc::clone(&entry.data);
        }
        if let Some(entry) = self.caches.get(&obj) {
            assert!(
                entry.state == AccessState::ReadWrite,
                "write lease of cached copy of {obj} without a write plan"
            );
            return Arc::clone(&entry.data);
        }
        panic!(
            "write lease of {obj} which is neither homed nor cached on {}",
            self.node
        );
    }

    /// Atomically check readability and take the payload read guard under
    /// the shard lock. Returns `None` when the copy is no longer readable
    /// (e.g. the home migrated away between the access plan and the lease) —
    /// the caller must re-plan.
    pub(crate) fn try_lease_read(&self, obj: ObjectId) -> Option<RwReadGuard<ObjectData>> {
        if let Some(entry) = self.homes.get(&obj) {
            return entry.data.try_read();
        }
        if let Some(entry) = self.caches.get(&obj) {
            if entry.state != AccessState::Invalid {
                return entry.data.try_read();
            }
        }
        None
    }

    /// Atomically check writability and take the payload write guard under
    /// the shard lock. Returns `None` when the copy is no longer writable —
    /// the caller must re-plan (which re-arms the twin/diff bookkeeping).
    pub(crate) fn try_lease_write(&self, obj: ObjectId) -> Option<RwWriteGuard<ObjectData>> {
        if let Some(entry) = self.homes.get(&obj) {
            if entry.state == AccessState::ReadWrite {
                return entry.data.try_write();
            }
            return None;
        }
        if let Some(entry) = self.caches.get(&obj) {
            if entry.state == AccessState::ReadWrite {
                return entry.data.try_write();
            }
        }
        None
    }

    /// Install the payload of a completed fault-in. If `migration` is
    /// present the home has migrated to this node and the payload becomes
    /// the home copy.
    pub(crate) fn install_object(
        &mut self,
        obj: ObjectId,
        data: Vec<u8>,
        version: Version,
        migration: Option<MigrationGrant>,
    ) {
        let desc = self.registry.expect(obj);
        assert_eq!(
            data.len(),
            desc.size_bytes,
            "fault-in payload size mismatch for {obj}"
        );
        if self.is_home(obj) {
            // A late or duplicated reply (possible under lossy fabrics, e.g.
            // after this node promoted itself in a home re-election) must
            // never clobber the live home copy.
            return;
        }
        let data = new_store(ObjectData::from_bytes(data));
        match migration {
            Some(grant) => {
                let epoch = grant.epoch();
                self.caches.remove(&obj);
                self.dirty.remove(&obj);
                self.homes.insert(
                    obj,
                    HomeEntry {
                        data,
                        version,
                        state: AccessState::ReadOnly,
                        migration: grant.state,
                    },
                );
                self.known_home.insert(
                    obj,
                    HomeBelief {
                        node: self.node,
                        epoch,
                    },
                );
                self.stats.migrations_in += 1;
            }
            None => {
                self.caches.insert(
                    obj,
                    CacheEntry {
                        data,
                        version,
                        state: AccessState::ReadOnly,
                        twin: None,
                    },
                );
            }
        }
    }

    /// Record that a fault-in or flush issued by this node was redirected,
    /// with the redirector claiming `new_home` became home at `epoch`.
    ///
    /// The hint is only adopted when it is strictly newer than this node's
    /// own belief and does not point at this node itself — stale backward
    /// hints must never overwrite a correct forward pointer (they would
    /// create redirect cycles). Returns whether the hint was adopted.
    pub(crate) fn note_redirect(&mut self, obj: ObjectId, new_home: NodeId, epoch: u32) -> bool {
        self.stats.redirections_suffered += 1;
        if new_home == self.node || self.is_home(obj) {
            return false;
        }
        let believed = self.home_epoch(obj);
        let known = self.known_home.contains_key(&obj);
        if epoch > believed || (!known && new_home != self.home_hint(obj)) {
            self.known_home.insert(
                obj,
                HomeBelief {
                    node: new_home,
                    epoch,
                },
            );
            return true;
        }
        false
    }

    /// Compute the diffs this shard must propagate to remote homes before
    /// the current interval can release. Objects whose writes turn out to be
    /// no-ops are cleaned up immediately and produce no flush.
    pub(crate) fn prepare_release(&mut self, plans: &mut Vec<FlushPlan>) {
        let dirty: Vec<ObjectId> = self.dirty.iter().copied().collect();
        for obj in dirty {
            let entry = self
                .caches
                .get_mut(&obj)
                .expect("dirty object must have a cached copy");
            let twin = entry.twin.as_ref().expect("dirty object must have a twin");
            let diff = twin.diff_against(&entry.data.read());
            if diff.is_empty() {
                entry.twin = None;
                entry.state = AccessState::ReadOnly;
                self.dirty.remove(&obj);
                continue;
            }
            self.stats.diffs_sent += 1;
            self.stats.diff_bytes_sent += diff.wire_bytes() as u64;
            plans.push(FlushPlan {
                obj,
                target: self.home_hint(obj),
                diff,
            });
        }
    }

    /// Record the acknowledgement of one flushed diff.
    pub(crate) fn complete_flush(&mut self, obj: ObjectId, new_version: Version) {
        if let Some(entry) = self.caches.get_mut(&obj) {
            entry.version = new_version;
            entry.twin = None;
        }
        self.dirty.remove(&obj);
    }

    /// Close the current interval for this shard's objects after all flushes
    /// are acknowledged.
    ///
    /// # Panics
    /// Panics if some flushed diff was never acknowledged (runtime bug).
    pub(crate) fn finish_release(&mut self) {
        assert!(
            self.dirty.is_empty(),
            "finish_release with unflushed dirty objects: {:?}",
            self.dirty
        );
        for obj in std::mem::take(&mut self.home_written) {
            if let Some(entry) = self.homes.get_mut(&obj) {
                entry.version = entry.version.next();
            }
        }
        for entry in self.homes.values_mut() {
            entry.state = entry.state.after_release();
        }
        for entry in self.caches.values_mut() {
            entry.state = entry.state.after_release();
        }
    }

    // ------------------------------------------------------------------
    // Server side
    // ------------------------------------------------------------------

    /// The hint and epoch to put into a redirect reply from this (non-home)
    /// node.
    fn redirect_hint(&self, obj: ObjectId) -> (NodeId, u32) {
        match self.config.notification {
            NotificationMechanism::HomeManager if self.node != self.manager_of(obj) => {
                // Routing-only pointer to the manager: epoch 0 so the
                // requester retries there without adopting it as the home.
                (self.manager_of(obj), 0)
            }
            _ => (self.home_hint(obj), self.home_epoch(obj)),
        }
    }

    /// Handle an object fault-in request arriving from `requester`.
    ///
    /// Returns [`ObjectRequestOutcome::Busy`] — without consuming the
    /// request — when the home copy is leased to a live application view;
    /// the server defers and retries.
    pub(crate) fn handle_object_request(
        &mut self,
        obj: ObjectId,
        requester: NodeId,
        for_write: bool,
        redirections: u32,
    ) -> ObjectRequestOutcome {
        if !self.is_home(obj) {
            self.stats.redirections_served += 1;
            let (hint, epoch) = self.redirect_hint(obj);
            return ObjectRequestOutcome::Redirect { hint, epoch };
        }
        let desc_size = self.registry.expect(obj).size_bytes as u64;
        let half_peak = self.config.half_peak_length();
        let policy = self.config.policy_for(obj);
        let notification = self.config.notification;
        let num_nodes = self.num_nodes;
        let node = self.node;
        let manager = self.manager_of(obj);
        let entry = self.homes.get_mut(&obj).expect("checked is_home above");

        // Copy the payload out under a try-lock: if the application holds a
        // write view right now, defer instead of blocking the server.
        let data = match entry.data.try_read() {
            Some(guard) => guard.bytes().to_vec(),
            None => {
                self.stats.busy_responses += 1;
                return ObjectRequestOutcome::Busy;
            }
        };
        self.stats.requests_served += 1;
        entry.migration.record_redirections(redirections);
        if redirections > 0 {
            policy.on_redirect(&mut entry.migration, redirections);
        }

        // The decision point: every remote request reaching the home is one
        // considered policy decision (telemetry), and the policy's reported
        // threshold at that instant feeds the threshold trajectory.
        let mut migrate = false;
        let mut carried_threshold = f64::INFINITY;
        if requester != node {
            let inputs = PolicyInputs {
                state: &entry.migration,
                requester,
                for_write,
                object_bytes: desc_size,
                half_peak_len: half_peak,
            };
            migrate = policy.decide(&inputs).is_migrate();
            carried_threshold = policy.current_threshold(&inputs);
            let migrate_back = migrate && entry.migration.prev_home == Some(requester);
            self.stats
                .policy
                .record_decision(migrate, migrate_back, carried_threshold);
        }
        let version = entry.version;
        if !migrate {
            return ObjectRequestOutcome::Reply {
                data,
                version,
                migration: None,
                notify: Vec::new(),
            };
        }

        // Perform the migration: the home entry becomes an ordinary cached
        // copy here, the migration bookkeeping ships to the new home, and a
        // forwarding pointer (stamped with the new epoch) is left behind.
        let mut shipped = entry.migration.migrated(carried_threshold, Some(node));
        policy.on_migrate(&mut shipped);
        let grant = MigrationGrant { state: shipped };
        let new_epoch = grant.epoch();
        let old = self.homes.remove(&obj).expect("home entry present");
        self.caches.insert(
            obj,
            CacheEntry {
                data: old.data,
                version: old.version,
                state: AccessState::ReadOnly,
                twin: None,
            },
        );
        self.home_written.remove(&obj);
        self.known_home.insert(
            obj,
            HomeBelief {
                node: requester,
                epoch: new_epoch,
            },
        );
        self.stats.migrations_out += 1;

        let notify = match notification {
            NotificationMechanism::ForwardingPointer => Vec::new(),
            NotificationMechanism::HomeManager => {
                if manager == node || manager == requester {
                    Vec::new()
                } else {
                    vec![manager]
                }
            }
            NotificationMechanism::Broadcast => (0..num_nodes)
                .map(NodeId::from)
                .filter(|n| *n != node && *n != requester)
                .collect(),
        };

        ObjectRequestOutcome::Reply {
            data,
            version,
            migration: Some(grant),
            notify,
        }
    }

    /// Handle a diff arriving from `from`.
    ///
    /// Returns [`DiffOutcome::Busy`] — without consuming the diff — when the
    /// home copy is leased to a live application view.
    pub(crate) fn handle_diff(
        &mut self,
        obj: ObjectId,
        diff: &Diff,
        from: NodeId,
        redirections: u32,
    ) -> DiffOutcome {
        if !self.is_home(obj) {
            self.stats.redirections_served += 1;
            let (hint, epoch) = self.redirect_hint(obj);
            return DiffOutcome::Redirect { hint, epoch };
        }
        let policy = self.config.policy_for(obj);
        let entry = self.homes.get_mut(&obj).expect("checked is_home above");
        let Some(mut guard) = entry.data.try_write() else {
            self.stats.busy_responses += 1;
            return DiffOutcome::Busy;
        };
        entry.migration.record_redirections(redirections);
        if redirections > 0 {
            policy.on_redirect(&mut entry.migration, redirections);
        }
        diff.apply(&mut guard);
        drop(guard);
        entry.version = entry.version.next();
        let wire_bytes = diff.wire_bytes() as u64;
        entry.migration.record_remote_write(from, wire_bytes);
        policy.on_remote_write(&mut entry.migration, from, wire_bytes);
        self.stats.diffs_applied += 1;
        DiffOutcome::Applied {
            new_version: entry.version,
        }
    }

    /// Handle a new-home notification (broadcast, home-manager or fence
    /// mechanisms): adopt the announced home if it is newer than the local
    /// belief.
    ///
    /// If this node *is* the home but the notification carries a strictly
    /// newer epoch, the cluster re-elected the home while this node was
    /// unreachable: the stale home copy is demoted to an invalid cached
    /// copy (fencing). Unflushed home writes of the demoted interval are
    /// lost — the crash semantics the fault model documents.
    pub(crate) fn handle_home_notify(&mut self, obj: ObjectId, new_home: NodeId, epoch: u32) {
        if new_home == self.node {
            return;
        }
        if self.is_home(obj) {
            if epoch > self.home_epoch(obj) {
                let old = self.homes.remove(&obj).expect("checked is_home above");
                self.home_written.remove(&obj);
                self.caches.insert(
                    obj,
                    CacheEntry {
                        data: old.data,
                        version: old.version,
                        state: AccessState::Invalid,
                        twin: None,
                    },
                );
                self.known_home.insert(
                    obj,
                    HomeBelief {
                        node: new_home,
                        epoch,
                    },
                );
                self.stats.homes_fenced += 1;
            }
            return;
        }
        if epoch > self.home_epoch(obj) || !self.known_home.contains_key(&obj) {
            self.known_home.insert(
                obj,
                HomeBelief {
                    node: new_home,
                    epoch,
                },
            );
        }
    }

    /// Promote this node's local copy of `obj` to the home copy at the
    /// (strictly newer, election-strided) `epoch` — the winner's side of a
    /// home re-election. Returns false when there is no local copy to
    /// promote. The promoted copy starts a fresh migration history; its
    /// payload may be stale by up to the orphaned interval, which is the
    /// documented recovery semantics when a home crashes with unflushed
    /// state.
    pub(crate) fn promote_to_home(&mut self, obj: ObjectId, epoch: u32) -> bool {
        if self.is_home(obj) {
            return true;
        }
        let Some(cache) = self.caches.remove(&obj) else {
            return false;
        };
        self.dirty.remove(&obj);
        let mut migration = MigrationState::new();
        migration.migrations = epoch;
        self.homes.insert(
            obj,
            HomeEntry {
                data: cache.data,
                version: cache.version,
                state: AccessState::Invalid,
                migration,
            },
        );
        self.known_home.insert(
            obj,
            HomeBelief {
                node: self.node,
                epoch,
            },
        );
        true
    }

    /// Whether this node holds *any* local copy of `obj` (home or cached,
    /// valid or not) — the election criterion for a promotable candidate.
    pub(crate) fn has_copy(&self, obj: ObjectId) -> bool {
        self.is_home(obj) || self.caches.contains_key(&obj)
    }

    // ------------------------------------------------------------------
    // Introspection for tests and invariant checks
    // ------------------------------------------------------------------

    /// Objects currently homed in this shard (unsorted).
    pub(crate) fn homed_objects(&self, out: &mut Vec<ObjectId>) {
        out.extend(self.homes.keys().copied());
    }

    /// The migration bookkeeping of an object homed here, if any.
    pub(crate) fn migration_state(&self, obj: ObjectId) -> Option<MigrationState> {
        self.homes.get(&obj).map(|e| e.migration.clone())
    }

    /// The current version of the home copy of `obj`, if homed here.
    pub(crate) fn home_version(&self, obj: ObjectId) -> Option<Version> {
        self.homes.get(&obj).map(|e| e.version)
    }

    /// Snapshot of a home copy's bytes (tests and invariant checks).
    pub(crate) fn home_bytes(&self, obj: ObjectId) -> Option<Vec<u8>> {
        self.homes.get(&obj).map(|e| e.data.read().bytes().to_vec())
    }
}
