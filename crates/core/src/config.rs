//! Protocol configuration.
//!
//! The central knob is the home-migration **policy** — the independent
//! variable of every experiment in the paper. A policy is any
//! [`HomeMigrationPolicy`] trait object (see [`crate::policy`] for the
//! contract and the built-in set); [`ProtocolConfig`] carries one
//! cluster-wide default plus optional **per-object overrides**, so a single
//! cluster can run different policies on different objects.

use crate::migration::MigrationPolicy;
use crate::policy::{HomeMigrationPolicy, IntoMigrationPolicy, PolicyOverrides};
use dsm_model::{NetworkParams, SimDuration};
use dsm_objspace::ObjectId;
use std::sync::Arc;

/// How other nodes learn the new home location after a migration (§3.2 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NotificationMechanism {
    /// A forwarding pointer is left at the former home; requests reaching an
    /// obsolete home are answered with the current home location and the
    /// requester retries. This is the mechanism the paper adopts: no
    /// notification traffic at migration time, at the price of possible
    /// redirection accumulation.
    #[default]
    ForwardingPointer,
    /// The most up-to-date home location is recorded at a designated manager
    /// node (we use the object's *initial* home as its manager, which every
    /// node can compute). On migration the new home posts a notification to
    /// the manager; a node that misses asks the manager where the home is.
    HomeManager,
    /// On migration the new home broadcasts its location to all other nodes
    /// at the next opportunity. Until the broadcast is processed, stale
    /// requests are still redirected like the forwarding-pointer mechanism.
    Broadcast,
}

/// Complete configuration of the coherence protocol on every node.
#[derive(Debug, Clone)]
pub struct ProtocolConfig {
    /// The cluster-wide default home-migration **policy** (the independent
    /// variable of every experiment). Accepts anything implementing
    /// [`HomeMigrationPolicy`]; the paper's policies are described by the
    /// [`MigrationPolicy`] enum, which converts in
    /// (`config.with_migration(MigrationPolicy::adaptive())`). Objects
    /// listed in [`Self::policy_overrides`] use their own policy instead —
    /// resolution goes through [`Self::policy_for`].
    pub migration: Arc<dyn HomeMigrationPolicy>,
    /// Per-object policy overrides (empty by default; see
    /// [`Self::with_object_policy`]).
    pub policy_overrides: PolicyOverrides,
    /// New-home notification mechanism.
    pub notification: NotificationMechanism,
    /// Network parameters; used to derive the half-peak length `m_½` that
    /// enters the home access coefficient, and by the runtime for virtual
    /// time stamping.
    pub network: NetworkParams,
    /// Objects flagged immutable by the application (e.g. the TSP distance
    /// matrix) stay cached across acquires. This reproduces the GOS
    /// read-only object optimization of the paper's earlier system paper and
    /// keeps synchronization-heavy applications from drowning in fault-ins
    /// that the real system would not perform either.
    pub cache_immutable_objects: bool,
    /// Fixed protocol handling cost charged by the runtime for serving any
    /// request at a node (added on top of the Hockney message cost).
    pub handling_cost: SimDuration,
}

impl ProtocolConfig {
    /// Configuration used by the paper's headline experiments: adaptive
    /// threshold migration, forwarding pointers, Fast Ethernet.
    pub fn adaptive() -> Self {
        ProtocolConfig {
            migration: MigrationPolicy::adaptive().into_policy(),
            ..ProtocolConfig::no_migration()
        }
    }

    /// The `NoHM`/`NM` baseline: home migration disabled.
    pub fn no_migration() -> Self {
        let network = NetworkParams::fast_ethernet();
        ProtocolConfig {
            migration: MigrationPolicy::NoMigration.into_policy(),
            policy_overrides: PolicyOverrides::new(),
            notification: NotificationMechanism::ForwardingPointer,
            network,
            cache_immutable_objects: true,
            handling_cost: network.handling_cost(),
        }
    }

    /// The `FT` baseline with the given fixed threshold (the paper uses 1
    /// and 2).
    pub fn fixed_threshold(threshold: u32) -> Self {
        ProtocolConfig {
            migration: MigrationPolicy::fixed(threshold).into_policy(),
            ..ProtocolConfig::no_migration()
        }
    }

    /// Replace the network model (affects both virtual time and α).
    #[must_use]
    pub fn with_network(mut self, network: NetworkParams) -> Self {
        self.network = network;
        self.handling_cost = network.handling_cost();
        self
    }

    /// Replace the cluster-wide default migration policy. Accepts a
    /// [`MigrationPolicy`] description, a built-in policy value, or an
    /// `Arc<dyn HomeMigrationPolicy>`.
    #[must_use]
    pub fn with_migration(mut self, migration: impl IntoMigrationPolicy) -> Self {
        self.migration = migration.into_policy();
        self
    }

    /// Override the migration policy for one object: `obj` consults `policy`
    /// instead of the cluster-wide default.
    #[must_use]
    pub fn with_object_policy(mut self, obj: ObjectId, policy: impl IntoMigrationPolicy) -> Self {
        self.policy_overrides.set(obj, policy);
        self
    }

    /// Replace the notification mechanism.
    #[must_use]
    pub fn with_notification(mut self, notification: NotificationMechanism) -> Self {
        self.notification = notification;
        self
    }

    /// The policy governing `obj`: its override if one was registered, the
    /// cluster-wide default otherwise. Called on protocol fast paths, so the
    /// common no-overrides case skips the map probe entirely.
    pub fn policy_for(&self, obj: ObjectId) -> &Arc<dyn HomeMigrationPolicy> {
        if self.policy_overrides.is_empty() {
            return &self.migration;
        }
        self.policy_overrides.get(obj).unwrap_or(&self.migration)
    }

    /// Half-peak message length `m_½` of the configured network, in bytes.
    pub fn half_peak_length(&self) -> f64 {
        self.network.hockney.half_peak_length()
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::adaptive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_select_expected_policies() {
        assert_eq!(ProtocolConfig::no_migration().migration.label(), "NM");
        assert_eq!(ProtocolConfig::adaptive().migration.label(), "AT");
        assert_eq!(ProtocolConfig::fixed_threshold(2).migration.label(), "FT2");
        assert_eq!(ProtocolConfig::default().migration.label(), "AT");
    }

    #[test]
    fn default_notification_is_forwarding_pointer() {
        assert_eq!(
            ProtocolConfig::default().notification,
            NotificationMechanism::ForwardingPointer
        );
        assert_eq!(
            NotificationMechanism::default(),
            NotificationMechanism::ForwardingPointer
        );
    }

    #[test]
    fn builders_replace_fields() {
        let cfg = ProtocolConfig::adaptive()
            .with_network(NetworkParams::myrinet())
            .with_notification(NotificationMechanism::Broadcast)
            .with_migration(MigrationPolicy::fixed(3));
        assert_eq!(cfg.network, NetworkParams::myrinet());
        assert_eq!(cfg.notification, NotificationMechanism::Broadcast);
        assert_eq!(cfg.migration.label(), "FT3");
        assert!(cfg.half_peak_length() > 0.0);
    }

    #[test]
    fn object_policies_override_the_default() {
        let special = ObjectId::derive("cfg.special", 0);
        let plain = ObjectId::derive("cfg.plain", 0);
        let cfg =
            ProtocolConfig::no_migration().with_object_policy(special, MigrationPolicy::adaptive());
        assert_eq!(cfg.policy_for(special).label(), "AT");
        assert_eq!(cfg.policy_for(plain).label(), "NM");
        assert_eq!(cfg.policy_overrides.len(), 1);
    }
}
