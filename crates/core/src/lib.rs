//! # dsm-core — the home-based coherence protocol with adaptive home migration
//!
//! This crate is the reproduction of the paper's contribution: a home-based
//! lazy-release-consistency (HLRC) cache coherence protocol for a Global
//! Object Space, extended with **home migration** driven by a **per-object
//! adaptive threshold** (Fang, Wang, Zhu, Lau — IEEE CLUSTER 2004).
//!
//! ## Protocol overview
//!
//! Every shared object has a *home* node. The home copy is always valid:
//! accesses at the home never communicate, while a non-home node must
//! *fault-in* the object from the home before accessing it and must
//! propagate a *diff* of its writes back to the home when it releases a lock
//! or reaches a barrier (multiple-writer support through twins and diffs).
//! The memory model is the Java-consistency variant of LRC used by the
//! paper's distributed JVM: at every acquire (and barrier) a node
//! conservatively invalidates its cached non-home copies, so each critical
//! section that accesses a remote object costs one object fault-in and — if
//! it wrote — one diff propagation.
//!
//! ## Home migration
//!
//! If an object is repeatedly written by a single non-home node (the
//! *single-writer pattern*), migrating its home to that node converts the
//! per-interval fault-in + diff pair into purely local accesses. Migration is
//! not free: other nodes still address the old home and must be redirected
//! (forwarding-pointer mechanism), so migrating on a *transient*
//! single-writer pattern only adds overhead.
//!
//! The paper's policy keeps, per object, a threshold `T` on the number of
//! *consecutive remote writes* `C` from one node; when `C ≥ T` and that node
//! faults the object again, the home migrates to it. `T` adapts at run time:
//!
//! ```text
//! T_i = max( T_{i-1} + λ·(R_i − α·E_i), T_init )      T_init = 1, λ = 1
//! ```
//!
//! where, since the previous migration, `R_i` counts redirected requests
//! (negative feedback — migration cost) and `E_i` counts exclusive home
//! writes (positive feedback — migration benefit), weighted by the *home
//! access coefficient* `α ≈ 2 + (o + d)/m_½` (Appendix A) because one
//! eliminated fault-in/diff pair is worth more than one redirection.
//!
//! ## Writing a migration policy
//!
//! The migration rule is an open extension point: implement
//! [`policy::HomeMigrationPolicy`] and hand the value to
//! `ClusterBuilder::migration` (cluster-wide) or
//! `ClusterBuilder::object_policy` (one object). The contract, in brief —
//! the full version lives in the [`policy`] module docs:
//!
//! * **The engine owns the observation state.** Every protocol event is
//!   recorded into the object's [`MigrationState`] (consecutive remote
//!   writes, redirection/exclusive-write feedback, diff-size history,
//!   previous home) *before* the policy's matching hook
//!   (`on_remote_write`, `on_home_write`, `on_redirect`) runs. The engine
//!   also performs the migration epoch reset and ships the state to the new
//!   home inside the grant.
//! * **The policy owns its configuration and the scratch.** Policy values
//!   are shared `Send + Sync` objects consulted by every shard without
//!   locks, so they must be immutable after construction; per-object state
//!   a policy needs goes into the [`migration::PolicyScratch`] embedded in
//!   `MigrationState`, which only the hooks mutate.
//! * **Decisions must be deterministic.** `decide` is a pure function of
//!   [`policy::PolicyInputs`] (state + requester + cost-model terms); no
//!   randomness, clocks or interior mutability — the seeded equivalence
//!   and replay suites assert bit-identical decisions across runs.
//! * **Telemetry is free.** Every considered decision, taken migration,
//!   migrate-back and finite `current_threshold` sample flows into
//!   [`stats::PolicyTelemetry`], visible per run through `stats()` and the
//!   runtime's `ExecutionReport`.
//!
//! ## Crate layout
//!
//! * [`config`] — protocol configuration (migration policy + per-object
//!   overrides, notification mechanism, coefficients).
//! * [`messages`] — the wire protocol between nodes.
//! * [`policy`] — the pluggable policy API: the `HomeMigrationPolicy`
//!   trait, the built-in impls (`NoMigrationPolicy`, `FixedThresholdPolicy`
//!   (FT), `AdaptiveThresholdPolicy` (AT, the contribution), JUMP-style
//!   `MigrateOnRequestPolicy`, Jackal-style `LazyFlushingPolicy`), the
//!   beyond-the-paper `HysteresisPolicy` and `EwmaWriteRatioPolicy`, and
//!   per-object `PolicyOverrides`.
//! * [`migration`] — the engine-owned per-object observation state
//!   (`MigrationState`) and the [`MigrationPolicy`] description enum, whose
//!   decision methods are kept as the frozen pre-refactor spec.
//! * [`sync`] — distributed lock and barrier managers (the synchronization
//!   substrate that delimits intervals).
//! * [`engine`] — the per-node protocol engine gluing it all together: a
//!   lock-striped facade over per-object shards ([`shard`], private) and the
//!   node-global synchronization state ([`global`], private), so protocol
//!   serving scales with cores instead of serializing on one engine mutex.
//! * [`stats`] — per-node protocol statistics, including the policy
//!   decision telemetry.
//!
//! [`shard`]: engine::ProtocolEngine#sharded-locking
//! [`global`]: engine::ProtocolEngine#sharded-locking

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
mod global;
pub mod messages;
pub mod migration;
pub mod policy;
mod shard;
pub mod stats;
pub mod sync;

pub use config::{NotificationMechanism, ProtocolConfig};
pub use engine::{
    group_flush_plans, AccessPlan, DiffOutcome, FlushBatch, FlushPlan, MigrationGrant,
    ObjectRequestOutcome, ProtocolEngine, DEFAULT_ENGINE_SHARDS, ELECTION_EPOCH_STRIDE,
};
pub use messages::{
    DiffBatchEntry, DiffBatchResult, DiffEntryStatus, ProtocolMsg, ReqId,
    DIFF_BATCH_ENTRY_HEADER_BYTES,
};
pub use migration::{MigrationPolicy, MigrationState, PolicyScratch};
pub use policy::{
    AdaptiveThresholdPolicy, Decision, EwmaWriteRatioPolicy, FixedThresholdPolicy,
    HomeMigrationPolicy, HysteresisPolicy, IntoMigrationPolicy, LazyFlushingPolicy,
    MigrateOnRequestPolicy, NoMigrationPolicy, PolicyInputs, PolicyOverrides,
};
pub use stats::{PolicyTelemetry, ProtocolStats};
pub use sync::{BarrierOutcome, LockAcquireOutcome, LockReleaseOutcome};
