//! # dsm-core — the home-based coherence protocol with adaptive home migration
//!
//! This crate is the reproduction of the paper's contribution: a home-based
//! lazy-release-consistency (HLRC) cache coherence protocol for a Global
//! Object Space, extended with **home migration** driven by a **per-object
//! adaptive threshold** (Fang, Wang, Zhu, Lau — IEEE CLUSTER 2004).
//!
//! ## Protocol overview
//!
//! Every shared object has a *home* node. The home copy is always valid:
//! accesses at the home never communicate, while a non-home node must
//! *fault-in* the object from the home before accessing it and must
//! propagate a *diff* of its writes back to the home when it releases a lock
//! or reaches a barrier (multiple-writer support through twins and diffs).
//! The memory model is the Java-consistency variant of LRC used by the
//! paper's distributed JVM: at every acquire (and barrier) a node
//! conservatively invalidates its cached non-home copies, so each critical
//! section that accesses a remote object costs one object fault-in and — if
//! it wrote — one diff propagation.
//!
//! ## Home migration
//!
//! If an object is repeatedly written by a single non-home node (the
//! *single-writer pattern*), migrating its home to that node converts the
//! per-interval fault-in + diff pair into purely local accesses. Migration is
//! not free: other nodes still address the old home and must be redirected
//! (forwarding-pointer mechanism), so migrating on a *transient*
//! single-writer pattern only adds overhead.
//!
//! The paper's policy keeps, per object, a threshold `T` on the number of
//! *consecutive remote writes* `C` from one node; when `C ≥ T` and that node
//! faults the object again, the home migrates to it. `T` adapts at run time:
//!
//! ```text
//! T_i = max( T_{i-1} + λ·(R_i − α·E_i), T_init )      T_init = 1, λ = 1
//! ```
//!
//! where, since the previous migration, `R_i` counts redirected requests
//! (negative feedback — migration cost) and `E_i` counts exclusive home
//! writes (positive feedback — migration benefit), weighted by the *home
//! access coefficient* `α ≈ 2 + (o + d)/m_½` (Appendix A) because one
//! eliminated fault-in/diff pair is worth more than one redirection.
//!
//! ## Crate layout
//!
//! * [`config`] — protocol configuration (migration policy, notification
//!   mechanism, coefficients).
//! * [`messages`] — the wire protocol between nodes.
//! * [`migration`] — the migration policies: `NoMigration`, `FixedThreshold`
//!   (FT), `AdaptiveThreshold` (AT, the contribution), plus the JUMP-style
//!   `MigrateOnRequest` and Jackal-style `LazyFlushing` baselines from the
//!   related-work section.
//! * [`sync`] — distributed lock and barrier managers (the synchronization
//!   substrate that delimits intervals).
//! * [`engine`] — the per-node protocol engine gluing it all together: a
//!   lock-striped facade over per-object shards ([`shard`], private) and the
//!   node-global synchronization state ([`global`], private), so protocol
//!   serving scales with cores instead of serializing on one engine mutex.
//! * [`stats`] — per-node protocol statistics.
//!
//! [`shard`]: engine::ProtocolEngine#sharded-locking
//! [`global`]: engine::ProtocolEngine#sharded-locking

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
mod global;
pub mod messages;
pub mod migration;
mod shard;
pub mod stats;
pub mod sync;

pub use config::{NotificationMechanism, ProtocolConfig};
pub use engine::{
    group_flush_plans, AccessPlan, DiffOutcome, FlushBatch, FlushPlan, MigrationGrant,
    ObjectRequestOutcome, ProtocolEngine, DEFAULT_ENGINE_SHARDS,
};
pub use messages::{
    DiffBatchEntry, DiffBatchResult, DiffEntryStatus, ProtocolMsg, ReqId,
    DIFF_BATCH_ENTRY_HEADER_BYTES,
};
pub use migration::{MigrationPolicy, MigrationState};
pub use stats::ProtocolStats;
pub use sync::{BarrierOutcome, LockAcquireOutcome, LockReleaseOutcome};
