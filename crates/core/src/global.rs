//! Node-global protocol state, isolated behind its own small lock.
//!
//! Everything in the engine that is *not* keyed by an `ObjectId` lives here:
//! the distributed lock and barrier managers (only meaningful on the manager
//! node) and the node-level synchronization counters. Keeping this state out
//! of the object shards means a lock acquire or barrier arrival never
//! contends with object requests, and an object fault-in never contends with
//! synchronization traffic.
//!
//! The global lock is a leaf lock like the shard locks: no code path takes
//! it while holding a shard lock or vice versa, so the engine's internal
//! locking cannot deadlock.

use crate::messages::ReqId;
use crate::sync::{
    BarrierManager, BarrierOutcome, LockAcquireOutcome, LockManager, LockReleaseOutcome,
};
use dsm_objspace::{BarrierId, LockId, NodeId};

/// Node-global (non-object) engine state: synchronization managers and the
/// counters they feed. See the module documentation.
#[derive(Debug)]
pub(crate) struct NodeGlobals {
    locks: LockManager,
    barriers: BarrierManager,
    /// Lock acquires performed by this node's application thread.
    pub(crate) lock_acquires: u64,
    /// Barrier phases completed by this node's application thread.
    pub(crate) barriers_crossed: u64,
    /// `DiffBatch` messages sent by this node's application thread at
    /// release time (a node-level event, like the synchronization counters).
    pub(crate) batched_flushes: u64,
    /// Total flush entries carried by those batches.
    pub(crate) batch_entries: u64,
}

impl NodeGlobals {
    /// Fresh global state for a cluster of `num_nodes` nodes.
    pub(crate) fn new(num_nodes: usize) -> Self {
        NodeGlobals {
            locks: LockManager::new(),
            barriers: BarrierManager::new(num_nodes),
            lock_acquires: 0,
            barriers_crossed: 0,
            batched_flushes: 0,
            batch_entries: 0,
        }
    }

    /// Manager-side lock acquire.
    pub(crate) fn lock_acquire(
        &mut self,
        lock: LockId,
        requester: NodeId,
        req: ReqId,
    ) -> LockAcquireOutcome {
        self.locks.acquire(lock, requester, req)
    }

    /// Manager-side lock release.
    pub(crate) fn lock_release(&mut self, lock: LockId, holder: NodeId) -> LockReleaseOutcome {
        self.locks.release(lock, holder)
    }

    /// Manager-side barrier arrival.
    pub(crate) fn barrier_arrive(
        &mut self,
        barrier: BarrierId,
        node: NodeId,
        req: ReqId,
    ) -> BarrierOutcome {
        self.barriers.arrive(barrier, node, req)
    }
}
