//! The per-node protocol engine.
//!
//! One [`ProtocolEngine`] instance lives on every simulated cluster node. It
//! owns that node's home copies, cached copies, migration bookkeeping and
//! synchronization-manager state, and it is driven from two sides:
//!
//! * the **application side** (the node's application thread, through the
//!   runtime's `NodeCtx`): planning reads and writes, leasing object stores
//!   for zero-copy views, installing fetched objects, preparing and
//!   finishing releases, opening intervals;
//! * the **server side** (the node's protocol server thread): handling
//!   object requests, diffs, notifications and synchronization messages
//!   arriving from other nodes.
//!
//! The engine is deliberately transport-agnostic: methods return *plans* and
//! *outcomes* describing what must be sent, and accept the results of those
//! exchanges. The runtime owns blocking, retries and virtual-time
//! accounting. This keeps every protocol rule in one place and unit-testable
//! without threads.
//!
//! ## Payload leases
//!
//! Object payloads live behind [`ObjectStore`] handles (shared read/write
//! cells). The application side *leases* a store after a successful access
//! plan and holds its read or write guard across application code — that is
//! how `ReadView`/`WriteView` expose `&[T]`/`&mut [T]` over engine storage
//! without copying and without pinning the engine mutex. The server side
//! only ever takes `try_` locks on payloads and reports [`Busy`] outcomes
//! when an application view is live, so the protocol server can defer a
//! message instead of blocking — the property that makes lease-holding
//! deadlock-free (a node waiting for a reply always has a responsive
//! server).
//!
//! [`Busy`]: ObjectRequestOutcome::Busy
//!
//! ## Home epochs
//!
//! Every migration bumps the object's *home epoch* (the migration counter
//! shipped with the grant). Redirects and new-home notifications carry the
//! sender's believed epoch, and a node only adopts a hint that is strictly
//! newer than its own belief — never a hint pointing at itself. This keeps
//! every forwarding pointer pointing forward in migration time, so chains
//! cannot form cycles even under racy cross-node interleavings (a stale
//! backward hint could otherwise overwrite a correct forward pointer and
//! strand the requester in a redirect loop).

use crate::config::{NotificationMechanism, ProtocolConfig};
use crate::messages::ReqId;
use crate::migration::MigrationState;
use crate::stats::ProtocolStats;
use crate::sync::{
    BarrierManager, BarrierOutcome, LockAcquireOutcome, LockManager, LockReleaseOutcome,
};
use dsm_objspace::{
    new_store, AccessState, BarrierId, Diff, LockId, NodeId, ObjectData, ObjectId, ObjectRegistry,
    ObjectStore, Twin, Version,
};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Migration state shipped from the old home to the new home inside the
/// object reply that performs the migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationGrant {
    /// The per-object migration bookkeeping to install at the new home
    /// (threshold carried over, per-epoch counters reset).
    pub state: MigrationState,
}

impl MigrationGrant {
    /// The home epoch the grantee becomes home at.
    pub fn epoch(&self) -> u32 {
        self.state.migrations
    }
}

/// What the application side must do to complete an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPlan {
    /// The access can be served from a valid local copy.
    LocalHit,
    /// The object must be faulted in from (what this node believes is) its
    /// home before the access can proceed.
    Fetch {
        /// The believed home node.
        target: NodeId,
    },
}

/// One diff that must be propagated to a home at release time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushPlan {
    /// The object.
    pub obj: ObjectId,
    /// The believed home node.
    pub target: NodeId,
    /// The diff to send.
    pub diff: Diff,
}

/// Home-side outcome of an object fault-in request.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectRequestOutcome {
    /// This node is the home: reply with the data (and possibly migrate).
    Reply {
        /// Object payload.
        data: Vec<u8>,
        /// Version of the home copy.
        version: Version,
        /// Present when the home migrates to the requester with this reply.
        migration: Option<MigrationGrant>,
        /// Nodes that must be sent a `HomeNotify` (broadcast / home-manager
        /// notification mechanisms; empty for forwarding pointers).
        notify: Vec<NodeId>,
    },
    /// This node is not (any longer) the home: redirect the requester.
    Redirect {
        /// Where the requester should try next.
        hint: NodeId,
        /// The home epoch this node believes `hint` became home at (0 when
        /// the hint is only a routing pointer, e.g. to the manager).
        epoch: u32,
    },
    /// The home copy is currently leased to an application view; the caller
    /// must retry the request later (server-side deferral, never blocking).
    Busy,
}

/// Home-side outcome of a diff propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// The diff was applied to the home copy.
    Applied {
        /// The home copy's version after application.
        new_version: Version,
    },
    /// This node is not (any longer) the home: the writer must retry at the
    /// hinted node.
    Redirect {
        /// Where the writer should try next.
        hint: NodeId,
        /// The believed home epoch of `hint` (0 for routing-only hints).
        epoch: u32,
    },
    /// The home copy is currently leased to an application view; the caller
    /// must retry later.
    Busy,
}

/// A home copy plus its protocol metadata.
#[derive(Debug, Clone)]
struct HomeEntry {
    data: ObjectStore,
    version: Version,
    state: AccessState,
    migration: MigrationState,
}

/// A cached (non-home) copy.
#[derive(Debug, Clone)]
struct CacheEntry {
    data: ObjectStore,
    version: Version,
    state: AccessState,
    twin: Option<Twin>,
}

/// A node's belief about an object's current home: the node and the home
/// epoch it became home at. Beliefs only ever move forward in epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HomeBelief {
    node: NodeId,
    epoch: u32,
}

/// The per-node protocol engine. See the module documentation.
#[derive(Debug)]
pub struct ProtocolEngine {
    node: NodeId,
    num_nodes: usize,
    config: ProtocolConfig,
    registry: Arc<ObjectRegistry>,
    homes: HashMap<ObjectId, HomeEntry>,
    caches: HashMap<ObjectId, CacheEntry>,
    known_home: HashMap<ObjectId, HomeBelief>,
    /// Cached objects written (and twinned) in the current interval.
    dirty: HashSet<ObjectId>,
    /// Home objects written in the current interval (version bump at release).
    home_written: HashSet<ObjectId>,
    locks: LockManager,
    barriers: BarrierManager,
    stats: ProtocolStats,
}

impl ProtocolEngine {
    /// Create the engine for `node` in a cluster of `num_nodes` nodes.
    ///
    /// Home copies (zero-filled) are created for every registered object
    /// whose initial home is this node.
    pub fn new(
        node: NodeId,
        num_nodes: usize,
        config: ProtocolConfig,
        registry: Arc<ObjectRegistry>,
    ) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        assert!(
            node.index() < num_nodes,
            "node {node} outside cluster of {num_nodes}"
        );
        let mut homes = HashMap::new();
        for desc in registry.iter() {
            if desc.initial_home(num_nodes) == node {
                homes.insert(
                    desc.id,
                    HomeEntry {
                        data: new_store(ObjectData::zeroed(desc.size_bytes)),
                        version: Version::INITIAL,
                        state: AccessState::Invalid,
                        migration: MigrationState::new(),
                    },
                );
            }
        }
        ProtocolEngine {
            node,
            num_nodes,
            config,
            registry,
            homes,
            caches: HashMap::new(),
            known_home: HashMap::new(),
            dirty: HashSet::new(),
            home_written: HashSet::new(),
            locks: LockManager::new(),
            barriers: BarrierManager::new(num_nodes),
            stats: ProtocolStats::default(),
        }
    }

    /// The node this engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// The shared object registry.
    pub fn registry(&self) -> &Arc<ObjectRegistry> {
        &self.registry
    }

    /// Protocol statistics accumulated so far.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Whether this node currently is the home of `obj`.
    pub fn is_home(&self, obj: ObjectId) -> bool {
        self.homes.contains_key(&obj)
    }

    /// The node this engine currently believes to be the home of `obj`.
    pub fn home_hint(&self, obj: ObjectId) -> NodeId {
        if self.is_home(obj) {
            return self.node;
        }
        match self.known_home.get(&obj) {
            Some(belief) => belief.node,
            // Fall back to the well-known initial assignment.
            None => self.registry.expect(obj).initial_home(self.num_nodes),
        }
    }

    /// The home epoch this node believes `obj`'s current home is at (its
    /// own epoch when it is the home, 0 when it only knows the initial
    /// assignment).
    pub fn home_epoch(&self, obj: ObjectId) -> u32 {
        if let Some(entry) = self.homes.get(&obj) {
            return entry.migration.migrations;
        }
        self.known_home.get(&obj).map_or(0, |belief| belief.epoch)
    }

    /// The manager node of `obj` under the home-manager notification
    /// mechanism: its well-known initial home.
    pub fn manager_of(&self, obj: ObjectId) -> NodeId {
        self.registry.expect(obj).initial_home(self.num_nodes)
    }

    /// Seed the home copy of `obj` with deterministic initial contents.
    /// Called on every node for every object during application start-up;
    /// only the object's initial home stores the data (no messages — every
    /// node can compute the same initial contents, exactly like every JVM
    /// node executing the same allocation code).
    ///
    /// # Panics
    /// Panics if the payload size does not match the registered descriptor,
    /// or if the object has already been written through the protocol.
    pub fn bootstrap_object(&mut self, obj: ObjectId, data: ObjectData) {
        let desc = self.registry.expect(obj);
        assert_eq!(
            data.len(),
            desc.size_bytes,
            "bootstrap payload size mismatch for {obj}"
        );
        if let Some(entry) = self.homes.get_mut(&obj) {
            assert_eq!(
                entry.version,
                Version::INITIAL,
                "bootstrap after the protocol already ran on {obj}"
            );
            *entry.data.write() = data;
        }
    }

    // ------------------------------------------------------------------
    // Application side
    // ------------------------------------------------------------------

    /// Open a new interval: called when the application thread's lock
    /// acquire is granted or its barrier releases.
    ///
    /// Under the Java-consistency flavour of LRC used by the paper's GOS,
    /// the node conservatively invalidates its cached non-home copies (its
    /// own unflushed writes are preserved) and re-arms the home-access traps
    /// so the first home read/write of the interval is observable.
    pub fn begin_interval(&mut self) {
        for entry in self.homes.values_mut() {
            entry.state = AccessState::Invalid;
        }
        let cache_immutable = self.config.cache_immutable_objects;
        let registry = Arc::clone(&self.registry);
        for (obj, entry) in self.caches.iter_mut() {
            if self.dirty.contains(obj) {
                // Our own writes from an interval that has not released yet;
                // never discard them.
                continue;
            }
            if cache_immutable && registry.expect(*obj).is_immutable() {
                continue;
            }
            if entry.state != AccessState::Invalid {
                entry.state = AccessState::Invalid;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Plan a read of `obj` by the local application thread.
    pub fn plan_read(&mut self, obj: ObjectId) -> AccessPlan {
        if let Some(entry) = self.homes.get_mut(&obj) {
            if entry.state.read_faults() {
                self.stats.home_reads += 1;
                entry.state = entry.state.after_read();
            } else {
                self.stats.local_read_hits += 1;
            }
            return AccessPlan::LocalHit;
        }
        if let Some(entry) = self.caches.get(&obj) {
            if !entry.state.read_faults() {
                self.stats.local_read_hits += 1;
                return AccessPlan::LocalHit;
            }
        }
        self.stats.fault_ins += 1;
        AccessPlan::Fetch {
            target: self.home_hint(obj),
        }
    }

    /// Plan a write of `obj` by the local application thread.
    pub fn plan_write(&mut self, obj: ObjectId) -> AccessPlan {
        if let Some(entry) = self.homes.get_mut(&obj) {
            if entry.state.write_faults() {
                self.stats.home_writes += 1;
                if entry.migration.record_home_write() {
                    self.stats.exclusive_home_writes += 1;
                }
                entry.state = entry.state.after_write();
                self.home_written.insert(obj);
            } else {
                self.stats.local_write_hits += 1;
            }
            return AccessPlan::LocalHit;
        }
        if let Some(entry) = self.caches.get_mut(&obj) {
            match entry.state {
                AccessState::ReadWrite => {
                    self.stats.local_write_hits += 1;
                    return AccessPlan::LocalHit;
                }
                AccessState::ReadOnly => {
                    if entry.twin.is_none() {
                        entry.twin = Some(Twin::capture(&entry.data.read()));
                        self.stats.twins_created += 1;
                    }
                    entry.state = AccessState::ReadWrite;
                    self.dirty.insert(obj);
                    return AccessPlan::LocalHit;
                }
                AccessState::Invalid => {}
            }
        }
        self.stats.fault_ins += 1;
        AccessPlan::Fetch {
            target: self.home_hint(obj),
        }
    }

    /// Lease the payload store of a locally *readable* copy of `obj` — the
    /// zero-copy read path. Callers must first obtain
    /// [`AccessPlan::LocalHit`] from [`Self::plan_read`]; the returned store
    /// is then read-locked by the runtime's `ReadView` without holding the
    /// engine itself.
    ///
    /// # Panics
    /// Panics if the object is not locally readable.
    pub fn lease_read(&self, obj: ObjectId) -> ObjectStore {
        if let Some(entry) = self.homes.get(&obj) {
            return Arc::clone(&entry.data);
        }
        if let Some(entry) = self.caches.get(&obj) {
            assert!(
                entry.state != AccessState::Invalid,
                "read lease of invalid cached copy of {obj}; fault it in first"
            );
            return Arc::clone(&entry.data);
        }
        panic!(
            "read lease of {obj} which is neither homed nor cached on {}",
            self.node
        );
    }

    /// Lease the payload store of a locally *writable* copy of `obj` — the
    /// zero-copy write path. Callers must first obtain
    /// [`AccessPlan::LocalHit`] from [`Self::plan_write`]; the twin (for
    /// cached copies) was captured by that plan, so the diff bookkeeping is
    /// already armed and the store can be write-locked directly.
    ///
    /// # Panics
    /// Panics if the object is not locally writable.
    pub fn lease_write(&self, obj: ObjectId) -> ObjectStore {
        if let Some(entry) = self.homes.get(&obj) {
            assert!(
                entry.state == AccessState::ReadWrite,
                "write lease of home copy of {obj} without a write plan"
            );
            return Arc::clone(&entry.data);
        }
        if let Some(entry) = self.caches.get(&obj) {
            assert!(
                entry.state == AccessState::ReadWrite,
                "write lease of cached copy of {obj} without a write plan"
            );
            return Arc::clone(&entry.data);
        }
        panic!(
            "write lease of {obj} which is neither homed nor cached on {}",
            self.node
        );
    }

    /// Read access to a locally valid copy of `obj` through a closure
    /// (convenience over [`Self::lease_read`] for engine-internal callers
    /// and tests).
    ///
    /// # Panics
    /// As [`Self::lease_read`].
    pub fn with_object<R>(&self, obj: ObjectId, f: impl FnOnce(&ObjectData) -> R) -> R {
        let store = self.lease_read(obj);
        let guard = store.read();
        f(&guard)
    }

    /// Write access to a locally writable copy of `obj` through a closure
    /// (convenience over [`Self::lease_write`]).
    ///
    /// # Panics
    /// As [`Self::lease_write`].
    pub fn with_object_mut<R>(&mut self, obj: ObjectId, f: impl FnOnce(&mut ObjectData) -> R) -> R {
        let store = self.lease_write(obj);
        let mut guard = store.write();
        f(&mut guard)
    }

    /// Install the payload of a completed fault-in. If `migration` is
    /// present the home has migrated to this node and the payload becomes
    /// the home copy.
    pub fn install_object(
        &mut self,
        obj: ObjectId,
        data: Vec<u8>,
        version: Version,
        migration: Option<MigrationGrant>,
    ) {
        let desc = self.registry.expect(obj);
        assert_eq!(
            data.len(),
            desc.size_bytes,
            "fault-in payload size mismatch for {obj}"
        );
        let data = new_store(ObjectData::from_bytes(data));
        match migration {
            Some(grant) => {
                let epoch = grant.epoch();
                self.caches.remove(&obj);
                self.dirty.remove(&obj);
                self.homes.insert(
                    obj,
                    HomeEntry {
                        data,
                        version,
                        state: AccessState::ReadOnly,
                        migration: grant.state,
                    },
                );
                self.known_home.insert(
                    obj,
                    HomeBelief {
                        node: self.node,
                        epoch,
                    },
                );
                self.stats.migrations_in += 1;
            }
            None => {
                self.caches.insert(
                    obj,
                    CacheEntry {
                        data,
                        version,
                        state: AccessState::ReadOnly,
                        twin: None,
                    },
                );
            }
        }
    }

    /// Record that a fault-in or flush issued by this node was redirected,
    /// with the redirector claiming `new_home` became home at `epoch`.
    ///
    /// The hint is only adopted when it is strictly newer than this node's
    /// own belief and does not point at this node itself — stale backward
    /// hints must never overwrite a correct forward pointer (they would
    /// create redirect cycles). Returns whether the hint was adopted.
    pub fn note_redirect(&mut self, obj: ObjectId, new_home: NodeId, epoch: u32) -> bool {
        self.stats.redirections_suffered += 1;
        if new_home == self.node || self.is_home(obj) {
            return false;
        }
        let believed = self.home_epoch(obj);
        let known = self.known_home.contains_key(&obj);
        if epoch > believed || (!known && new_home != self.home_hint(obj)) {
            self.known_home.insert(
                obj,
                HomeBelief {
                    node: new_home,
                    epoch,
                },
            );
            return true;
        }
        false
    }

    /// Compute the diffs that must be propagated to remote homes before the
    /// current interval can release. Objects whose writes turn out to be
    /// no-ops are cleaned up immediately and produce no flush.
    pub fn prepare_release(&mut self) -> Vec<FlushPlan> {
        let mut plans = Vec::new();
        let dirty: Vec<ObjectId> = self.dirty.iter().copied().collect();
        for obj in dirty {
            let entry = self
                .caches
                .get_mut(&obj)
                .expect("dirty object must have a cached copy");
            let twin = entry.twin.as_ref().expect("dirty object must have a twin");
            let diff = twin.diff_against(&entry.data.read());
            if diff.is_empty() {
                entry.twin = None;
                entry.state = AccessState::ReadOnly;
                self.dirty.remove(&obj);
                continue;
            }
            self.stats.diffs_sent += 1;
            self.stats.diff_bytes_sent += diff.wire_bytes() as u64;
            plans.push(FlushPlan {
                obj,
                target: self.home_hint(obj),
                diff,
            });
        }
        // Deterministic flush order (object id) so experiments are
        // reproducible regardless of hash-map iteration order.
        plans.sort_by_key(|p| p.obj);
        plans
    }

    /// Record the acknowledgement of one flushed diff.
    pub fn complete_flush(&mut self, obj: ObjectId, new_version: Version) {
        if let Some(entry) = self.caches.get_mut(&obj) {
            entry.version = new_version;
            entry.twin = None;
        }
        self.dirty.remove(&obj);
    }

    /// Close the current interval after all flushes are acknowledged:
    /// home-copy versions advance for locally written objects and write
    /// permission is dropped everywhere so the next interval's first write
    /// is trapped again.
    ///
    /// # Panics
    /// Panics if some flushed diff was never acknowledged (runtime bug).
    pub fn finish_release(&mut self) {
        assert!(
            self.dirty.is_empty(),
            "finish_release with unflushed dirty objects: {:?}",
            self.dirty
        );
        for obj in std::mem::take(&mut self.home_written) {
            if let Some(entry) = self.homes.get_mut(&obj) {
                entry.version = entry.version.next();
            }
        }
        for entry in self.homes.values_mut() {
            entry.state = entry.state.after_release();
        }
        for entry in self.caches.values_mut() {
            entry.state = entry.state.after_release();
        }
    }

    // ------------------------------------------------------------------
    // Server side
    // ------------------------------------------------------------------

    /// The hint and epoch to put into a redirect reply from this (non-home)
    /// node.
    fn redirect_hint(&self, obj: ObjectId) -> (NodeId, u32) {
        match self.config.notification {
            NotificationMechanism::HomeManager if self.node != self.manager_of(obj) => {
                // Routing-only pointer to the manager: epoch 0 so the
                // requester retries there without adopting it as the home.
                (self.manager_of(obj), 0)
            }
            _ => (self.home_hint(obj), self.home_epoch(obj)),
        }
    }

    /// Handle an object fault-in request arriving from `requester`.
    ///
    /// Returns [`ObjectRequestOutcome::Busy`] — without consuming the
    /// request — when the home copy is leased to a live application view;
    /// the server defers and retries.
    pub fn handle_object_request(
        &mut self,
        obj: ObjectId,
        requester: NodeId,
        for_write: bool,
        redirections: u32,
    ) -> ObjectRequestOutcome {
        if !self.is_home(obj) {
            self.stats.redirections_served += 1;
            let (hint, epoch) = self.redirect_hint(obj);
            return ObjectRequestOutcome::Redirect { hint, epoch };
        }
        let desc_size = self.registry.expect(obj).size_bytes as u64;
        let half_peak = self.config.half_peak_length();
        let policy = self.config.migration.clone();
        let notification = self.config.notification;
        let num_nodes = self.num_nodes;
        let node = self.node;
        let manager = self.manager_of(obj);
        let entry = self.homes.get_mut(&obj).expect("checked is_home above");

        // Copy the payload out under a try-lock: if the application holds a
        // write view right now, defer instead of blocking the server.
        let data = match entry.data.try_read() {
            Some(guard) => guard.bytes().to_vec(),
            None => return ObjectRequestOutcome::Busy,
        };
        self.stats.requests_served += 1;
        entry.migration.record_redirections(redirections);

        let migrate = requester != node
            && entry
                .migration
                .should_migrate(&policy, requester, for_write, desc_size, half_peak);
        let version = entry.version;
        if !migrate {
            return ObjectRequestOutcome::Reply {
                data,
                version,
                migration: None,
                notify: Vec::new(),
            };
        }

        // Perform the migration: the home entry becomes an ordinary cached
        // copy here, the migration bookkeeping ships to the new home, and a
        // forwarding pointer (stamped with the new epoch) is left behind.
        let grant = MigrationGrant {
            state: entry.migration.migrate(&policy, desc_size, half_peak),
        };
        let new_epoch = grant.epoch();
        let old = self.homes.remove(&obj).expect("home entry present");
        self.caches.insert(
            obj,
            CacheEntry {
                data: old.data,
                version: old.version,
                state: AccessState::ReadOnly,
                twin: None,
            },
        );
        self.home_written.remove(&obj);
        self.known_home.insert(
            obj,
            HomeBelief {
                node: requester,
                epoch: new_epoch,
            },
        );
        self.stats.migrations_out += 1;

        let notify = match notification {
            NotificationMechanism::ForwardingPointer => Vec::new(),
            NotificationMechanism::HomeManager => {
                if manager == node || manager == requester {
                    Vec::new()
                } else {
                    vec![manager]
                }
            }
            NotificationMechanism::Broadcast => (0..num_nodes)
                .map(NodeId::from)
                .filter(|n| *n != node && *n != requester)
                .collect(),
        };

        ObjectRequestOutcome::Reply {
            data,
            version,
            migration: Some(grant),
            notify,
        }
    }

    /// Handle a diff arriving from `from`.
    ///
    /// Returns [`DiffOutcome::Busy`] — without consuming the diff — when the
    /// home copy is leased to a live application view.
    pub fn handle_diff(
        &mut self,
        obj: ObjectId,
        diff: &Diff,
        from: NodeId,
        redirections: u32,
    ) -> DiffOutcome {
        if !self.is_home(obj) {
            self.stats.redirections_served += 1;
            let (hint, epoch) = self.redirect_hint(obj);
            return DiffOutcome::Redirect { hint, epoch };
        }
        let entry = self.homes.get_mut(&obj).expect("checked is_home above");
        let Some(mut guard) = entry.data.try_write() else {
            return DiffOutcome::Busy;
        };
        entry.migration.record_redirections(redirections);
        diff.apply(&mut guard);
        drop(guard);
        entry.version = entry.version.next();
        entry
            .migration
            .record_remote_write(from, diff.wire_bytes() as u64);
        self.stats.diffs_applied += 1;
        DiffOutcome::Applied {
            new_version: entry.version,
        }
    }

    /// Handle a new-home notification (broadcast or home-manager
    /// mechanisms): adopt the announced home if it is newer than the local
    /// belief.
    pub fn handle_home_notify(&mut self, obj: ObjectId, new_home: NodeId, epoch: u32) {
        if self.is_home(obj) || new_home == self.node {
            return;
        }
        if epoch > self.home_epoch(obj) || !self.known_home.contains_key(&obj) {
            self.known_home.insert(
                obj,
                HomeBelief {
                    node: new_home,
                    epoch,
                },
            );
        }
    }

    /// Answer a home-manager lookup: where does this node believe the home
    /// of `obj` is?
    pub fn handle_home_lookup(&self, obj: ObjectId) -> NodeId {
        self.home_hint(obj)
    }

    // ------------------------------------------------------------------
    // Synchronization managers (only meaningful on the manager node)
    // ------------------------------------------------------------------

    /// Manager-side lock acquire.
    pub fn lock_acquire(
        &mut self,
        lock: LockId,
        requester: NodeId,
        req: ReqId,
    ) -> LockAcquireOutcome {
        self.locks.acquire(lock, requester, req)
    }

    /// Manager-side lock release.
    pub fn lock_release(&mut self, lock: LockId, holder: NodeId) -> LockReleaseOutcome {
        self.locks.release(lock, holder)
    }

    /// Manager-side barrier arrival.
    pub fn barrier_arrive(
        &mut self,
        barrier: BarrierId,
        node: NodeId,
        req: ReqId,
    ) -> BarrierOutcome {
        self.barriers.arrive(barrier, node, req)
    }

    /// Record one application-level lock acquisition (for reporting).
    pub fn note_lock_acquire(&mut self) {
        self.stats.lock_acquires += 1;
    }

    /// Record one application-level barrier crossing (for reporting).
    pub fn note_barrier(&mut self) {
        self.stats.barriers += 1;
    }

    // ------------------------------------------------------------------
    // Introspection for tests and invariant checks
    // ------------------------------------------------------------------

    /// Objects currently homed at this node (sorted, for deterministic
    /// tests).
    pub fn homed_objects(&self) -> Vec<ObjectId> {
        let mut v: Vec<ObjectId> = self.homes.keys().copied().collect();
        v.sort();
        v
    }

    /// The migration bookkeeping of an object homed here, if any.
    pub fn migration_state(&self, obj: ObjectId) -> Option<&MigrationState> {
        self.homes.get(&obj).map(|e| &e.migration)
    }

    /// The current version of the home copy of `obj`, if homed here.
    pub fn home_version(&self, obj: ObjectId) -> Option<Version> {
        self.homes.get(&obj).map(|e| e.version)
    }

    /// Snapshot of a home copy's bytes (tests and invariant checks).
    pub fn home_bytes(&self, obj: ObjectId) -> Option<Vec<u8>> {
        self.homes.get(&obj).map(|e| e.data.read().bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::MigrationPolicy;
    use dsm_objspace::HomeAssignment;

    const N: usize = 3;

    /// Build a registry with a single 64-byte object "x" homed (initially)
    /// on node 0, plus a second object "y" homed on node 1.
    fn registry() -> Arc<ObjectRegistry> {
        let mut r = ObjectRegistry::new();
        r.register_named("x", 0, 64, NodeId(0), HomeAssignment::CreationNode);
        r.register_named("y", 0, 64, NodeId(1), HomeAssignment::CreationNode);
        Arc::new(r)
    }

    fn engines(config: ProtocolConfig) -> Vec<ProtocolEngine> {
        let reg = registry();
        (0..N)
            .map(|i| ProtocolEngine::new(NodeId::from(i), N, config.clone(), Arc::clone(&reg)))
            .collect()
    }

    fn obj_x() -> ObjectId {
        ObjectId::derive("x", 0)
    }

    /// Drive one "remote write interval" of `writer` against the cluster:
    /// fault-in from whoever is home, write a byte, flush the diff. Returns
    /// the number of redirection hops experienced.
    fn remote_write_interval(engines: &mut [ProtocolEngine], writer: usize, value: u8) -> u32 {
        let obj = obj_x();
        engines[writer].begin_interval();
        let mut hops = 0;
        // Fault-in (write fault).
        if let AccessPlan::Fetch { mut target } = engines[writer].plan_write(obj) {
            loop {
                let requester = engines[writer].node();
                match engines[target.index()].handle_object_request(obj, requester, true, hops) {
                    ObjectRequestOutcome::Reply {
                        data,
                        version,
                        migration,
                        ..
                    } => {
                        engines[writer].install_object(obj, data, version, migration);
                        break;
                    }
                    ObjectRequestOutcome::Redirect { hint, epoch } => {
                        engines[writer].note_redirect(obj, hint, epoch);
                        hops += 1;
                        assert!(
                            hops <= engines.len() as u32 + 2,
                            "redirection chain for {obj} did not converge"
                        );
                        target = hint;
                    }
                    ObjectRequestOutcome::Busy => {
                        unreachable!("no views are live in single-threaded tests")
                    }
                }
            }
            // Retry the write plan now that the copy is present.
            assert_eq!(engines[writer].plan_write(obj), AccessPlan::LocalHit);
        }
        engines[writer].with_object_mut(obj, |d| d.bytes_mut()[0] = value);
        // Release: flush diffs (if the writer is now home there are none).
        let plans = engines[writer].prepare_release();
        for plan in plans {
            let mut target = plan.target;
            let mut flush_hops = 0;
            loop {
                let from = engines[writer].node();
                match engines[target.index()].handle_diff(plan.obj, &plan.diff, from, flush_hops) {
                    DiffOutcome::Applied { new_version } => {
                        engines[writer].complete_flush(plan.obj, new_version);
                        break;
                    }
                    DiffOutcome::Redirect { hint, epoch } => {
                        engines[writer].note_redirect(plan.obj, hint, epoch);
                        flush_hops += 1;
                        hops += 1;
                        assert!(
                            flush_hops <= engines.len() as u32 + 2,
                            "diff redirection chain for {} did not converge",
                            plan.obj
                        );
                        target = hint;
                    }
                    DiffOutcome::Busy => {
                        unreachable!("no views are live in single-threaded tests")
                    }
                }
            }
        }
        engines[writer].finish_release();
        hops
    }

    #[test]
    fn initial_homes_follow_registry() {
        let engines = engines(ProtocolConfig::no_migration());
        assert!(engines[0].is_home(obj_x()));
        assert!(!engines[1].is_home(obj_x()));
        assert_eq!(engines[1].home_hint(obj_x()), NodeId(0));
        assert_eq!(engines[0].homed_objects(), vec![obj_x()]);
        assert_eq!(engines[1].home_epoch(obj_x()), 0);
    }

    #[test]
    fn local_home_access_never_needs_fetch() {
        let mut engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        assert_eq!(engines[0].plan_read(obj), AccessPlan::LocalHit);
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        engines[0].with_object_mut(obj, |d| d.bytes_mut()[0] = 7);
        assert!(engines[0].prepare_release().is_empty());
        engines[0].finish_release();
        assert_eq!(engines[0].stats().home_reads, 1);
        assert_eq!(engines[0].stats().home_writes, 1);
        assert_eq!(engines[0].stats().fault_ins, 0);
        assert_eq!(engines[0].home_version(obj), Some(Version(1)));
    }

    #[test]
    fn leases_expose_engine_storage() {
        let mut engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        {
            let store = engines[0].lease_write(obj);
            store.write().bytes_mut()[0] = 42;
        }
        // The write went straight into the home copy, no copy-back needed.
        assert_eq!(engines[0].home_bytes(obj).unwrap()[0], 42);
        let store = engines[0].lease_read(obj);
        assert_eq!(store.read().bytes()[0], 42);
    }

    #[test]
    fn busy_home_copy_defers_requests_and_diffs() {
        let mut engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        let store = engines[0].lease_write(obj);
        let guard = store.write();
        // A write lease blocks both server-side payload operations ...
        assert_eq!(
            engines[0].handle_object_request(obj, NodeId(1), false, 0),
            ObjectRequestOutcome::Busy
        );
        let diff = Diff::full(&[1u8; 64]);
        assert_eq!(
            engines[0].handle_diff(obj, &diff, NodeId(1), 0),
            DiffOutcome::Busy
        );
        drop(guard);
        // ... and the retries succeed once the view drops.
        assert!(matches!(
            engines[0].handle_object_request(obj, NodeId(1), false, 0),
            ObjectRequestOutcome::Reply { .. }
        ));
        assert!(matches!(
            engines[0].handle_diff(obj, &diff, NodeId(1), 0),
            DiffOutcome::Applied { .. }
        ));
    }

    #[test]
    fn remote_write_faults_in_and_flushes_diff() {
        let mut e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        let hops = remote_write_interval(&mut e, 1, 42);
        assert_eq!(hops, 0);
        assert_eq!(e[1].stats().fault_ins, 1);
        assert_eq!(e[1].stats().diffs_sent, 1);
        assert_eq!(e[0].stats().requests_served, 1);
        assert_eq!(e[0].stats().diffs_applied, 1);
        // The home copy reflects the remote write.
        assert_eq!(e[0].home_bytes(obj).unwrap()[0], 42);
        assert_eq!(e[0].home_version(obj), Some(Version(1)));
        // No migration under the NoHM policy.
        assert!(e[0].is_home(obj));
        assert_eq!(e[0].stats().migrations_out, 0);
    }

    #[test]
    fn no_migration_policy_keeps_paying_remote_access() {
        let mut e = engines(ProtocolConfig::no_migration());
        for i in 0..10 {
            // Write values 1..=10 so every interval really changes the object
            // (writing 0 over the zero-initialised object would be a no-op
            // interval with no diff to flush).
            remote_write_interval(&mut e, 1, i + 1);
        }
        assert!(e[0].is_home(obj_x()));
        assert_eq!(e[1].stats().fault_ins, 10);
        assert_eq!(e[1].stats().diffs_sent, 10);
    }

    #[test]
    fn adaptive_policy_migrates_to_single_writer() {
        let mut e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        // Interval 1: node 1 writes; home still node 0 (C becomes 1).
        remote_write_interval(&mut e, 1, 1);
        assert!(e[0].is_home(obj));
        // Interval 2: node 1 faults again; with T=1 and C=1 the home migrates
        // together with the reply.
        remote_write_interval(&mut e, 1, 2);
        assert!(
            e[1].is_home(obj),
            "home should have migrated to the single writer"
        );
        assert!(!e[0].is_home(obj));
        assert_eq!(e[0].stats().migrations_out, 1);
        assert_eq!(e[1].stats().migrations_in, 1);
        // The epoch advanced with the migration, on both ends.
        assert_eq!(e[1].home_epoch(obj), 1);
        assert_eq!(e[0].home_epoch(obj), 1);
        assert_eq!(e[0].home_hint(obj), NodeId(1));
        // Interval 3+: accesses are purely local for node 1.
        let before = e[1].stats().fault_ins;
        remote_write_interval(&mut e, 1, 3);
        assert_eq!(
            e[1].stats().fault_ins,
            before,
            "no further fault-ins after migration"
        );
        assert_eq!(e[1].home_bytes(obj).unwrap()[0], 3);
    }

    #[test]
    fn fixed_threshold_two_migrates_one_interval_later_than_adaptive() {
        let mut adaptive = engines(ProtocolConfig::adaptive());
        let mut ft2 = engines(ProtocolConfig::fixed_threshold(2));
        remote_write_interval(&mut adaptive, 1, 1);
        remote_write_interval(&mut ft2, 1, 1);
        remote_write_interval(&mut adaptive, 1, 2);
        remote_write_interval(&mut ft2, 1, 2);
        assert!(adaptive[1].is_home(obj_x()), "AT migrates at the 2nd fault");
        assert!(
            !ft2[1].is_home(obj_x()),
            "FT2 needs C=2 before the next fault"
        );
        remote_write_interval(&mut ft2, 1, 3);
        assert!(ft2[1].is_home(obj_x()), "FT2 migrates once C reaches 2");
    }

    #[test]
    fn redirection_chain_resolves_and_counts() {
        // Move the home from 0 to 1, then have node 2 request it while still
        // believing node 0 is the home: node 0 redirects (1 hop), node 1
        // serves the request and records the redirection as feedback.
        let mut e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        remote_write_interval(&mut e, 1, 1);
        remote_write_interval(&mut e, 1, 2);
        assert!(e[1].is_home(obj));

        e[2].begin_interval();
        assert_eq!(
            e[2].plan_read(obj),
            AccessPlan::Fetch { target: NodeId(0) },
            "node 2 still believes the initial home"
        );
        let mut hops = 0;
        let mut target = NodeId(0);
        loop {
            match e[target.index()].handle_object_request(obj, NodeId(2), false, hops) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    assert!(migration.is_none(), "a reader must not steal the home");
                    e[2].install_object(obj, data, version, migration);
                    break;
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    e[2].note_redirect(obj, hint, epoch);
                    hops += 1;
                    target = hint;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(hops, 1);
        assert_eq!(e[0].stats().redirections_served, 1);
        assert_eq!(e[2].stats().redirections_suffered, 1);
        assert_eq!(e[2].home_hint(obj), NodeId(1), "the fresh hint was adopted");
        assert_eq!(e[2].plan_read(obj), AccessPlan::LocalHit);
        e[2].with_object(obj, |d| assert_eq!(d.bytes()[0], 2));
        // The redirection became negative feedback at the current home.
        assert_eq!(e[1].migration_state(obj).unwrap().redirected_requests, 1);
    }

    #[test]
    fn stale_hints_are_not_adopted() {
        let mut e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        // Home migrates 0 -> 1 (epoch 1); node 1's belief points at itself.
        remote_write_interval(&mut e, 1, 1);
        remote_write_interval(&mut e, 1, 2);
        assert!(e[1].is_home(obj));
        // A stale hint claiming node 0 (epoch 0) must not regress node 2's
        // belief once it has adopted epoch 1, and a self-hint must never be
        // adopted at all.
        assert!(e[2].note_redirect(obj, NodeId(1), 1), "fresh hint adopted");
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        assert!(
            !e[2].note_redirect(obj, NodeId(0), 0),
            "stale hint rejected"
        );
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        assert!(!e[2].note_redirect(obj, NodeId(2), 5), "self hint rejected");
        assert_eq!(e[2].home_hint(obj), NodeId(1));
    }

    #[test]
    fn alternating_writers_with_adaptive_threshold_migrate_less_than_ft1() {
        // Transient single-writer pattern: writers 1 and 2 take turns in
        // bursts of two intervals. FT1 migrates on every burst; AT observes
        // the redirection feedback and is at most as eager, never more.
        let mut at = engines(ProtocolConfig::adaptive());
        let mut ft1 = engines(ProtocolConfig::fixed_threshold(1));
        for round in 0..16 {
            let writer = 1 + ((round / 2) % 2);
            remote_write_interval(&mut at, writer, round as u8);
            remote_write_interval(&mut ft1, writer, round as u8);
        }
        let at_migrations: u64 = at.iter().map(|e| e.stats().migrations_out).sum();
        let ft1_migrations: u64 = ft1.iter().map(|e| e.stats().migrations_out).sum();
        assert!(
            ft1_migrations >= 4,
            "FT1 should keep migrating under the alternating-burst pattern, got {ft1_migrations}"
        );
        assert!(
            at_migrations <= ft1_migrations,
            "AT ({at_migrations}) must not migrate more than FT1 ({ft1_migrations})"
        );
        // And the redirection traffic follows the same ordering.
        let at_redirs: u64 = at.iter().map(|e| e.stats().redirections_served).sum();
        let ft1_redirs: u64 = ft1.iter().map(|e| e.stats().redirections_served).sum();
        assert!(at_redirs <= ft1_redirs);
    }

    #[test]
    fn jump_policy_migrates_on_every_write_fault() {
        let cfg = ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest);
        let mut e = engines(cfg);
        remote_write_interval(&mut e, 1, 1);
        assert!(
            e[1].is_home(obj_x()),
            "JUMP migrates on the very first write fault"
        );
        remote_write_interval(&mut e, 2, 2);
        assert!(
            e[2].is_home(obj_x()),
            "JUMP migrates again to the next writer"
        );
        // Epochs advanced monotonically along the migrations.
        assert_eq!(e[2].home_epoch(obj_x()), 2);
    }

    #[test]
    fn migration_preserves_data_and_versions() {
        let mut e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        remote_write_interval(&mut e, 1, 11);
        remote_write_interval(&mut e, 1, 22);
        assert!(e[1].is_home(obj));
        // Version history: one diff applied at the old home (v1); the data
        // with value 22 was written locally at the new home after migration.
        assert_eq!(e[1].home_bytes(obj).unwrap()[0], 22);
        assert!(e[1].home_version(obj).unwrap() >= Version(1));
        // Exactly one node considers itself home.
        let home_count = e.iter().filter(|eng| eng.is_home(obj)).count();
        assert_eq!(home_count, 1);
    }

    #[test]
    fn bootstrap_seeds_only_the_home() {
        let mut e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        let data = ObjectData::from_bytes(vec![9u8; 64]);
        for eng in e.iter_mut() {
            eng.bootstrap_object(obj, data.clone());
        }
        assert_eq!(e[0].home_bytes(obj).unwrap(), vec![9u8; 64]);
        assert!(e[1].home_bytes(obj).is_none());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bootstrap_rejects_wrong_size() {
        let mut e = engines(ProtocolConfig::no_migration());
        e[0].bootstrap_object(obj_x(), ObjectData::zeroed(8));
    }

    #[test]
    #[should_panic(expected = "without a write plan")]
    fn writing_without_plan_panics() {
        let mut e = engines(ProtocolConfig::no_migration());
        // plan_read only gives read permission at the home.
        e[0].begin_interval();
        let _ = e[0].plan_read(obj_x());
        e[0].with_object_mut(obj_x(), |d| d.bytes_mut()[0] = 1);
    }

    #[test]
    fn broadcast_notification_lists_all_other_nodes() {
        let cfg = ProtocolConfig::adaptive().with_notification(NotificationMechanism::Broadcast);
        let mut e = engines(cfg);
        let obj = obj_x();
        remote_write_interval(&mut e, 1, 1);
        // Second fault triggers migration; inspect the outcome directly.
        e[1].begin_interval();
        assert!(matches!(e[1].plan_write(obj), AccessPlan::Fetch { .. }));
        match e[0].handle_object_request(obj, NodeId(1), true, 0) {
            ObjectRequestOutcome::Reply {
                migration, notify, ..
            } => {
                assert!(migration.is_some());
                assert_eq!(
                    notify,
                    vec![NodeId(2)],
                    "everyone except old home and requester"
                );
            }
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn home_notify_updates_hint_monotonically() {
        let mut e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        e[2].handle_home_notify(obj, NodeId(1), 1);
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        assert_eq!(e[2].handle_home_lookup(obj), NodeId(1));
        // An older notify does not regress the belief.
        e[2].handle_home_notify(obj, NodeId(0), 0);
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        // A newer one advances it.
        e[2].handle_home_notify(obj, NodeId(0), 2);
        assert_eq!(e[2].home_hint(obj), NodeId(0));
        // A notify to the actual home does not confuse it.
        e[0].handle_home_notify(obj, NodeId(1), 3);
        assert_eq!(e[0].home_hint(obj), NodeId(0));
    }

    #[test]
    fn interval_invalidation_forces_refetch_of_cached_copies() {
        let mut e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        // Node 1 reads the object (fault-in, then cached).
        e[1].begin_interval();
        if let AccessPlan::Fetch { target } = e[1].plan_read(obj) {
            match e[target.index()].handle_object_request(obj, NodeId(1), false, 0) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    e[1].install_object(obj, data, version, migration);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(e[1].plan_read(obj), AccessPlan::LocalHit);
        e[1].finish_release();
        // Next interval: the cached copy is conservatively invalidated.
        e[1].begin_interval();
        assert!(matches!(e[1].plan_read(obj), AccessPlan::Fetch { .. }));
        assert_eq!(e[1].stats().invalidations, 1);
    }

    #[test]
    fn unwritten_dirty_objects_produce_no_flush() {
        let mut e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        e[1].begin_interval();
        if let AccessPlan::Fetch { target } = e[1].plan_write(obj) {
            match e[target.index()].handle_object_request(obj, NodeId(1), true, 0) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    e[1].install_object(obj, data, version, migration);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(e[1].plan_write(obj), AccessPlan::LocalHit);
        // The application "writes" the same value that was already there, so
        // the diff is empty and nothing is flushed.
        e[1].with_object_mut(obj, |d| d.bytes_mut()[0] = 0);
        assert!(e[1].prepare_release().is_empty());
        e[1].finish_release();
        assert_eq!(e[1].stats().diffs_sent, 0);
    }
}
