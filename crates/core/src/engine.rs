//! The per-node protocol engine.
//!
//! One [`ProtocolEngine`] instance lives on every simulated cluster node. It
//! owns that node's home copies, cached copies, migration bookkeeping and
//! synchronization-manager state, and it is driven from two sides:
//!
//! * the **application side** (the node's application thread, through the
//!   runtime's `NodeCtx`): planning reads and writes, leasing object stores
//!   for zero-copy views, installing fetched objects, preparing and
//!   finishing releases, opening intervals;
//! * the **server side** (the node's protocol server thread): handling
//!   object requests, diffs, notifications and synchronization messages
//!   arriving from other nodes.
//!
//! The engine is deliberately transport-agnostic: methods return *plans* and
//! *outcomes* describing what must be sent, and accept the results of those
//! exchanges. The runtime owns blocking, retries and virtual-time
//! accounting. This keeps every protocol rule in one place and unit-testable
//! without threads.
//!
//! ## Sharded locking
//!
//! The engine is internally **lock-striped** so the two sides never
//! serialize on a node-global lock. Per-object state (home copies, cached
//! copies, home beliefs, interval write sets) lives in `N` independent
//! [`EngineShard`]s, each behind its own mutex, keyed by `ObjectId`;
//! node-global state (the distributed lock and barrier managers and the
//! synchronization counters) sits behind a separate small lock
//! ([`NodeGlobals`]). Every public method takes `&self` and acquires exactly
//! one internal lock — shard locks and the global lock are all *leaf* locks,
//! never nested — so requests for objects in different shards proceed fully
//! in parallel and the engine's internal locking cannot deadlock.
//! Interval-wide operations (`begin_interval`, `prepare_release`,
//! `finish_release`) walk the shards one at a time; they are issued by the
//! node's single application thread, which the protocol permits to observe
//! shards at slightly different instants (the server side only performs
//! per-object transitions).
//!
//! ## Payload leases
//!
//! Object payloads live behind [`ObjectStore`] handles (shared read/write
//! cells). The application side *leases* a store after a successful access
//! plan and holds its read or write guard across application code — that is
//! how `ReadView`/`WriteView` expose `&[T]`/`&mut [T]` over engine storage
//! without copying and without pinning any engine lock. Because the home of
//! an object can migrate away *between* the access plan and the lease (the
//! server thread serves requests concurrently), the runtime uses the checked
//! [`ProtocolEngine::try_lease_read`]/[`ProtocolEngine::try_lease_write`]
//! forms, which validate
//! the access state and take the payload guard atomically under the shard
//! lock, and re-plan when the state moved underneath them. The server side
//! only ever takes `try_` locks on payloads and reports [`Busy`] outcomes
//! when an application view is live, so the protocol server can defer a
//! message instead of blocking — the property that makes lease-holding
//! deadlock-free (a node waiting for a reply always has a responsive
//! server).
//!
//! [`Busy`]: ObjectRequestOutcome::Busy
//! [`EngineShard`]: crate::engine#sharded-locking
//! [`NodeGlobals`]: crate::engine#sharded-locking
//!
//! ## Home epochs
//!
//! Every migration bumps the object's *home epoch* (the migration counter
//! shipped with the grant). Redirects and new-home notifications carry the
//! sender's believed epoch, and a node only adopts a hint that is strictly
//! newer than its own belief — never a hint pointing at itself. This keeps
//! every forwarding pointer pointing forward in migration time, so chains
//! cannot form cycles even under racy cross-node interleavings (a stale
//! backward hint could otherwise overwrite a correct forward pointer and
//! strand the requester in a redirect loop).
//!
//! ## Ordering assumptions
//!
//! The protocol's delivery-order requirements, stated explicitly because
//! the fabrics (threaded channels, and the perturbing sim fabric with its
//! per-link FIFO clamp) are built to honour exactly these and no more:
//!
//! * **Per-link FIFO.** Messages from one node to another must arrive in
//!   send order. The load-bearing case is the *one-way* synchronization
//!   traffic: a node's `LockRelease` is fire-and-forget, and its next
//!   `LockAcquire` of the same lock is a fresh message on the same link —
//!   if the acquire overtook the release, the manager would queue the
//!   requester behind itself and deadlock (barrier arrivals of successive
//!   epochs are analogous). Request/reply pairs are immune (the requester
//!   blocks), and home beliefs are epoch-guarded, so overtaking *across*
//!   links — which the sim fabric's seeded perturbations explore
//!   aggressively — is always safe: hints and notifications are adopted
//!   only when strictly newer.
//! * **At-most-once delivery.** A message is delivered at most once per
//!   send. Lossless fabrics (threaded channels, calm/perturbed sim
//!   configurations, TCP) deliver exactly once and need nothing else; the
//!   lossy sim configurations may *drop* messages, which the runtime
//!   papers over with timeouts, retransmissions and a server-side
//!   request-id dedup table — see *Fault model & recovery* below. The sim
//!   fabric asserts send = delivery + drop conservation at teardown.
//! * **No global order.** Nothing assumes cluster-wide delivery order or
//!   a shared clock; any interleaving consistent with the two points above
//!   must produce the same application results (the conformance matrix's
//!   seed sweep checks precisely this).
//! * **Deterministic iteration for reproducibility.** Where the engine
//!   *emits* ordered work derived from unordered containers, it orders it
//!   explicitly — [`ProtocolEngine::prepare_release`] sorts flush plans by
//!   object id and [`group_flush_plans`] orders batches by target node —
//!   so a fixed schedule (e.g. a sim-fabric seed) replays bit-identically
//!   regardless of hash-map iteration order.
//!
//! ## Fault model & recovery
//!
//! Under a *lossy* fabric the engine's job splits in two: the runtime owns
//! detection and retransmission (per-request timeouts that fire only when
//! the cluster is otherwise quiescent, so lossless schedules are
//! untouched), while the engine owns the state rules that make those
//! retransmissions *safe*:
//!
//! * **What can be lost.** Any message. Requests and one-way notifications
//!   are retransmitted by the sender's retry table; replies and acks are
//!   re-sent from the server's per-`ReqId` reply cache when the retried
//!   request arrives again. `LockRelease` — historically fire-and-forget —
//!   carries a real request id on lossy runs so a lost release cannot
//!   deadlock the lock manager.
//! * **Why duplicates are safe.** Every retriable request with side
//!   effects ([`crate::messages::ProtocolMsg::dedup_req`]) is deduplicated
//!   at the server's network ingress: the first delivery executes and its
//!   reply is cached; later deliveries of the same `ReqId` either re-send
//!   the cached reply or (while the original is still deferred) are
//!   silently absorbed. The handlers themselves therefore never observe a
//!   duplicate, and the non-dedup'd fault-recovery messages
//!   (`HomeElect`/`HomeFence` and their answers) are idempotent by
//!   construction — elections are sticky, fencing compares epochs.
//! * **Home re-election.** When a node cannot reach an object's believed
//!   home past the runtime's failover threshold, it asks the object's
//!   *arbiter* — its well-known manager node, or the next node when the
//!   manager itself is the suspect — to elect a new home
//!   ([`ProtocolEngine::handle_home_elect`]). The arbiter elects a node
//!   that still holds a copy (preferring the live candidate), records the
//!   decision so concurrent candidates converge on one winner, and the
//!   winner promotes its local copy ([`ProtocolEngine::install_elected_home`]).
//!   A crashed home's unflushed interval is lost: recovery restores the
//!   best surviving copy, which is exactly the guarantee a home-based LRC
//!   protocol can give without replication.
//! * **The epoch-fencing argument.** An elected home's epoch is the
//!   highest epoch any elector has observed plus [`ELECTION_EPOCH_STRIDE`]
//!   (2^16). A dark home can keep granting ordinary migrations while
//!   unreachable, but each grant bumps its epoch by exactly one — it would
//!   need 2^16 unobserved grants to catch up to the fence, which bounded
//!   workloads never approach. Every belief, redirect and notification
//!   comparison is strictly-greater-than on epochs, so anything the
//!   deposed home says after the election loses, and the deposed home
//!   itself is demoted the moment a fenced epoch reaches it
//!   ([`ProtocolEngine::handle_home_notify`] — the `HomeFence` path, which
//!   the winner retries until acknowledged).

use crate::config::ProtocolConfig;
use crate::global::NodeGlobals;
use crate::messages::ReqId;
use crate::migration::MigrationState;
use crate::shard::EngineShard;
use crate::stats::ProtocolStats;
use crate::sync::{BarrierOutcome, LockAcquireOutcome, LockReleaseOutcome};
use dsm_objspace::{
    BarrierId, Diff, LockId, NodeId, ObjectData, ObjectId, ObjectRegistry, ObjectStore, Version,
};
use dsm_util::{Mutex, MutexGuard, RwReadGuard, RwWriteGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Default number of lock stripes per engine. Sixteen shards keep the
/// per-shard mutexes essentially uncontended for the paper's workloads
/// (hundreds of objects, a handful of cores) while costing next to nothing
/// for single-object tests.
pub const DEFAULT_ENGINE_SHARDS: usize = 16;

/// The home-epoch stride of a re-election fence: an elected home's epoch
/// is the highest observed epoch plus this stride, so it strictly exceeds
/// any epoch the deposed home could have issued through ordinary
/// migrations while unreachable (each of those bumps the epoch by one).
/// See the *Fault model & recovery* section of the module docs.
pub const ELECTION_EPOCH_STRIDE: u32 = 1 << 16;

/// Migration state shipped from the old home to the new home inside the
/// object reply that performs the migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationGrant {
    /// The per-object migration bookkeeping to install at the new home
    /// (threshold carried over, per-epoch counters reset).
    pub state: MigrationState,
}

impl MigrationGrant {
    /// The home epoch the grantee becomes home at.
    pub fn epoch(&self) -> u32 {
        self.state.migrations
    }
}

/// What the application side must do to complete an access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPlan {
    /// The access can be served from a valid local copy.
    LocalHit,
    /// The object must be faulted in from (what this node believes is) its
    /// home before the access can proceed.
    Fetch {
        /// The believed home node.
        target: NodeId,
    },
}

/// One diff that must be propagated to a home at release time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushPlan {
    /// The object.
    pub obj: ObjectId,
    /// The believed home node.
    pub target: NodeId,
    /// The diff to send.
    pub diff: Diff,
}

/// All of one interval's flush plans aimed at the same (believed) home,
/// ready to travel as a single `DiffBatch` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushBatch {
    /// The believed home node all entries share.
    pub target: NodeId,
    /// The grouped plans, ordered by object id.
    pub entries: Vec<FlushPlan>,
}

/// Group release-time flush plans by their (believed) home node, so each
/// group can be shipped as one `DiffBatch` instead of one `DiffFlush` per
/// object — an interval that wrote k objects homed on the same node then
/// pays one per-message start-up time instead of k.
///
/// The grouping is deterministic: batches are ordered by target node and the
/// entries within a batch by object id, so experiments are reproducible
/// regardless of hash-map iteration order upstream.
pub fn group_flush_plans(plans: Vec<FlushPlan>) -> Vec<FlushBatch> {
    let mut by_target: std::collections::BTreeMap<NodeId, Vec<FlushPlan>> =
        std::collections::BTreeMap::new();
    for plan in plans {
        by_target.entry(plan.target).or_default().push(plan);
    }
    by_target
        .into_iter()
        .map(|(target, mut entries)| {
            entries.sort_by_key(|p| p.obj);
            FlushBatch { target, entries }
        })
        .collect()
}

/// Home-side outcome of an object fault-in request.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectRequestOutcome {
    /// This node is the home: reply with the data (and possibly migrate).
    Reply {
        /// Object payload.
        data: Vec<u8>,
        /// Version of the home copy.
        version: Version,
        /// Present when the home migrates to the requester with this reply.
        migration: Option<MigrationGrant>,
        /// Nodes that must be sent a `HomeNotify` (broadcast / home-manager
        /// notification mechanisms; empty for forwarding pointers).
        notify: Vec<NodeId>,
    },
    /// This node is not (any longer) the home: redirect the requester.
    Redirect {
        /// Where the requester should try next.
        hint: NodeId,
        /// The home epoch this node believes `hint` became home at (0 when
        /// the hint is only a routing pointer, e.g. to the manager).
        epoch: u32,
    },
    /// The home copy is currently leased to an application view; the caller
    /// must retry the request later (server-side deferral, never blocking).
    Busy,
}

/// Home-side outcome of a diff propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// The diff was applied to the home copy.
    Applied {
        /// The home copy's version after application.
        new_version: Version,
    },
    /// This node is not (any longer) the home: the writer must retry at the
    /// hinted node.
    Redirect {
        /// Where the writer should try next.
        hint: NodeId,
        /// The believed home epoch of `hint` (0 for routing-only hints).
        epoch: u32,
    },
    /// The home copy is currently leased to an application view; the caller
    /// must retry later.
    Busy,
}

/// The per-node protocol engine: a facade over `N` lock-striped object
/// shards plus one node-global lock. See the module documentation.
#[derive(Debug)]
pub struct ProtocolEngine {
    node: NodeId,
    num_nodes: usize,
    config: ProtocolConfig,
    registry: Arc<ObjectRegistry>,
    shards: Box<[Mutex<EngineShard>]>,
    globals: Mutex<NodeGlobals>,
    /// Arbiter-side election book: the elected `(home, epoch)` per object.
    /// Sticky so concurrent candidates converge on one winner; re-election
    /// is allowed only when the previously elected home is itself the new
    /// suspect. A leaf lock like the shards, never nested with them.
    elections: Mutex<HashMap<ObjectId, (NodeId, u32)>>,
}

impl ProtocolEngine {
    /// Create the engine for `node` in a cluster of `num_nodes` nodes, with
    /// the default shard count ([`DEFAULT_ENGINE_SHARDS`]).
    ///
    /// Home copies (zero-filled) are created for every registered object
    /// whose initial home is this node.
    pub fn new(
        node: NodeId,
        num_nodes: usize,
        config: ProtocolConfig,
        registry: Arc<ObjectRegistry>,
    ) -> Self {
        Self::with_shards(node, num_nodes, config, registry, DEFAULT_ENGINE_SHARDS)
    }

    /// Create the engine with an explicit shard count (rounded up to the
    /// next power of two; at least one).
    pub fn with_shards(
        node: NodeId,
        num_nodes: usize,
        config: ProtocolConfig,
        registry: Arc<ObjectRegistry>,
        shards: usize,
    ) -> Self {
        assert!(num_nodes > 0, "cluster must have at least one node");
        assert!(
            node.index() < num_nodes,
            "node {node} outside cluster of {num_nodes}"
        );
        let count = shards.max(1).next_power_of_two();
        let shards: Box<[Mutex<EngineShard>]> = (0..count)
            .map(|index| {
                Mutex::new(EngineShard::new(
                    node,
                    num_nodes,
                    config.clone(),
                    Arc::clone(&registry),
                    |obj| shard_index(obj, count) == index,
                ))
            })
            .collect();
        ProtocolEngine {
            node,
            num_nodes,
            config,
            registry,
            shards,
            globals: Mutex::new(NodeGlobals::new(num_nodes)),
            elections: Mutex::new(HashMap::new()),
        }
    }

    /// The shard guarding `obj`'s per-object state.
    fn shard(&self, obj: ObjectId) -> MutexGuard<'_, EngineShard> {
        self.shards[shard_index(obj, self.shards.len())].lock()
    }

    /// The node this engine belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// The shared object registry.
    pub fn registry(&self) -> &Arc<ObjectRegistry> {
        &self.registry
    }

    /// Number of lock stripes in this engine.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `obj`'s state lives in (stable for the lifetime of
    /// the engine; exposed for tests that reason about stripe contention).
    pub fn shard_of(&self, obj: ObjectId) -> usize {
        shard_index(obj, self.shards.len())
    }

    /// Protocol statistics accumulated so far, aggregated across shards and
    /// the node-global state.
    pub fn stats(&self) -> ProtocolStats {
        let mut total = ProtocolStats::default();
        for shard in self.shards.iter() {
            total.merge(&shard.lock().stats);
        }
        let globals = self.globals.lock();
        total.lock_acquires += globals.lock_acquires;
        total.barriers += globals.barriers_crossed;
        total.batched_flushes += globals.batched_flushes;
        total.batch_entries += globals.batch_entries;
        total
    }

    /// Whether this node currently is the home of `obj`.
    pub fn is_home(&self, obj: ObjectId) -> bool {
        self.shard(obj).is_home(obj)
    }

    /// The node this engine currently believes to be the home of `obj`.
    pub fn home_hint(&self, obj: ObjectId) -> NodeId {
        self.shard(obj).home_hint(obj)
    }

    /// The home epoch this node believes `obj`'s current home is at (its
    /// own epoch when it is the home, 0 when it only knows the initial
    /// assignment).
    pub fn home_epoch(&self, obj: ObjectId) -> u32 {
        self.shard(obj).home_epoch(obj)
    }

    /// The manager node of `obj` under the home-manager notification
    /// mechanism: its well-known initial home.
    pub fn manager_of(&self, obj: ObjectId) -> NodeId {
        self.registry.expect(obj).initial_home(self.num_nodes)
    }

    /// Seed the home copy of `obj` with deterministic initial contents.
    /// Called on every node for every object during application start-up;
    /// only the object's initial home stores the data (no messages — every
    /// node can compute the same initial contents, exactly like every JVM
    /// node executing the same allocation code).
    ///
    /// # Panics
    /// Panics if the payload size does not match the registered descriptor,
    /// or if the object has already been written through the protocol.
    pub fn bootstrap_object(&self, obj: ObjectId, data: ObjectData) {
        self.shard(obj).bootstrap_object(obj, data);
    }

    // ------------------------------------------------------------------
    // Application side
    // ------------------------------------------------------------------

    /// Open a new interval: called when the application thread's lock
    /// acquire is granted or its barrier releases.
    ///
    /// Under the Java-consistency flavour of LRC used by the paper's GOS,
    /// the node conservatively invalidates its cached non-home copies (its
    /// own unflushed writes are preserved) and re-arms the home-access traps
    /// so the first home read/write of the interval is observable. Walks the
    /// shards one at a time (one leaf lock held at any instant).
    pub fn begin_interval(&self) {
        for shard in self.shards.iter() {
            shard.lock().begin_interval();
        }
    }

    /// Plan a read of `obj` by the local application thread.
    pub fn plan_read(&self, obj: ObjectId) -> AccessPlan {
        self.shard(obj).plan_read(obj)
    }

    /// Plan a write of `obj` by the local application thread.
    pub fn plan_write(&self, obj: ObjectId) -> AccessPlan {
        self.shard(obj).plan_write(obj)
    }

    /// Lease the payload store of a locally *readable* copy of `obj` — the
    /// zero-copy read path. Callers must first obtain
    /// [`AccessPlan::LocalHit`] from [`Self::plan_read`]; the returned store
    /// is then read-locked by the runtime's `ReadView` without holding any
    /// engine lock. Single-threaded callers only — concurrent runtimes must
    /// use [`Self::try_lease_read`], which cannot race a migration.
    ///
    /// # Panics
    /// Panics if the object is not locally readable.
    pub fn lease_read(&self, obj: ObjectId) -> ObjectStore {
        self.shard(obj).lease_read(obj)
    }

    /// Lease the payload store of a locally *writable* copy of `obj` — the
    /// zero-copy write path. Callers must first obtain
    /// [`AccessPlan::LocalHit`] from [`Self::plan_write`]; the twin (for
    /// cached copies) was captured by that plan, so the diff bookkeeping is
    /// already armed and the store can be write-locked directly.
    /// Single-threaded callers only — concurrent runtimes must use
    /// [`Self::try_lease_write`].
    ///
    /// # Panics
    /// Panics if the object is not locally writable.
    pub fn lease_write(&self, obj: ObjectId) -> ObjectStore {
        self.shard(obj).lease_write(obj)
    }

    /// Atomically re-validate readability and take the payload *read guard*
    /// under the shard lock. Returns `None` when the local copy is no longer
    /// readable — e.g. the server thread migrated the home away between the
    /// caller's [`Self::plan_read`] and this lease — in which case the
    /// caller must re-plan (and possibly fault the object back in).
    pub fn try_lease_read(&self, obj: ObjectId) -> Option<RwReadGuard<ObjectData>> {
        self.shard(obj).try_lease_read(obj)
    }

    /// Atomically re-validate writability and take the payload *write
    /// guard* under the shard lock. Returns `None` when the local copy is no
    /// longer writable — the caller must re-plan, which re-arms the
    /// twin/diff bookkeeping before the next attempt.
    pub fn try_lease_write(&self, obj: ObjectId) -> Option<RwWriteGuard<ObjectData>> {
        self.shard(obj).try_lease_write(obj)
    }

    /// Read access to a locally valid copy of `obj` through a closure
    /// (convenience over [`Self::lease_read`] for engine-internal callers
    /// and tests).
    ///
    /// # Panics
    /// As [`Self::lease_read`].
    pub fn with_object<R>(&self, obj: ObjectId, f: impl FnOnce(&ObjectData) -> R) -> R {
        let store = self.lease_read(obj);
        let guard = store.read();
        f(&guard)
    }

    /// Write access to a locally writable copy of `obj` through a closure
    /// (convenience over [`Self::lease_write`]).
    ///
    /// # Panics
    /// As [`Self::lease_write`].
    pub fn with_object_mut<R>(&self, obj: ObjectId, f: impl FnOnce(&mut ObjectData) -> R) -> R {
        let store = self.lease_write(obj);
        let mut guard = store.write();
        f(&mut guard)
    }

    /// Install the payload of a completed fault-in. If `migration` is
    /// present the home has migrated to this node and the payload becomes
    /// the home copy.
    pub fn install_object(
        &self,
        obj: ObjectId,
        data: Vec<u8>,
        version: Version,
        migration: Option<MigrationGrant>,
    ) {
        self.shard(obj)
            .install_object(obj, data, version, migration);
    }

    /// Record that a fault-in or flush issued by this node was redirected,
    /// with the redirector claiming `new_home` became home at `epoch`.
    ///
    /// The hint is only adopted when it is strictly newer than this node's
    /// own belief and does not point at this node itself — stale backward
    /// hints must never overwrite a correct forward pointer (they would
    /// create redirect cycles). Returns whether the hint was adopted.
    pub fn note_redirect(&self, obj: ObjectId, new_home: NodeId, epoch: u32) -> bool {
        self.shard(obj).note_redirect(obj, new_home, epoch)
    }

    /// Compute the diffs that must be propagated to remote homes before the
    /// current interval can release. Objects whose writes turn out to be
    /// no-ops are cleaned up immediately and produce no flush.
    pub fn prepare_release(&self) -> Vec<FlushPlan> {
        let mut plans = Vec::new();
        for shard in self.shards.iter() {
            shard.lock().prepare_release(&mut plans);
        }
        // Deterministic flush order (object id) so experiments are
        // reproducible regardless of hash-map iteration order.
        plans.sort_by_key(|p| p.obj);
        plans
    }

    /// Record the acknowledgement of one flushed diff.
    pub fn complete_flush(&self, obj: ObjectId, new_version: Version) {
        self.shard(obj).complete_flush(obj, new_version);
    }

    /// Close the current interval after all flushes are acknowledged:
    /// home-copy versions advance for locally written objects and write
    /// permission is dropped everywhere so the next interval's first write
    /// is trapped again.
    ///
    /// # Panics
    /// Panics if some flushed diff was never acknowledged (runtime bug).
    pub fn finish_release(&self) {
        for shard in self.shards.iter() {
            shard.lock().finish_release();
        }
    }

    // ------------------------------------------------------------------
    // Server side
    // ------------------------------------------------------------------

    /// Handle an object fault-in request arriving from `requester`.
    ///
    /// Returns [`ObjectRequestOutcome::Busy`] — without consuming the
    /// request — when the home copy is leased to a live application view;
    /// the server defers and retries.
    pub fn handle_object_request(
        &self,
        obj: ObjectId,
        requester: NodeId,
        for_write: bool,
        redirections: u32,
    ) -> ObjectRequestOutcome {
        self.shard(obj)
            .handle_object_request(obj, requester, for_write, redirections)
    }

    /// Handle a diff arriving from `from`.
    ///
    /// Returns [`DiffOutcome::Busy`] — without consuming the diff — when the
    /// home copy is leased to a live application view.
    pub fn handle_diff(
        &self,
        obj: ObjectId,
        diff: &Diff,
        from: NodeId,
        redirections: u32,
    ) -> DiffOutcome {
        self.shard(obj).handle_diff(obj, diff, from, redirections)
    }

    /// Handle a new-home notification (broadcast or home-manager
    /// mechanisms): adopt the announced home if it is newer than the local
    /// belief.
    pub fn handle_home_notify(&self, obj: ObjectId, new_home: NodeId, epoch: u32) {
        self.shard(obj).handle_home_notify(obj, new_home, epoch);
    }

    /// Answer a home-manager lookup: where does this node believe the home
    /// of `obj` is?
    pub fn handle_home_lookup(&self, obj: ObjectId) -> NodeId {
        self.home_hint(obj)
    }

    /// Whether this node holds *any* local copy of `obj` (home or cached) —
    /// what makes it a promotable election candidate.
    pub fn has_copy(&self, obj: ObjectId) -> bool {
        self.shard(obj).has_copy(obj)
    }

    /// Arbiter side of a home re-election: `candidate` reports that
    /// `suspect` (its believed home of `obj`, at `candidate_epoch`) is
    /// unreachable. Returns the elected `(home, epoch)`, or
    /// `(suspect, 0)` as the refusal encoding when no reachable node holds
    /// a copy to promote.
    ///
    /// The decision is *sticky*: once an election for `obj` picked a
    /// winner, every later request returns the same answer, unless the
    /// previously elected home is itself the new suspect (cascaded
    /// failure), in which case a fresh election runs at a higher epoch.
    /// Stickiness is what makes the unreliable, undeduplicated
    /// `HomeElect` exchange idempotent.
    pub fn handle_home_elect(
        &self,
        obj: ObjectId,
        suspect: NodeId,
        candidate: NodeId,
        candidate_epoch: u32,
        candidate_has_copy: bool,
    ) -> (NodeId, u32) {
        // Leaf-lock discipline: observe the shard, release, then decide
        // under the election lock — never both at once.
        let (is_home, own_epoch, own_copy) = {
            let shard = self.shard(obj);
            (
                shard.is_home(obj),
                shard.home_epoch(obj),
                shard.has_copy(obj),
            )
        };
        if is_home {
            // The candidate's belief is simply stale: this node already is
            // a live home — point the candidate here, no election needed.
            return (self.node, own_epoch);
        }
        let elected = {
            let mut elections = self.elections.lock();
            let prior = elections.get(&obj).copied();
            if let Some((winner, epoch)) = prior {
                if winner != suspect {
                    return (winner, epoch);
                }
            }
            let winner = if candidate_has_copy && candidate != suspect {
                Some(candidate)
            } else if own_copy && self.node != suspect {
                Some(self.node)
            } else {
                None
            };
            winner.map(|winner| {
                let base = candidate_epoch
                    .max(own_epoch)
                    .max(prior.map_or(0, |(_, e)| e));
                let epoch = base.saturating_add(ELECTION_EPOCH_STRIDE);
                elections.insert(obj, (winner, epoch));
                (winner, epoch)
            })
        };
        let Some((winner, epoch)) = elected else {
            return (suspect, 0);
        };
        self.shard(obj).stats.elections += 1;
        // Adopt (or, if this node won, promote to) the elected home so the
        // arbiter's own redirects point at the winner immediately.
        self.install_elected_home(obj, winner, epoch);
        (winner, epoch)
    }

    /// Install the outcome of a home re-election on this node: promote the
    /// local copy when this node is the winner, otherwise adopt the fenced
    /// belief. Returns false only when this node won but holds no copy to
    /// promote (an arbiter bug — elections only pick copy holders).
    pub fn install_elected_home(&self, obj: ObjectId, home: NodeId, epoch: u32) -> bool {
        if home == self.node {
            self.shard(obj).promote_to_home(obj, epoch)
        } else {
            self.handle_home_notify(obj, home, epoch);
            true
        }
    }

    // ------------------------------------------------------------------
    // Synchronization managers (only meaningful on the manager node)
    // ------------------------------------------------------------------

    /// Manager-side lock acquire.
    pub fn lock_acquire(&self, lock: LockId, requester: NodeId, req: ReqId) -> LockAcquireOutcome {
        self.globals.lock().lock_acquire(lock, requester, req)
    }

    /// Manager-side lock release.
    pub fn lock_release(&self, lock: LockId, holder: NodeId) -> LockReleaseOutcome {
        self.globals.lock().lock_release(lock, holder)
    }

    /// Manager-side barrier arrival.
    pub fn barrier_arrive(&self, barrier: BarrierId, node: NodeId, req: ReqId) -> BarrierOutcome {
        self.globals.lock().barrier_arrive(barrier, node, req)
    }

    /// Record one application-level lock acquisition (for reporting).
    pub fn note_lock_acquire(&self) {
        self.globals.lock().lock_acquires += 1;
    }

    /// Record one application-level barrier crossing (for reporting).
    pub fn note_barrier(&self) {
        self.globals.lock().barriers_crossed += 1;
    }

    /// Record that `entries` release-time flushes were shipped as one
    /// `DiffBatch` message (for the `batched_flushes` / `batch_entries`
    /// statistics).
    pub fn note_diff_batch(&self, entries: usize) {
        let mut globals = self.globals.lock();
        globals.batched_flushes += 1;
        globals.batch_entries += entries as u64;
    }

    // ------------------------------------------------------------------
    // Introspection for tests and invariant checks
    // ------------------------------------------------------------------

    /// Objects currently homed at this node (sorted, for deterministic
    /// tests).
    pub fn homed_objects(&self) -> Vec<ObjectId> {
        let mut v = Vec::new();
        for shard in self.shards.iter() {
            shard.lock().homed_objects(&mut v);
        }
        v.sort();
        v
    }

    /// A snapshot of the migration bookkeeping of an object homed here, if
    /// any.
    pub fn migration_state(&self, obj: ObjectId) -> Option<MigrationState> {
        self.shard(obj).migration_state(obj)
    }

    /// The current version of the home copy of `obj`, if homed here.
    pub fn home_version(&self, obj: ObjectId) -> Option<Version> {
        self.shard(obj).home_version(obj)
    }

    /// Snapshot of a home copy's bytes (tests and invariant checks).
    pub fn home_bytes(&self, obj: ObjectId) -> Option<Vec<u8>> {
        self.shard(obj).home_bytes(obj)
    }
}

/// The lock stripe an object maps to: fold the high half of the (already
/// FNV-mixed) id into the low half and mask. `count` must be a power of two.
fn shard_index(obj: ObjectId, count: usize) -> usize {
    debug_assert!(count.is_power_of_two());
    let h = obj.raw();
    ((h ^ (h >> 32)) as usize) & (count - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NotificationMechanism;
    use crate::migration::MigrationPolicy;
    use dsm_objspace::HomeAssignment;

    const N: usize = 3;

    /// Build a registry with a single 64-byte object "x" homed (initially)
    /// on node 0, plus a second object "y" homed on node 1.
    fn registry() -> Arc<ObjectRegistry> {
        let mut r = ObjectRegistry::new();
        r.register_named("x", 0, 64, NodeId(0), HomeAssignment::CreationNode);
        r.register_named("y", 0, 64, NodeId(1), HomeAssignment::CreationNode);
        Arc::new(r)
    }

    fn engines(config: ProtocolConfig) -> Vec<ProtocolEngine> {
        let reg = registry();
        (0..N)
            .map(|i| ProtocolEngine::new(NodeId::from(i), N, config.clone(), Arc::clone(&reg)))
            .collect()
    }

    fn obj_x() -> ObjectId {
        ObjectId::derive("x", 0)
    }

    /// Drive one "remote write interval" of `writer` against the cluster:
    /// fault-in from whoever is home, write a byte, flush the diff. Returns
    /// the number of redirection hops experienced.
    fn remote_write_interval(engines: &[ProtocolEngine], writer: usize, value: u8) -> u32 {
        let obj = obj_x();
        engines[writer].begin_interval();
        let mut hops = 0;
        // Fault-in (write fault).
        if let AccessPlan::Fetch { mut target } = engines[writer].plan_write(obj) {
            loop {
                let requester = engines[writer].node();
                match engines[target.index()].handle_object_request(obj, requester, true, hops) {
                    ObjectRequestOutcome::Reply {
                        data,
                        version,
                        migration,
                        ..
                    } => {
                        engines[writer].install_object(obj, data, version, migration);
                        break;
                    }
                    ObjectRequestOutcome::Redirect { hint, epoch } => {
                        engines[writer].note_redirect(obj, hint, epoch);
                        hops += 1;
                        assert!(
                            hops <= engines.len() as u32 + 2,
                            "redirection chain for {obj} did not converge"
                        );
                        target = hint;
                    }
                    ObjectRequestOutcome::Busy => {
                        unreachable!("no views are live in single-threaded tests")
                    }
                }
            }
            // Retry the write plan now that the copy is present.
            assert_eq!(engines[writer].plan_write(obj), AccessPlan::LocalHit);
        }
        engines[writer].with_object_mut(obj, |d| d.bytes_mut()[0] = value);
        // Release: flush diffs (if the writer is now home there are none).
        let plans = engines[writer].prepare_release();
        for plan in plans {
            let mut target = plan.target;
            let mut flush_hops = 0;
            loop {
                let from = engines[writer].node();
                match engines[target.index()].handle_diff(plan.obj, &plan.diff, from, flush_hops) {
                    DiffOutcome::Applied { new_version } => {
                        engines[writer].complete_flush(plan.obj, new_version);
                        break;
                    }
                    DiffOutcome::Redirect { hint, epoch } => {
                        engines[writer].note_redirect(plan.obj, hint, epoch);
                        flush_hops += 1;
                        hops += 1;
                        assert!(
                            flush_hops <= engines.len() as u32 + 2,
                            "diff redirection chain for {} did not converge",
                            plan.obj
                        );
                        target = hint;
                    }
                    DiffOutcome::Busy => {
                        unreachable!("no views are live in single-threaded tests")
                    }
                }
            }
        }
        engines[writer].finish_release();
        hops
    }

    #[test]
    fn initial_homes_follow_registry() {
        let engines = engines(ProtocolConfig::no_migration());
        assert!(engines[0].is_home(obj_x()));
        assert!(!engines[1].is_home(obj_x()));
        assert_eq!(engines[1].home_hint(obj_x()), NodeId(0));
        assert_eq!(engines[0].homed_objects(), vec![obj_x()]);
        assert_eq!(engines[1].home_epoch(obj_x()), 0);
    }

    #[test]
    fn local_home_access_never_needs_fetch() {
        let engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        assert_eq!(engines[0].plan_read(obj), AccessPlan::LocalHit);
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        engines[0].with_object_mut(obj, |d| d.bytes_mut()[0] = 7);
        assert!(engines[0].prepare_release().is_empty());
        engines[0].finish_release();
        assert_eq!(engines[0].stats().home_reads, 1);
        assert_eq!(engines[0].stats().home_writes, 1);
        assert_eq!(engines[0].stats().fault_ins, 0);
        assert_eq!(engines[0].home_version(obj), Some(Version(1)));
    }

    #[test]
    fn leases_expose_engine_storage() {
        let engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        {
            let store = engines[0].lease_write(obj);
            store.write().bytes_mut()[0] = 42;
        }
        // The write went straight into the home copy, no copy-back needed.
        assert_eq!(engines[0].home_bytes(obj).unwrap()[0], 42);
        let store = engines[0].lease_read(obj);
        assert_eq!(store.read().bytes()[0], 42);
    }

    #[test]
    fn checked_leases_validate_state_under_the_shard_lock() {
        let engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        // No write plan yet: the checked write lease refuses.
        assert!(engines[0].try_lease_write(obj).is_none());
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        {
            let mut guard = engines[0]
                .try_lease_write(obj)
                .expect("writable after plan");
            guard.bytes_mut()[0] = 9;
        }
        // Home copies are always readable through the checked read lease.
        let guard = engines[0].try_lease_read(obj).expect("home copy readable");
        assert_eq!(guard.bytes()[0], 9);
        // A node with no copy at all gets `None`, not a panic.
        assert!(engines[1].try_lease_read(obj).is_none());
        assert!(engines[1].try_lease_write(obj).is_none());
    }

    #[test]
    fn busy_home_copy_defers_requests_and_diffs() {
        let engines = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        engines[0].begin_interval();
        assert_eq!(engines[0].plan_write(obj), AccessPlan::LocalHit);
        let store = engines[0].lease_write(obj);
        let guard = store.write();
        // A write lease blocks both server-side payload operations ...
        assert_eq!(
            engines[0].handle_object_request(obj, NodeId(1), false, 0),
            ObjectRequestOutcome::Busy
        );
        let diff = Diff::full(&[1u8; 64]);
        assert_eq!(
            engines[0].handle_diff(obj, &diff, NodeId(1), 0),
            DiffOutcome::Busy
        );
        drop(guard);
        // ... and the retries succeed once the view drops.
        assert!(matches!(
            engines[0].handle_object_request(obj, NodeId(1), false, 0),
            ObjectRequestOutcome::Reply { .. }
        ));
        assert!(matches!(
            engines[0].handle_diff(obj, &diff, NodeId(1), 0),
            DiffOutcome::Applied { .. }
        ));
    }

    #[test]
    fn remote_write_faults_in_and_flushes_diff() {
        let e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        let hops = remote_write_interval(&e, 1, 42);
        assert_eq!(hops, 0);
        assert_eq!(e[1].stats().fault_ins, 1);
        assert_eq!(e[1].stats().diffs_sent, 1);
        assert_eq!(e[0].stats().requests_served, 1);
        assert_eq!(e[0].stats().diffs_applied, 1);
        // The home copy reflects the remote write.
        assert_eq!(e[0].home_bytes(obj).unwrap()[0], 42);
        assert_eq!(e[0].home_version(obj), Some(Version(1)));
        // No migration under the NoHM policy.
        assert!(e[0].is_home(obj));
        assert_eq!(e[0].stats().migrations_out, 0);
    }

    #[test]
    fn no_migration_policy_keeps_paying_remote_access() {
        let e = engines(ProtocolConfig::no_migration());
        for i in 0..10 {
            // Write values 1..=10 so every interval really changes the object
            // (writing 0 over the zero-initialised object would be a no-op
            // interval with no diff to flush).
            remote_write_interval(&e, 1, i + 1);
        }
        assert!(e[0].is_home(obj_x()));
        assert_eq!(e[1].stats().fault_ins, 10);
        assert_eq!(e[1].stats().diffs_sent, 10);
    }

    #[test]
    fn adaptive_policy_migrates_to_single_writer() {
        let e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        // Interval 1: node 1 writes; home still node 0 (C becomes 1).
        remote_write_interval(&e, 1, 1);
        assert!(e[0].is_home(obj));
        // Interval 2: node 1 faults again; with T=1 and C=1 the home migrates
        // together with the reply.
        remote_write_interval(&e, 1, 2);
        assert!(
            e[1].is_home(obj),
            "home should have migrated to the single writer"
        );
        assert!(!e[0].is_home(obj));
        assert_eq!(e[0].stats().migrations_out, 1);
        assert_eq!(e[1].stats().migrations_in, 1);
        // The epoch advanced with the migration, on both ends.
        assert_eq!(e[1].home_epoch(obj), 1);
        assert_eq!(e[0].home_epoch(obj), 1);
        assert_eq!(e[0].home_hint(obj), NodeId(1));
        // Interval 3+: accesses are purely local for node 1.
        let before = e[1].stats().fault_ins;
        remote_write_interval(&e, 1, 3);
        assert_eq!(
            e[1].stats().fault_ins,
            before,
            "no further fault-ins after migration"
        );
        assert_eq!(e[1].home_bytes(obj).unwrap()[0], 3);
    }

    #[test]
    fn fixed_threshold_two_migrates_one_interval_later_than_adaptive() {
        let adaptive = engines(ProtocolConfig::adaptive());
        let ft2 = engines(ProtocolConfig::fixed_threshold(2));
        remote_write_interval(&adaptive, 1, 1);
        remote_write_interval(&ft2, 1, 1);
        remote_write_interval(&adaptive, 1, 2);
        remote_write_interval(&ft2, 1, 2);
        assert!(adaptive[1].is_home(obj_x()), "AT migrates at the 2nd fault");
        assert!(
            !ft2[1].is_home(obj_x()),
            "FT2 needs C=2 before the next fault"
        );
        remote_write_interval(&ft2, 1, 3);
        assert!(ft2[1].is_home(obj_x()), "FT2 migrates once C reaches 2");
    }

    #[test]
    fn redirection_chain_resolves_and_counts() {
        // Move the home from 0 to 1, then have node 2 request it while still
        // believing node 0 is the home: node 0 redirects (1 hop), node 1
        // serves the request and records the redirection as feedback.
        let e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        remote_write_interval(&e, 1, 1);
        remote_write_interval(&e, 1, 2);
        assert!(e[1].is_home(obj));

        e[2].begin_interval();
        assert_eq!(
            e[2].plan_read(obj),
            AccessPlan::Fetch { target: NodeId(0) },
            "node 2 still believes the initial home"
        );
        let mut hops = 0;
        let mut target = NodeId(0);
        loop {
            match e[target.index()].handle_object_request(obj, NodeId(2), false, hops) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    assert!(migration.is_none(), "a reader must not steal the home");
                    e[2].install_object(obj, data, version, migration);
                    break;
                }
                ObjectRequestOutcome::Redirect { hint, epoch } => {
                    e[2].note_redirect(obj, hint, epoch);
                    hops += 1;
                    target = hint;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(hops, 1);
        assert_eq!(e[0].stats().redirections_served, 1);
        assert_eq!(e[2].stats().redirections_suffered, 1);
        assert_eq!(e[2].home_hint(obj), NodeId(1), "the fresh hint was adopted");
        assert_eq!(e[2].plan_read(obj), AccessPlan::LocalHit);
        e[2].with_object(obj, |d| assert_eq!(d.bytes()[0], 2));
        // The redirection became negative feedback at the current home.
        assert_eq!(e[1].migration_state(obj).unwrap().redirected_requests, 1);
    }

    #[test]
    fn stale_hints_are_not_adopted() {
        let e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        // Home migrates 0 -> 1 (epoch 1); node 1's belief points at itself.
        remote_write_interval(&e, 1, 1);
        remote_write_interval(&e, 1, 2);
        assert!(e[1].is_home(obj));
        // A stale hint claiming node 0 (epoch 0) must not regress node 2's
        // belief once it has adopted epoch 1, and a self-hint must never be
        // adopted at all.
        assert!(e[2].note_redirect(obj, NodeId(1), 1), "fresh hint adopted");
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        assert!(
            !e[2].note_redirect(obj, NodeId(0), 0),
            "stale hint rejected"
        );
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        assert!(!e[2].note_redirect(obj, NodeId(2), 5), "self hint rejected");
        assert_eq!(e[2].home_hint(obj), NodeId(1));
    }

    #[test]
    fn alternating_writers_with_adaptive_threshold_migrate_less_than_ft1() {
        // Transient single-writer pattern: writers 1 and 2 take turns in
        // bursts of two intervals. FT1 migrates on every burst; AT observes
        // the redirection feedback and is at most as eager, never more.
        let at = engines(ProtocolConfig::adaptive());
        let ft1 = engines(ProtocolConfig::fixed_threshold(1));
        for round in 0..16 {
            let writer = 1 + ((round / 2) % 2);
            remote_write_interval(&at, writer, round as u8);
            remote_write_interval(&ft1, writer, round as u8);
        }
        let at_migrations: u64 = at.iter().map(|e| e.stats().migrations_out).sum();
        let ft1_migrations: u64 = ft1.iter().map(|e| e.stats().migrations_out).sum();
        assert!(
            ft1_migrations >= 4,
            "FT1 should keep migrating under the alternating-burst pattern, got {ft1_migrations}"
        );
        assert!(
            at_migrations <= ft1_migrations,
            "AT ({at_migrations}) must not migrate more than FT1 ({ft1_migrations})"
        );
        // And the redirection traffic follows the same ordering.
        let at_redirs: u64 = at.iter().map(|e| e.stats().redirections_served).sum();
        let ft1_redirs: u64 = ft1.iter().map(|e| e.stats().redirections_served).sum();
        assert!(at_redirs <= ft1_redirs);
    }

    #[test]
    fn jump_policy_migrates_on_every_write_fault() {
        let cfg = ProtocolConfig::no_migration().with_migration(MigrationPolicy::MigrateOnRequest);
        let e = engines(cfg);
        remote_write_interval(&e, 1, 1);
        assert!(
            e[1].is_home(obj_x()),
            "JUMP migrates on the very first write fault"
        );
        remote_write_interval(&e, 2, 2);
        assert!(
            e[2].is_home(obj_x()),
            "JUMP migrates again to the next writer"
        );
        // Epochs advanced monotonically along the migrations.
        assert_eq!(e[2].home_epoch(obj_x()), 2);
    }

    #[test]
    fn migration_preserves_data_and_versions() {
        let e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        remote_write_interval(&e, 1, 11);
        remote_write_interval(&e, 1, 22);
        assert!(e[1].is_home(obj));
        // Version history: one diff applied at the old home (v1); the data
        // with value 22 was written locally at the new home after migration.
        assert_eq!(e[1].home_bytes(obj).unwrap()[0], 22);
        assert!(e[1].home_version(obj).unwrap() >= Version(1));
        // Exactly one node considers itself home.
        let home_count = e.iter().filter(|eng| eng.is_home(obj)).count();
        assert_eq!(home_count, 1);
    }

    #[test]
    fn bootstrap_seeds_only_the_home() {
        let e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        let data = ObjectData::from_bytes(vec![9u8; 64]);
        for eng in e.iter() {
            eng.bootstrap_object(obj, data.clone());
        }
        assert_eq!(e[0].home_bytes(obj).unwrap(), vec![9u8; 64]);
        assert!(e[1].home_bytes(obj).is_none());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bootstrap_rejects_wrong_size() {
        let e = engines(ProtocolConfig::no_migration());
        e[0].bootstrap_object(obj_x(), ObjectData::zeroed(8));
    }

    #[test]
    #[should_panic(expected = "without a write plan")]
    fn writing_without_plan_panics() {
        let e = engines(ProtocolConfig::no_migration());
        // plan_read only gives read permission at the home.
        e[0].begin_interval();
        let _ = e[0].plan_read(obj_x());
        e[0].with_object_mut(obj_x(), |d| d.bytes_mut()[0] = 1);
    }

    #[test]
    fn broadcast_notification_lists_all_other_nodes() {
        let cfg = ProtocolConfig::adaptive().with_notification(NotificationMechanism::Broadcast);
        let e = engines(cfg);
        let obj = obj_x();
        remote_write_interval(&e, 1, 1);
        // Second fault triggers migration; inspect the outcome directly.
        e[1].begin_interval();
        assert!(matches!(e[1].plan_write(obj), AccessPlan::Fetch { .. }));
        match e[0].handle_object_request(obj, NodeId(1), true, 0) {
            ObjectRequestOutcome::Reply {
                migration, notify, ..
            } => {
                assert!(migration.is_some());
                assert_eq!(
                    notify,
                    vec![NodeId(2)],
                    "everyone except old home and requester"
                );
            }
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn home_notify_updates_hint_monotonically() {
        let e = engines(ProtocolConfig::adaptive());
        let obj = obj_x();
        e[2].handle_home_notify(obj, NodeId(1), 1);
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        assert_eq!(e[2].handle_home_lookup(obj), NodeId(1));
        // An older notify does not regress the belief.
        e[2].handle_home_notify(obj, NodeId(0), 0);
        assert_eq!(e[2].home_hint(obj), NodeId(1));
        // A newer one advances it.
        e[2].handle_home_notify(obj, NodeId(0), 2);
        assert_eq!(e[2].home_hint(obj), NodeId(0));
        // A notify at the home's own (or an older) epoch does not confuse
        // the actual home.
        e[0].handle_home_notify(obj, NodeId(1), 0);
        assert_eq!(e[0].home_hint(obj), NodeId(0));
        assert!(e[0].is_home(obj));
        // But a strictly newer epoch naming another node means this home
        // was deposed while unreachable (a re-election ran without it): it
        // demotes its stale copy — the fencing path of crash recovery.
        e[0].handle_home_notify(obj, NodeId(1), 3);
        assert!(!e[0].is_home(obj));
        assert_eq!(e[0].home_hint(obj), NodeId(1));
        assert_eq!(e[0].stats().homes_fenced, 1);
    }

    #[test]
    fn interval_invalidation_forces_refetch_of_cached_copies() {
        let e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        // Node 1 reads the object (fault-in, then cached).
        e[1].begin_interval();
        if let AccessPlan::Fetch { target } = e[1].plan_read(obj) {
            match e[target.index()].handle_object_request(obj, NodeId(1), false, 0) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    e[1].install_object(obj, data, version, migration);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(e[1].plan_read(obj), AccessPlan::LocalHit);
        e[1].finish_release();
        // Next interval: the cached copy is conservatively invalidated.
        e[1].begin_interval();
        assert!(matches!(e[1].plan_read(obj), AccessPlan::Fetch { .. }));
        assert_eq!(e[1].stats().invalidations, 1);
    }

    #[test]
    fn unwritten_dirty_objects_produce_no_flush() {
        let e = engines(ProtocolConfig::no_migration());
        let obj = obj_x();
        e[1].begin_interval();
        if let AccessPlan::Fetch { target } = e[1].plan_write(obj) {
            match e[target.index()].handle_object_request(obj, NodeId(1), true, 0) {
                ObjectRequestOutcome::Reply {
                    data,
                    version,
                    migration,
                    ..
                } => {
                    e[1].install_object(obj, data, version, migration);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(e[1].plan_write(obj), AccessPlan::LocalHit);
        // The application "writes" the same value that was already there, so
        // the diff is empty and nothing is flushed.
        e[1].with_object_mut(obj, |d| d.bytes_mut()[0] = 0);
        assert!(e[1].prepare_release().is_empty());
        e[1].finish_release();
        assert_eq!(e[1].stats().diffs_sent, 0);
    }

    #[test]
    fn flush_plans_group_deterministically_by_home() {
        // Plans for three targets, deliberately interleaved and unsorted.
        let plan = |name: &str, i: u64, node: u16| FlushPlan {
            obj: ObjectId::derive(name, i),
            target: NodeId(node),
            diff: Diff::full(&[i as u8; 8]),
        };
        let plans = vec![
            plan("g", 4, 2),
            plan("g", 0, 1),
            plan("g", 3, 1),
            plan("g", 1, 2),
            plan("g", 2, 0),
        ];
        let batches = group_flush_plans(plans.clone());
        assert_eq!(batches.len(), 3);
        // Batches ordered by target, entries by object id.
        assert_eq!(
            batches.iter().map(|b| b.target).collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        for batch in &batches {
            let mut sorted = batch.entries.clone();
            sorted.sort_by_key(|p| p.obj);
            assert_eq!(batch.entries, sorted);
            assert!(batch.entries.iter().all(|p| p.target == batch.target));
        }
        let total: usize = batches.iter().map(|b| b.entries.len()).sum();
        assert_eq!(total, plans.len(), "no plan lost or duplicated");
        // Same input, same grouping — reproducibility.
        assert_eq!(batches, group_flush_plans(plans));
    }

    #[test]
    fn batch_counters_accumulate_in_stats() {
        let e = engines(ProtocolConfig::no_migration());
        assert_eq!(e[0].stats().batched_flushes, 0);
        e[0].note_diff_batch(3);
        e[0].note_diff_batch(2);
        let stats = e[0].stats();
        assert_eq!(stats.batched_flushes, 2);
        assert_eq!(stats.batch_entries, 5);
    }

    // ------------------------------------------------------------------
    // Sharding-specific tests
    // ------------------------------------------------------------------

    /// A registry with many objects, all initially homed on node 0.
    fn many_object_registry(count: usize) -> Arc<ObjectRegistry> {
        let mut r = ObjectRegistry::new();
        for i in 0..count {
            r.register_named("shard.obj", i as u64, 64, NodeId(0), HomeAssignment::Master);
        }
        Arc::new(r)
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_partitions_objects() {
        let reg = many_object_registry(128);
        let engine = ProtocolEngine::with_shards(
            NodeId(0),
            2,
            ProtocolConfig::no_migration(),
            Arc::clone(&reg),
            12,
        );
        assert_eq!(engine.shard_count(), 16, "12 rounds up to 16");
        // Every registered object is homed here exactly once (no shard lost
        // or duplicated an object), and the ids spread over several stripes.
        assert_eq!(engine.homed_objects().len(), 128);
        let mut used = std::collections::HashSet::new();
        for i in 0..128u64 {
            used.insert(engine.shard_of(ObjectId::derive("shard.obj", i)));
        }
        assert!(
            used.len() >= 8,
            "128 FNV-hashed ids should spread over many of 16 stripes, got {}",
            used.len()
        );
    }

    #[test]
    fn single_shard_engine_still_works() {
        let reg = many_object_registry(8);
        let engine =
            ProtocolEngine::with_shards(NodeId(0), 1, ProtocolConfig::no_migration(), reg, 1);
        assert_eq!(engine.shard_count(), 1);
        engine.begin_interval();
        for i in 0..8u64 {
            let obj = ObjectId::derive("shard.obj", i);
            assert_eq!(engine.plan_write(obj), AccessPlan::LocalHit);
            engine.with_object_mut(obj, |d| d.bytes_mut()[0] = i as u8 + 1);
        }
        engine.finish_release();
        for i in 0..8u64 {
            let obj = ObjectId::derive("shard.obj", i);
            assert_eq!(engine.home_bytes(obj).unwrap()[0], i as u8 + 1);
        }
    }

    #[test]
    fn stress_concurrent_server_traffic_on_distinct_objects() {
        // The whole point of the sharded engine: `&self` protocol handling
        // from many threads at once, with no external mutex. Four "remote
        // requester" threads hammer fault-ins and diffs for disjoint object
        // sets against one home engine while its own "application thread"
        // keeps doing local work, all through a shared reference.
        use std::sync::Barrier;
        let objects = 64usize;
        let reg = many_object_registry(objects);
        let home = Arc::new(ProtocolEngine::new(
            NodeId(0),
            5,
            ProtocolConfig::no_migration(),
            reg,
        ));
        let start = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let home = Arc::clone(&home);
            let start = Arc::clone(&start);
            handles.push(std::thread::spawn(move || {
                start.wait();
                let requester = NodeId(t as u16 + 1);
                for round in 0..50u64 {
                    for i in (t..objects as u64).step_by(4) {
                        let obj = ObjectId::derive("shard.obj", i);
                        match home.handle_object_request(obj, requester, true, 0) {
                            ObjectRequestOutcome::Reply { data, .. } => {
                                assert_eq!(data.len(), 64)
                            }
                            other => panic!("unexpected outcome {other:?}"),
                        }
                        let mut bytes = [0u8; 64];
                        bytes[0] = (round % 250) as u8 + 1;
                        let diff = Diff::full(&bytes);
                        assert!(matches!(
                            home.handle_diff(obj, &diff, requester, 0),
                            DiffOutcome::Applied { .. }
                        ));
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no requester thread may panic");
        }
        // Every object saw 50 requests and 50 diffs; nothing was lost.
        let stats = home.stats();
        assert_eq!(stats.requests_served, 4 * 50 * (objects as u64 / 4));
        assert_eq!(stats.diffs_applied, 4 * 50 * (objects as u64 / 4));
        for i in 0..objects as u64 {
            let obj = ObjectId::derive("shard.obj", i);
            assert_eq!(home.home_bytes(obj).unwrap()[0], 50);
        }
    }
}
