//! TSP — branch-and-bound travelling salesman.
//!
//! The paper solves a 12-city TSP with a parallel branch-and-bound
//! algorithm. The city distance matrix is shared read-only; the global best
//! bound is a small shared object protected by a lock and updated by
//! whichever node finds a better tour — a multiple-writer access pattern
//! with no lasting single writer, which is why the paper reports that home
//! migration neither helps nor hurts TSP.
//!
//! Work distribution: the first branching level (the choice of the second
//! city) is dealt round-robin to the cluster nodes; each node then explores
//! its subtrees depth-first, pruning against a locally cached copy of the
//! global bound that is refreshed under the lock at every subtree root and
//! whenever a better complete tour is found.

use crate::outcome::{AppRun, ResultSlot};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{Cluster, ClusterConfig, Matrix2dHandle, NodeCtx, ScalarHandle};
use dsm_util::SmallRng;

/// TSP workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TspParams {
    /// Number of cities (the paper uses 12).
    pub cities: usize,
    /// Seed for the deterministic city layout.
    pub seed: u64,
}

impl TspParams {
    /// The paper's configuration: 12 cities.
    pub fn paper() -> Self {
        TspParams {
            cities: 12,
            seed: 7,
        }
    }

    /// A small configuration for tests.
    pub fn small(cities: usize) -> Self {
        TspParams { cities, seed: 7 }
    }
}

/// Deterministic city distance matrix: cities on random points of a
/// 1000×1000 grid, Euclidean distances rounded to integers.
pub fn distance_matrix(params: &TspParams) -> Vec<Vec<u64>> {
    let n = params.cities;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range_f64(0.0, 1000.0),
                rng.gen_range_f64(0.0, 1000.0),
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let dx = points[i].0 - points[j].0;
                    let dy = points[i].1 - points[j].1;
                    (dx * dx + dy * dy).sqrt().round() as u64
                })
                .collect()
        })
        .collect()
}

/// Depth-first branch-and-bound from a partial tour. `best` is both pruning
/// bound and output (updated when a better complete tour is found).
fn branch_and_bound(
    dist: &[Vec<u64>],
    visited: &mut Vec<usize>,
    used: &mut Vec<bool>,
    length_so_far: u64,
    best: &mut u64,
    expansions: &mut u64,
) {
    let n = dist.len();
    *expansions += 1;
    if length_so_far >= *best {
        return;
    }
    if visited.len() == n {
        let total = length_so_far + dist[*visited.last().unwrap()][visited[0]];
        if total < *best {
            *best = total;
        }
        return;
    }
    let current = *visited.last().unwrap();
    // Order candidate cities by distance for faster convergence of the bound.
    let mut candidates: Vec<usize> = (0..n).filter(|&c| !used[c]).collect();
    candidates.sort_by_key(|&c| dist[current][c]);
    for next in candidates {
        let extended = length_so_far + dist[current][next];
        if extended >= *best {
            continue;
        }
        visited.push(next);
        used[next] = true;
        branch_and_bound(dist, visited, used, extended, best, expansions);
        used[next] = false;
        visited.pop();
    }
}

/// Sequential reference: the exact optimal tour length.
pub fn sequential(params: &TspParams) -> u64 {
    let dist = distance_matrix(params);
    let mut best = u64::MAX;
    let mut expansions = 0;
    let mut visited = vec![0usize];
    let mut used = vec![false; params.cities];
    used[0] = true;
    branch_and_bound(
        &dist,
        &mut visited,
        &mut used,
        0,
        &mut best,
        &mut expansions,
    );
    best
}

fn tsp_node(
    ctx: &NodeCtx,
    dist_rows: &Matrix2dHandle<u64>,
    best_handle: &ScalarHandle<u64>,
    params: &TspParams,
    slot: &ResultSlot<u64>,
) {
    let n = params.cities;
    let init_barrier = BarrierId(400);
    let done_barrier = BarrierId(401);
    let best_lock = LockId::derive("tsp.best.lock");

    let dist = distance_matrix(params);
    for (i, handle) in dist_rows.iter().enumerate() {
        ctx.bootstrap(handle, &dist[i]);
    }
    ctx.bootstrap(best_handle.array(), &[u64::MAX]);
    ctx.barrier(init_barrier);

    // Read the (immutable) distance matrix through the DSM: one fault-in per
    // row per node, cached for the rest of the run. The branch-and-bound
    // recursion wants owned rows, so this is a deliberate copy-out.
    let dist: Vec<Vec<u64>> = dist_rows.iter().map(|h| ctx.view(h).to_vec()).collect();

    // First-level branches (second city of the tour) dealt round-robin.
    let me = ctx.node_id().index();
    let nodes = ctx.num_nodes();
    let mut local_best = u64::MAX;
    let mut expansions = 0u64;
    for second in 1..n {
        if (second - 1) % nodes != me {
            continue;
        }
        // Refresh the bound from the shared object before the subtree.
        ctx.acquire(best_lock);
        local_best = local_best.min(best_handle.get(ctx));
        ctx.release(best_lock);

        let mut visited = vec![0usize, second];
        let mut used = vec![false; n];
        used[0] = true;
        used[second] = true;
        let before = local_best;
        branch_and_bound(
            &dist,
            &mut visited,
            &mut used,
            dist[0][second],
            &mut local_best,
            &mut expansions,
        );
        if local_best < before {
            // Found a better tour: publish it to the shared bound.
            ctx.acquire(best_lock);
            local_best = best_handle.update(ctx, |bound| bound.min(local_best));
            ctx.release(best_lock);
        }
    }
    // ~30 operations per tree expansion.
    ctx.compute(expansions * 30);

    ctx.barrier(done_barrier);
    if ctx.is_master() {
        slot.publish(best_handle.get(ctx));
    }
    ctx.barrier(done_barrier);
}

/// Run the DSM-parallel branch-and-bound TSP and return the optimal tour
/// length plus the execution report.
pub fn run(config: ClusterConfig, params: &TspParams) -> AppRun<u64> {
    let n = params.cities;
    assert!(n >= 3, "TSP needs at least three cities");
    let mut registry = ObjectRegistry::new();
    // The distance matrix is immutable after initialisation: one row object
    // per city, spread round-robin, flagged read-only (the GOS optimization).
    let dist_rows = Matrix2dHandle::<u64>::register_immutable(
        &mut registry,
        "tsp.dist",
        n,
        n,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let best: ScalarHandle<u64> = ScalarHandle::register(
        &mut registry,
        "tsp.best",
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    let slot = ResultSlot::new();
    let slot_in = slot.clone();
    let params_in = params.clone();
    let report = Cluster::new(config, registry).run(move |ctx| {
        tsp_node(ctx, &dist_rows, &best, &params_in, &slot_in);
    });
    AppRun {
        result: slot.take(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::ProtocolConfig;
    use dsm_model::ComputeModel;

    fn cfg(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
        ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let d = distance_matrix(&TspParams::small(8));
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, d[j][i]);
            }
        }
    }

    #[test]
    fn sequential_finds_the_optimum_of_a_tiny_instance() {
        // Brute force the optimum for 7 cities and compare.
        let params = TspParams::small(7);
        let dist = distance_matrix(&params);
        let n = 7;
        let mut best = u64::MAX;
        let mut perm: Vec<usize> = (1..n).collect();
        // Heap's algorithm over the remaining cities.
        fn heaps(perm: &mut Vec<usize>, k: usize, dist: &[Vec<u64>], best: &mut u64) {
            if k == 1 {
                let mut len = 0;
                let mut prev = 0usize;
                for &c in perm.iter() {
                    len += dist[prev][c];
                    prev = c;
                }
                len += dist[prev][0];
                *best = (*best).min(len);
                return;
            }
            for i in 0..k {
                heaps(perm, k - 1, dist, best);
                if k.is_multiple_of(2) {
                    perm.swap(i, k - 1);
                } else {
                    perm.swap(0, k - 1);
                }
            }
        }
        let len = perm.len();
        heaps(&mut perm, len, &dist, &mut best);
        assert_eq!(sequential(&params), best);
    }

    #[test]
    fn parallel_finds_the_same_optimum() {
        let params = TspParams::small(9);
        let optimum = sequential(&params);
        let run = run(cfg(4, ProtocolConfig::adaptive()), &params);
        assert_eq!(run.result, optimum);
        assert!(run.report.protocol.lock_acquires > 0);
    }

    #[test]
    fn home_migration_changes_little_for_tsp() {
        let params = TspParams::small(9);
        let with = run(cfg(3, ProtocolConfig::adaptive()), &params);
        let without = run(cfg(3, ProtocolConfig::no_migration()), &params);
        assert_eq!(with.result, without.result);
        // The shared bound is written by many nodes under a lock: no lasting
        // single-writer pattern, so the two protocols stay within a modest
        // factor of each other in coherence traffic.
        let a = with.report.breakdown_messages() as f64;
        let b = without.report.breakdown_messages() as f64;
        assert!(
            (a - b).abs() / b.max(1.0) < 0.5,
            "TSP should be largely insensitive to HM: {a} vs {b}"
        );
    }
}
