//! SOR — red-black successive over-relaxation on a 2-D matrix.
//!
//! The paper runs SOR on a 2048×2048 matrix. In Java the matrix is an array
//! of row array objects, so each row is one coherence unit; rows are
//! initially homed round-robin across the cluster for load balance, which
//! means most rows do *not* start at the node that will write them — the
//! exact situation home migration exists to fix. Each node owns a contiguous
//! band of rows, updates them every phase (red then black), and reads the
//! boundary rows of its neighbours; two barriers per iteration separate the
//! phases.

use crate::outcome::{AppRun, ResultSlot};
use dsm_objspace::{BarrierId, HomeAssignment, NodeId, ObjectRegistry};
use dsm_runtime::{Cluster, ClusterConfig, Matrix2dHandle, NodeCtx};

/// SOR workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SorParams {
    /// Matrix is `size × size`.
    pub size: usize,
    /// Number of red-black iterations.
    pub iterations: usize,
    /// Over-relaxation factor ω.
    pub omega: f64,
}

impl SorParams {
    /// The paper's configuration: 2048×2048.
    pub fn paper() -> Self {
        SorParams {
            size: 2048,
            iterations: 10,
            omega: 1.25,
        }
    }

    /// A small configuration for tests and quick benchmarks.
    pub fn small(size: usize, iterations: usize) -> Self {
        SorParams {
            size,
            iterations,
            omega: 1.25,
        }
    }
}

/// Deterministic initial contents of row `i`: a hot top edge and cold
/// interior (classic heat-diffusion boundary conditions).
pub fn initial_row(size: usize, i: usize) -> Vec<f64> {
    if i == 0 {
        vec![1.0; size]
    } else {
        let mut row = vec![0.0; size];
        row[0] = 0.5;
        row[size - 1] = 0.5;
        row
    }
}

/// Contiguous band of rows owned by `node` out of `nodes` (all rows,
/// including the fixed boundary rows which are simply never updated).
pub fn band(node: usize, nodes: usize, size: usize) -> (usize, usize) {
    let per = size.div_ceil(nodes);
    let lo = (node * per).min(size);
    let hi = ((node + 1) * per).min(size);
    (lo, hi)
}

/// One red or black half-iteration applied to `matrix` (sequential, in
/// place). `phase` is 0 for red cells (`(i + j) % 2 == 0`) and 1 for black.
fn relax_phase(matrix: &mut [Vec<f64>], omega: f64, phase: usize) {
    let n = matrix.len();
    for i in 1..n - 1 {
        for j in 1..n - 1 {
            if (i + j) % 2 == phase {
                let neighbours =
                    matrix[i - 1][j] + matrix[i + 1][j] + matrix[i][j - 1] + matrix[i][j + 1];
                matrix[i][j] = (1.0 - omega) * matrix[i][j] + omega * 0.25 * neighbours;
            }
        }
    }
}

/// Sequential reference implementation.
pub fn sequential(params: &SorParams) -> Vec<Vec<f64>> {
    let n = params.size;
    let mut matrix: Vec<Vec<f64>> = (0..n).map(|i| initial_row(n, i)).collect();
    for _ in 0..params.iterations {
        relax_phase(&mut matrix, params.omega, 0);
        relax_phase(&mut matrix, params.omega, 1);
    }
    matrix
}

/// A scalar fingerprint of a matrix, used to compare runs cheaply.
pub fn checksum(matrix: &[Vec<f64>]) -> f64 {
    matrix
        .iter()
        .enumerate()
        .map(|(i, row)| row.iter().sum::<f64>() * (i as f64 + 1.0))
        .sum()
}

/// The per-node body of the DSM-parallel SOR.
fn sor_node(
    ctx: &NodeCtx,
    rows: &Matrix2dHandle<f64>,
    params: &SorParams,
    slot: &ResultSlot<Vec<Vec<f64>>>,
) {
    let n = params.size;
    let nodes = ctx.num_nodes();
    let init_barrier = BarrierId(100);
    let phase_barrier = BarrierId(101);
    let done_barrier = BarrierId(102);

    // Every node computes the same initial contents; only each row's home
    // stores them.
    for (i, handle) in rows.iter().enumerate() {
        ctx.bootstrap(handle, &initial_row(n, i));
    }
    ctx.barrier(init_barrier);

    let (lo, hi) = band(ctx.node_id().index(), nodes, n);
    for _ in 0..params.iterations {
        for phase in 0..2 {
            for i in lo..hi {
                if i == 0 || i == n - 1 {
                    continue;
                }
                // Zero-copy views: the neighbour rows are borrowed shared,
                // the updated row mutably — all directly over the engine's
                // storage, so a row homed here is relaxed fully in place.
                // Red-black cells only read the opposite colour, so the
                // in-place update is exact (identical to the sequential
                // reference).
                let above = ctx.view(rows.row(i - 1));
                let below = ctx.view(rows.row(i + 1));
                let mut current = ctx.view_mut(rows.row(i));
                for j in 1..n - 1 {
                    if (i + j) % 2 == phase {
                        let neighbours = above[j] + below[j] + current[j - 1] + current[j + 1];
                        current[j] =
                            (1.0 - params.omega) * current[j] + params.omega * 0.25 * neighbours;
                    }
                }
                drop(current);
                drop(below);
                drop(above);
                // Roughly five floating point operations per updated cell.
                ctx.compute_elements((n / 2) as u64, 5);
            }
            ctx.barrier(phase_barrier);
        }
    }

    if ctx.is_master() {
        let result: Vec<Vec<f64>> = rows.iter().map(|h| ctx.view(h).to_vec()).collect();
        slot.publish(result);
    }
    ctx.barrier(done_barrier);
}

/// Run the DSM-parallel SOR on a cluster and return the final matrix plus
/// the execution report.
pub fn run(config: ClusterConfig, params: &SorParams) -> AppRun<Vec<Vec<f64>>> {
    let n = params.size;
    assert!(n >= 4, "SOR needs at least a 4x4 matrix");
    let mut registry = ObjectRegistry::new();
    let rows = Matrix2dHandle::<f64>::register(
        &mut registry,
        "sor.matrix",
        n,
        n,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let slot = ResultSlot::new();
    let slot_in = slot.clone();
    let params_in = params.clone();
    let report = Cluster::new(config, registry).run(move |ctx| {
        sor_node(ctx, &rows, &params_in, &slot_in);
    });
    AppRun {
        result: slot.take(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::ProtocolConfig;
    use dsm_model::ComputeModel;

    fn cfg(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
        ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
    }

    #[test]
    fn band_decomposition_covers_all_rows() {
        let n = 37;
        let nodes = 4;
        let mut covered = vec![false; n];
        for node in 0..nodes {
            let (lo, hi) = band(node, nodes, n);
            for slot in covered.iter_mut().take(hi).skip(lo) {
                assert!(!*slot);
                *slot = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn sequential_sor_diffuses_heat_downwards() {
        let m = sequential(&SorParams::small(16, 8));
        // Heat flows from the hot top edge into the interior.
        assert!(m[1][8] > 0.0);
        assert!(m[1][8] > m[8][8]);
        // The boundary stays fixed.
        assert_eq!(m[0][3], 1.0);
        assert_eq!(m[15][3], 0.0);
    }

    #[test]
    fn parallel_matches_sequential_with_adaptive_policy() {
        let params = SorParams::small(16, 4);
        let seq = sequential(&params);
        let run = run(cfg(4, ProtocolConfig::adaptive()), &params);
        assert_eq!(run.result.len(), 16);
        for (i, row) in run.result.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, seq[i][j], "mismatch at ({i},{j})");
            }
        }
        assert!(
            run.report.migrations() > 0,
            "round-robin rows should migrate to writers"
        );
    }

    #[test]
    fn parallel_matches_sequential_without_migration() {
        let params = SorParams::small(12, 3);
        let seq = sequential(&params);
        let run = run(cfg(3, ProtocolConfig::no_migration()), &params);
        assert!((checksum(&run.result) - checksum(&seq)).abs() < 1e-12);
        assert_eq!(run.report.migrations(), 0);
    }

    #[test]
    fn migration_reduces_messages_and_time() {
        let params = SorParams::small(16, 4);
        let with = run(cfg(4, ProtocolConfig::adaptive()), &params);
        let without = run(cfg(4, ProtocolConfig::no_migration()), &params);
        assert_eq!(checksum(&with.result), checksum(&without.result));
        assert!(
            with.report.breakdown_messages() < without.report.breakdown_messages(),
            "HM should reduce coherence messages ({} vs {})",
            with.report.breakdown_messages(),
            without.report.breakdown_messages()
        );
        assert!(with.report.execution_time < without.report.execution_time);
    }
}
