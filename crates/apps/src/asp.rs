//! ASP — all-pairs shortest paths with a parallel Floyd–Warshall algorithm.
//!
//! The paper computes shortest paths between all pairs of a 1024-node graph.
//! The distance matrix is shared as one row object per graph vertex; rows are
//! homed round-robin initially, while each cluster node *updates* a
//! contiguous band of rows — so, as in SOR, the writing node is usually not
//! the home and home migration relocates each row after the first iteration.
//! Every pivot iteration `k` all nodes read row `k` and update their own
//! band, then cross a barrier.

use crate::outcome::{AppRun, ResultSlot};
use crate::sor::band;
use dsm_objspace::{BarrierId, HomeAssignment, NodeId, ObjectRegistry};
use dsm_runtime::{Cluster, ClusterConfig, Matrix2dHandle, NodeCtx};
use dsm_util::SmallRng;

/// ASP workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AspParams {
    /// Number of graph vertices (the paper uses 1024).
    pub vertices: usize,
    /// Seed of the deterministic random graph generator.
    pub seed: u64,
    /// Edges are drawn uniformly from `1..=max_weight`.
    pub max_weight: u32,
}

impl AspParams {
    /// The paper's configuration: a 1024-vertex graph.
    pub fn paper() -> Self {
        AspParams {
            vertices: 1024,
            seed: 20040923,
            max_weight: 100,
        }
    }

    /// A small configuration for tests and quick benchmarks.
    pub fn small(vertices: usize) -> Self {
        AspParams {
            vertices,
            seed: 20040923,
            max_weight: 100,
        }
    }
}

/// Generate the weight matrix of the random dense graph deterministically
/// (every node generates the same graph from the same seed, exactly like
/// every JVM node executing the same initialisation code).
pub fn generate_graph(params: &AspParams) -> Vec<Vec<f64>> {
    let n = params.vertices;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut matrix = vec![vec![0.0f64; n]; n];
    for (i, row) in matrix.iter_mut().enumerate() {
        for (j, weight) in row.iter_mut().enumerate() {
            if i != j {
                *weight = f64::from(rng.gen_range_u32(1, params.max_weight));
            }
        }
    }
    matrix
}

/// Sequential Floyd–Warshall reference.
pub fn sequential(params: &AspParams) -> Vec<Vec<f64>> {
    let mut dist = generate_graph(params);
    let n = params.vertices;
    for k in 0..n {
        let pivot = dist[k].clone();
        for row in dist.iter_mut() {
            let dik = row[k];
            for (cell, through_pivot) in row.iter_mut().zip(pivot.iter()) {
                let candidate = dik + through_pivot;
                if candidate < *cell {
                    *cell = candidate;
                }
            }
        }
    }
    dist
}

/// A scalar fingerprint of a distance matrix.
pub fn checksum(matrix: &[Vec<f64>]) -> f64 {
    matrix
        .iter()
        .enumerate()
        .map(|(i, row)| row.iter().sum::<f64>() * ((i % 7) as f64 + 1.0))
        .sum()
}

fn asp_node(
    ctx: &NodeCtx,
    rows: &Matrix2dHandle<f64>,
    params: &AspParams,
    slot: &ResultSlot<Vec<Vec<f64>>>,
) {
    let n = params.vertices;
    let init_barrier = BarrierId(200);
    let pivot_barrier = BarrierId(201);
    let done_barrier = BarrierId(202);

    let graph = generate_graph(params);
    for (i, handle) in rows.iter().enumerate() {
        ctx.bootstrap(handle, &graph[i]);
    }
    ctx.barrier(init_barrier);

    let (lo, hi) = band(ctx.node_id().index(), ctx.num_nodes(), n);
    for k in 0..n {
        // The pivot row is shared read-only this iteration: a zero-copy
        // read view (at its home this borrows the home copy in place).
        let pivot_row = ctx.view(rows.row(k));
        for i in lo..hi {
            if i == k {
                // Row k cannot be improved through itself.
                continue;
            }
            // First pass over a read view decides whether the row improves
            // at all, so unchanged rows never take a write fault (their
            // interval stays read-only, exactly like the old copy-out code).
            let current = ctx.view(rows.row(i));
            let dik = current[k];
            let changed = (0..n).any(|j| dik + pivot_row[j] < current[j]);
            drop(current);
            if changed {
                // Second pass relaxes the row in place through a write
                // view. In-place is exact: column k can only tighten to
                // dik + pivot[k] = dik (pivot diagonal is zero), so later
                // columns read the same dik the copy-out version used.
                let mut row = ctx.view_mut(rows.row(i));
                for j in 0..n {
                    let candidate = dik + pivot_row[j];
                    if candidate < row[j] {
                        row[j] = candidate;
                    }
                }
            }
            // One add + compare per column.
            ctx.compute_elements(n as u64, 2);
        }
        drop(pivot_row);
        ctx.barrier(pivot_barrier);
    }

    if ctx.is_master() {
        let result: Vec<Vec<f64>> = rows.iter().map(|h| ctx.view(h).to_vec()).collect();
        slot.publish(result);
    }
    ctx.barrier(done_barrier);
}

/// Run the DSM-parallel ASP and return the distance matrix plus the
/// execution report.
pub fn run(config: ClusterConfig, params: &AspParams) -> AppRun<Vec<Vec<f64>>> {
    let n = params.vertices;
    assert!(n >= 2, "ASP needs at least two vertices");
    let mut registry = ObjectRegistry::new();
    let rows = Matrix2dHandle::<f64>::register(
        &mut registry,
        "asp.dist",
        n,
        n,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let slot = ResultSlot::new();
    let slot_in = slot.clone();
    let params_in = params.clone();
    let report = Cluster::new(config, registry).run(move |ctx| {
        asp_node(ctx, &rows, &params_in, &slot_in);
    });
    AppRun {
        result: slot.take(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::ProtocolConfig;
    use dsm_model::ComputeModel;

    fn cfg(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
        ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let p = AspParams::small(12);
        assert_eq!(generate_graph(&p), generate_graph(&p));
        let other = AspParams {
            seed: 1,
            ..AspParams::small(12)
        };
        assert_ne!(generate_graph(&p), generate_graph(&other));
    }

    #[test]
    fn sequential_floyd_satisfies_triangle_inequality() {
        let p = AspParams::small(24);
        let d = sequential(&p);
        for i in 0..24 {
            assert_eq!(d[i][i], 0.0);
            for j in 0..24 {
                for k in 0..24 {
                    assert!(
                        d[i][j] <= d[i][k] + d[k][j] + 1e-9,
                        "triangle inequality violated at ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = AspParams::small(20);
        let seq = sequential(&p);
        let run = run(cfg(4, ProtocolConfig::adaptive()), &p);
        for (i, (got, want)) in run.result.iter().zip(seq.iter()).enumerate() {
            for (j, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(g, w, "mismatch at ({i},{j})");
            }
        }
        assert!(run.report.migrations() > 0);
    }

    #[test]
    fn migration_reduces_messages_versus_no_migration() {
        let p = AspParams::small(24);
        let with = run(cfg(4, ProtocolConfig::adaptive()), &p);
        let without = run(cfg(4, ProtocolConfig::no_migration()), &p);
        assert_eq!(checksum(&with.result), checksum(&without.result));
        assert!(with.report.breakdown_messages() < without.report.breakdown_messages());
        assert!(with.report.execution_time < without.report.execution_time);
    }
}
