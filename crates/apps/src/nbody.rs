//! Nbody — Barnes–Hut gravitational simulation.
//!
//! The paper simulates 2048 particles with the Barnes–Hut algorithm. Bodies
//! are partitioned into one block per cluster node; every step each node
//! reads all blocks, builds the quadtree, computes the forces on its own
//! bodies with the θ opening criterion, integrates them, writes its block
//! back and crosses a barrier.
//!
//! Body blocks are created (and therefore homed) on their owning node, so —
//! unlike ASP and SOR — the single-writer pattern is already satisfied by
//! the initial home placement and home migration has almost nothing to do.
//! This reproduces the paper's observation that "home migration has little
//! impact on the performance of Nbody … due to the lack of single-writer
//! pattern", while also showing that the protocol's overhead is negligible.

use crate::outcome::{AppRun, ResultSlot};
use dsm_objspace::{BarrierId, HomeAssignment, NodeId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ClusterConfig, NodeCtx};
use dsm_util::SmallRng;

/// Fields stored per body inside a block object: x, y, vx, vy, mass.
const FIELDS: usize = 5;
/// Gravitational constant of the toy universe.
const G: f64 = 6.674e-3;
/// Softening factor avoiding singularities for close encounters.
const SOFTENING: f64 = 1e-2;

/// Nbody workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NbodyParams {
    /// Total number of bodies (the paper uses 2048).
    pub bodies: usize,
    /// Number of simulation steps.
    pub steps: usize,
    /// Integration time step.
    pub dt: f64,
    /// Barnes–Hut opening angle θ.
    pub theta: f64,
    /// Seed for the deterministic initial conditions.
    pub seed: u64,
}

impl NbodyParams {
    /// The paper's configuration: 2048 bodies.
    pub fn paper() -> Self {
        NbodyParams {
            bodies: 2048,
            steps: 5,
            dt: 0.05,
            theta: 0.5,
            seed: 42,
        }
    }

    /// A small configuration for tests.
    pub fn small(bodies: usize, steps: usize) -> Self {
        NbodyParams {
            bodies,
            steps,
            dt: 0.05,
            theta: 0.5,
            seed: 42,
        }
    }
}

/// One body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub x: f64,
    /// Position.
    pub y: f64,
    /// Velocity.
    pub vx: f64,
    /// Velocity.
    pub vy: f64,
    /// Mass.
    pub mass: f64,
}

/// Deterministic initial conditions: bodies on a disc with small random
/// velocities.
pub fn initial_bodies(params: &NbodyParams) -> Vec<Body> {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    (0..params.bodies)
        .map(|_| {
            let r: f64 = rng.gen_range_f64(0.1, 1.0);
            let angle: f64 = rng.gen_range_f64(0.0, std::f64::consts::TAU);
            Body {
                x: r * angle.cos(),
                y: r * angle.sin(),
                vx: rng.gen_range_f64(-0.05, 0.05),
                vy: rng.gen_range_f64(-0.05, 0.05),
                mass: rng.gen_range_f64(0.5, 2.0),
            }
        })
        .collect()
}

fn encode_block(bodies: &[Body]) -> Vec<f64> {
    let mut out = Vec::with_capacity(bodies.len() * FIELDS);
    for b in bodies {
        out.extend_from_slice(&[b.x, b.y, b.vx, b.vy, b.mass]);
    }
    out
}

fn decode_block(values: &[f64]) -> Vec<Body> {
    values
        .chunks_exact(FIELDS)
        .map(|c| Body {
            x: c[0],
            y: c[1],
            vx: c[2],
            vy: c[3],
            mass: c[4],
        })
        .collect()
}

// ----------------------------------------------------------------------
// Barnes–Hut quadtree
// ----------------------------------------------------------------------

/// A square region of space.
#[derive(Debug, Clone, Copy)]
struct Quad {
    cx: f64,
    cy: f64,
    half: f64,
}

impl Quad {
    fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.cx - self.half
            && x <= self.cx + self.half
            && y >= self.cy - self.half
            && y <= self.cy + self.half
    }

    fn quadrant(&self, x: f64, y: f64) -> usize {
        let east = x > self.cx;
        let north = y > self.cy;
        match (north, east) {
            (true, true) => 0,
            (true, false) => 1,
            (false, false) => 2,
            (false, true) => 3,
        }
    }

    fn child(&self, quadrant: usize) -> Quad {
        let h = self.half / 2.0;
        let (dx, dy) = match quadrant {
            0 => (h, h),
            1 => (-h, h),
            2 => (-h, -h),
            _ => (h, -h),
        };
        Quad {
            cx: self.cx + dx,
            cy: self.cy + dy,
            half: h,
        }
    }
}

/// A Barnes–Hut quadtree node.
#[derive(Debug)]
enum TreeNode {
    Empty,
    Leaf {
        x: f64,
        y: f64,
        mass: f64,
    },
    Internal {
        mass: f64,
        com_x: f64,
        com_y: f64,
        children: Box<[Tree; 4]>,
    },
}

#[derive(Debug)]
struct Tree {
    quad: Quad,
    node: TreeNode,
}

impl Tree {
    fn new(quad: Quad) -> Self {
        Tree {
            quad,
            node: TreeNode::Empty,
        }
    }

    fn insert(&mut self, x: f64, y: f64, mass: f64) {
        if !self.quad.contains(x, y) {
            // Numerical drift can push a body marginally outside the root
            // region; clamp it to the boundary rather than losing it.
            let cx = x.clamp(self.quad.cx - self.quad.half, self.quad.cx + self.quad.half);
            let cy = y.clamp(self.quad.cy - self.quad.half, self.quad.cy + self.quad.half);
            return self.insert_contained(cx, cy, mass);
        }
        self.insert_contained(x, y, mass);
    }

    fn insert_contained(&mut self, x: f64, y: f64, mass: f64) {
        match &mut self.node {
            TreeNode::Empty => {
                self.node = TreeNode::Leaf { x, y, mass };
            }
            TreeNode::Leaf {
                x: lx,
                y: ly,
                mass: lmass,
            } => {
                let (lx, ly, lmass) = (*lx, *ly, *lmass);
                // Degenerate case: coincident bodies merge into one leaf to
                // keep the tree finite.
                if self.quad.half < 1e-9 || ((lx - x).abs() < 1e-12 && (ly - y).abs() < 1e-12) {
                    self.node = TreeNode::Leaf {
                        x: lx,
                        y: ly,
                        mass: lmass + mass,
                    };
                    return;
                }
                let children = Box::new([
                    Tree::new(self.quad.child(0)),
                    Tree::new(self.quad.child(1)),
                    Tree::new(self.quad.child(2)),
                    Tree::new(self.quad.child(3)),
                ]);
                self.node = TreeNode::Internal {
                    mass: 0.0,
                    com_x: 0.0,
                    com_y: 0.0,
                    children,
                };
                self.insert_contained(lx, ly, lmass);
                self.insert_contained(x, y, mass);
            }
            TreeNode::Internal {
                mass: total,
                com_x,
                com_y,
                children,
            } => {
                let new_total = *total + mass;
                *com_x = (*com_x * *total + x * mass) / new_total;
                *com_y = (*com_y * *total + y * mass) / new_total;
                *total = new_total;
                let q = self.quad.quadrant(x, y);
                children[q].insert_contained(x, y, mass);
            }
        }
    }

    /// Accumulated force on a unit at `(x, y)` with mass `mass`, using the θ
    /// opening criterion. Returns the number of interactions evaluated so
    /// the caller can charge computation proportionally.
    fn force(&self, x: f64, y: f64, mass: f64, theta: f64, fx: &mut f64, fy: &mut f64) -> u64 {
        match &self.node {
            TreeNode::Empty => 0,
            TreeNode::Leaf {
                x: ox,
                y: oy,
                mass: omass,
            } => {
                accumulate(x, y, mass, *ox, *oy, *omass, fx, fy);
                1
            }
            TreeNode::Internal {
                mass: total,
                com_x,
                com_y,
                children,
            } => {
                let dx = com_x - x;
                let dy = com_y - y;
                let dist = (dx * dx + dy * dy).sqrt().max(SOFTENING);
                if (self.quad.half * 2.0) / dist < theta {
                    accumulate(x, y, mass, *com_x, *com_y, *total, fx, fy);
                    1
                } else {
                    children
                        .iter()
                        .map(|c| c.force(x, y, mass, theta, fx, fy))
                        .sum()
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // two bodies and a force accumulator; a struct would obscure the physics
fn accumulate(x: f64, y: f64, mass: f64, ox: f64, oy: f64, omass: f64, fx: &mut f64, fy: &mut f64) {
    let dx = ox - x;
    let dy = oy - y;
    let dist_sq = dx * dx + dy * dy + SOFTENING * SOFTENING;
    let dist = dist_sq.sqrt();
    if dist < 1e-12 {
        return;
    }
    let f = G * mass * omass / dist_sq;
    *fx += f * dx / dist;
    *fy += f * dy / dist;
}

/// Build the quadtree over all bodies (insertion in global index order, so
/// parallel and sequential runs build identical trees).
fn build_tree(bodies: &[Body]) -> Tree {
    let extent = bodies
        .iter()
        .map(|b| b.x.abs().max(b.y.abs()))
        .fold(1.0f64, f64::max)
        * 1.1;
    let mut tree = Tree::new(Quad {
        cx: 0.0,
        cy: 0.0,
        half: extent,
    });
    for b in bodies {
        tree.insert(b.x, b.y, b.mass);
    }
    tree
}

/// Advance the bodies whose global indices are in `lo..hi` by one step,
/// using the tree built over all bodies. Returns the updated slice and the
/// number of interactions evaluated.
fn step_range(all: &[Body], lo: usize, hi: usize, params: &NbodyParams) -> (Vec<Body>, u64) {
    let tree = build_tree(all);
    let mut interactions = 0;
    let updated: Vec<Body> = all[lo..hi]
        .iter()
        .map(|b| {
            let mut fx = 0.0;
            let mut fy = 0.0;
            interactions += tree.force(b.x, b.y, b.mass, params.theta, &mut fx, &mut fy);
            let vx = b.vx + params.dt * fx / b.mass;
            let vy = b.vy + params.dt * fy / b.mass;
            Body {
                x: b.x + params.dt * vx,
                y: b.y + params.dt * vy,
                vx,
                vy,
                mass: b.mass,
            }
        })
        .collect();
    (updated, interactions)
}

/// Block boundaries: block `b` of `nodes` owns bodies `lo..hi`.
fn block_range(block: usize, nodes: usize, bodies: usize) -> (usize, usize) {
    let per = bodies.div_ceil(nodes);
    ((block * per).min(bodies), ((block + 1) * per).min(bodies))
}

/// Sequential reference: identical partitioned update order as the parallel
/// version (one virtual "node" per block) so results are bit-identical.
pub fn sequential(params: &NbodyParams, blocks: usize) -> Vec<Body> {
    let mut bodies = initial_bodies(params);
    for _ in 0..params.steps {
        let snapshot = bodies.clone();
        for block in 0..blocks {
            let (lo, hi) = block_range(block, blocks, params.bodies);
            let (updated, _) = step_range(&snapshot, lo, hi, params);
            bodies[lo..hi].copy_from_slice(&updated);
        }
    }
    bodies
}

/// Total kinetic + potential-proxy fingerprint for cheap comparisons.
pub fn checksum(bodies: &[Body]) -> f64 {
    bodies
        .iter()
        .map(|b| b.x + 2.0 * b.y + 3.0 * b.vx + 4.0 * b.vy)
        .sum()
}

fn nbody_node(
    ctx: &NodeCtx,
    blocks: &[ArrayHandle<f64>],
    params: &NbodyParams,
    slot: &ResultSlot<Vec<Body>>,
) {
    let nodes = ctx.num_nodes();
    let init_barrier = BarrierId(300);
    let step_barrier = BarrierId(301);
    let done_barrier = BarrierId(302);

    let all_initial = initial_bodies(params);
    for (b, handle) in blocks.iter().enumerate() {
        let (lo, hi) = block_range(b, nodes, params.bodies);
        ctx.bootstrap(handle, &encode_block(&all_initial[lo..hi]));
    }
    ctx.barrier(init_barrier);

    let me = ctx.node_id().index();
    for _ in 0..params.steps {
        // Read every block to reconstruct the full body set as of the end of
        // the previous step (decoded straight out of zero-copy views).
        let mut all = Vec::with_capacity(params.bodies);
        for handle in blocks {
            all.extend(decode_block(&ctx.view(handle)));
        }
        // A barrier separates the read phase from the update phase so no
        // node observes another node's current-step writes (the classic
        // read/compute/commit structure of DSM Barnes-Hut codes).
        ctx.barrier(step_barrier);
        let (lo, hi) = block_range(me, nodes, params.bodies);
        let (updated, interactions) = step_range(&all, lo, hi, params);
        // ~20 flops per interaction plus the tree build.
        ctx.compute(interactions * 20 + (params.bodies as u64) * 10);
        if lo < hi {
            // Encode the updated bodies directly into the block's storage.
            let mut block = ctx.view_mut(&blocks[me]);
            for (b, body) in updated.iter().enumerate() {
                block[b * FIELDS..(b + 1) * FIELDS]
                    .copy_from_slice(&[body.x, body.y, body.vx, body.vy, body.mass]);
            }
        }
        ctx.barrier(step_barrier);
    }

    if ctx.is_master() {
        let mut all = Vec::with_capacity(params.bodies);
        for handle in blocks {
            all.extend(decode_block(&ctx.view(handle)));
        }
        slot.publish(all);
    }
    ctx.barrier(done_barrier);
}

/// Run the DSM-parallel Barnes–Hut simulation.
pub fn run(config: ClusterConfig, params: &NbodyParams) -> AppRun<Vec<Body>> {
    let nodes = config.num_nodes;
    assert!(params.bodies >= nodes, "need at least one body per node");
    let mut registry = ObjectRegistry::new();
    // One block per node, created (and homed) on its owner: the initial home
    // placement is already optimal, so home migration has nothing to gain —
    // matching the paper's observation for Nbody.
    let blocks: Vec<ArrayHandle<f64>> = (0..nodes)
        .map(|b| {
            let (lo, hi) = block_range(b, nodes, params.bodies);
            ArrayHandle::<f64>::register(
                &mut registry,
                "nbody.block",
                b as u64,
                (hi - lo) * FIELDS,
                NodeId::from(b),
                HomeAssignment::CreationNode,
            )
        })
        .collect();
    let slot = ResultSlot::new();
    let slot_in = slot.clone();
    let params_in = params.clone();
    let report = Cluster::new(config, registry).run(move |ctx| {
        nbody_node(ctx, &blocks, &params_in, &slot_in);
    });
    AppRun {
        result: slot.take(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::ProtocolConfig;
    use dsm_model::ComputeModel;

    fn cfg(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
        ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
    }

    #[test]
    fn initial_conditions_are_deterministic() {
        let p = NbodyParams::small(64, 1);
        assert_eq!(initial_bodies(&p), initial_bodies(&p));
    }

    #[test]
    fn tree_force_approximates_direct_sum() {
        let p = NbodyParams::small(128, 1);
        let bodies = initial_bodies(&p);
        let tree = build_tree(&bodies);
        let probe = bodies[0];
        let mut fx = 0.0;
        let mut fy = 0.0;
        tree.force(probe.x, probe.y, probe.mass, 0.3, &mut fx, &mut fy);
        // Direct O(n^2) sum.
        let mut dx = 0.0;
        let mut dy = 0.0;
        for other in &bodies {
            accumulate(
                probe.x, probe.y, probe.mass, other.x, other.y, other.mass, &mut dx, &mut dy,
            );
        }
        let mag = (dx * dx + dy * dy).sqrt().max(1e-12);
        let err = ((fx - dx).powi(2) + (fy - dy).powi(2)).sqrt() / mag;
        assert!(err < 0.05, "Barnes-Hut force error too large: {err}");
    }

    #[test]
    fn energy_like_checksum_changes_over_time() {
        let p = NbodyParams::small(64, 3);
        let start = checksum(&initial_bodies(&p));
        let end = checksum(&sequential(&p, 4));
        assert!((start - end).abs() > 1e-9, "bodies should move");
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = NbodyParams::small(64, 2);
        let seq = sequential(&p, 4);
        let run = run(cfg(4, ProtocolConfig::adaptive()), &p);
        assert_eq!(run.result.len(), seq.len());
        for (a, b) in run.result.iter().zip(seq.iter()) {
            assert_eq!(
                a, b,
                "parallel and sequential Barnes-Hut must agree exactly"
            );
        }
    }

    #[test]
    fn home_migration_changes_little_for_nbody() {
        let p = NbodyParams::small(64, 3);
        let with = run(cfg(4, ProtocolConfig::adaptive()), &p);
        let without = run(cfg(4, ProtocolConfig::no_migration()), &p);
        assert_eq!(checksum(&with.result), checksum(&without.result));
        // Blocks are homed at their writers from the start, so migration has
        // next to nothing to move and the message counts stay close.
        let a = with.report.breakdown_messages() as f64;
        let b = without.report.breakdown_messages() as f64;
        assert!(
            (a - b).abs() / b < 0.15,
            "Nbody should be insensitive to HM: {a} vs {b}"
        );
    }
}
