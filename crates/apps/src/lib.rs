//! # dsm-apps — the paper's application workloads
//!
//! The evaluation of the paper runs four multi-threaded Java applications on
//! the distributed JVM plus one synthetic micro-benchmark:
//!
//! * [`asp`] — all-pairs shortest paths over a 1024-node graph with a
//!   parallel Floyd–Warshall algorithm (barrier per pivot row);
//! * [`sor`] — red-black successive over-relaxation on a 2048×2048 matrix
//!   (two barriers per iteration);
//! * [`nbody`] — Barnes–Hut simulation of 2048 bodies (tree rebuilt every
//!   step, barrier-synchronized);
//! * [`tsp`] — branch-and-bound travelling salesman over 12 cities with a
//!   lock-protected global best bound;
//! * [`synthetic`] — the single-writer micro-benchmark of Figure 4, with a
//!   configurable repetition `r` of the single-writer pattern.
//!
//! Every module provides the DSM-parallel implementation (run on the
//! `dsm-runtime` cluster), a sequential reference implementation, and a
//! verification helper used by the integration tests: the parallel result
//! must equal the sequential one regardless of the migration policy, because
//! home migration is a performance optimization that must never change
//! program semantics.
//!
//! Beyond the paper's evaluation, [`kv`] is the serving-mode workload: a
//! Zipfian key-value traffic generator with a shifting hot set, driven by
//! the `dsm-bench` throughput harness for wall-clock ops/sec numbers and by
//! the conformance matrix as the first non-HPC cell.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asp;
pub mod kv;
pub mod nbody;
pub mod outcome;
pub mod sor;
pub mod synthetic;
pub mod tsp;

pub use outcome::AppRun;
