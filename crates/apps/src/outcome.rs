//! Helpers for returning application results out of a cluster run.
//!
//! The application closure runs on every node; results computed on the
//! master (or gathered through the DSM itself) are published into an
//! [`AppRun`] so the caller gets both the domain result and the execution
//! report.

use dsm_runtime::ExecutionReport;
use dsm_util::Mutex;
use std::sync::Arc;

/// A cluster run's outcome: the application-level result plus the runtime's
/// execution report.
#[derive(Debug, Clone)]
pub struct AppRun<T> {
    /// The application result (whatever the master published).
    pub result: T,
    /// The runtime execution report (virtual time, messages, migrations).
    pub report: ExecutionReport,
}

/// A one-shot, thread-safe slot the master node publishes its result into.
#[derive(Debug, Default, Clone)]
pub struct ResultSlot<T> {
    inner: Arc<Mutex<Option<T>>>,
}

impl<T> ResultSlot<T> {
    /// Create an empty slot.
    pub fn new() -> Self {
        ResultSlot {
            inner: Arc::new(Mutex::new(None)),
        }
    }

    /// Publish the result (typically called by the master node only).
    ///
    /// # Panics
    /// Panics if a result has already been published — two nodes publishing
    /// indicates an application bug.
    pub fn publish(&self, value: T) {
        let mut slot = self.inner.lock();
        assert!(slot.is_none(), "application result published twice");
        *slot = Some(value);
    }

    /// Take the published result.
    ///
    /// # Panics
    /// Panics if no result was published.
    pub fn take(&self) -> T {
        self.inner
            .lock()
            .take()
            .expect("application finished without publishing a result")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_take() {
        let slot = ResultSlot::new();
        slot.publish(42u32);
        assert_eq!(slot.take(), 42);
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn double_publish_panics() {
        let slot = ResultSlot::new();
        slot.publish(1u32);
        slot.publish(2u32);
    }

    #[test]
    #[should_panic(expected = "without publishing")]
    fn take_without_publish_panics() {
        let slot: ResultSlot<u32> = ResultSlot::new();
        let _ = slot.take();
    }
}
