//! The synthetic single-writer benchmark of Figure 4.
//!
//! Each worker thread repeatedly acquires `lock0`, updates a shared counter
//! `r` times (each update enclosed in its own `synchronized(lock1)` block so
//! that it is individually reflected to the counter's home copy, as §5.2
//! describes), releases `lock0` and performs some local computation. The
//! parameter `r` is the *repetition of the single-writer pattern*: while one
//! thread holds `lock0` the counter receives `r` consecutive remote writes
//! from that thread. Because another (or the same) thread acquires `lock0`
//! next at random, small `r` produces a transient single-writer pattern and
//! large `r` a lasting one — exactly the knob Figures 5(a)/(b) sweep.
//!
//! As in the paper, the workers run on the nodes other than the one where
//! the application started (the master), and all synchronization is managed
//! by the master, so every protocol difference visible in the measurements
//! comes from the home migration policy.

use crate::outcome::{AppRun, ResultSlot};
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectId, ObjectRegistry};
use dsm_runtime::{ArrayHandle, Cluster, ClusterConfig, NodeCtx};

/// Registered name of the benchmark's shared counter object (index 0).
const COUNTER_NAME: &str = "synthetic.counter";

/// The id of the benchmark's shared counter object — stable across runs, so
/// experiments can target it with per-object policy overrides
/// (`ProtocolConfig::with_object_policy`).
pub fn counter_object() -> ObjectId {
    ObjectId::derive(COUNTER_NAME, 0)
}

/// Synthetic benchmark parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticParams {
    /// Repetition `r` of the single-writer pattern (updates per `lock0`
    /// critical section). The paper sweeps 2, 4, 8, 16.
    pub repetition: usize,
    /// Target total number of counter updates `n`; the benchmark stops once
    /// the counter reaches it.
    pub total_updates: u64,
    /// Abstract operations of local computation per outer iteration ("some
    /// simple arithmetic computation goes here").
    pub compute_ops: u64,
}

impl SyntheticParams {
    /// Configuration approximating the paper's experiment for a given
    /// repetition: enough total updates that every worker takes many turns.
    pub fn paper(repetition: usize, workers: usize) -> Self {
        SyntheticParams {
            repetition,
            total_updates: (repetition * workers * 24) as u64,
            compute_ops: 2_000,
        }
    }

    /// A small configuration for tests.
    pub fn small(repetition: usize) -> Self {
        SyntheticParams {
            repetition,
            total_updates: (repetition * 12) as u64,
            compute_ops: 100,
        }
    }
}

fn synthetic_node(
    ctx: &NodeCtx,
    counter: &ArrayHandle<u64>,
    params: &SyntheticParams,
    slot: &ResultSlot<u64>,
) {
    let lock0 = LockId::derive("synthetic.lock0");
    let lock1 = LockId::derive("synthetic.lock1");
    let done_barrier = BarrierId(500);
    let n = params.total_updates;
    let r = params.repetition;

    // The master only hosts the locks and the counter's initial home; the
    // workers are the other nodes (as in the paper's experiment, which
    // starts the application on one node and runs eight working threads on
    // the others).
    let is_worker = !ctx.is_master() || ctx.num_nodes() == 1;
    if is_worker {
        loop {
            ctx.acquire(lock0);
            let current = ctx.view(counter)[0];
            if current >= n {
                ctx.release(lock0);
                break;
            }
            // The repetition of the single-writer pattern: r updates, each
            // enclosed in its own synchronized(lock1) block so that every
            // update is individually reflected to the counter's home copy
            // (one fault-in + one diff propagation per update when the home
            // is remote — the pair that home migration eliminates).
            for _ in 0..r {
                ctx.acquire(lock1);
                // Zero-copy update: one write view, one diff at release.
                ctx.view_mut(counter)[0] += 1;
                ctx.release(lock1);
            }
            ctx.release(lock0);
            // Some simple arithmetic computation outside the critical
            // section.
            ctx.compute(params.compute_ops);
        }
    }
    ctx.barrier(done_barrier);
    if ctx.is_master() {
        let total = ctx.view(counter)[0];
        slot.publish(total);
    }
    ctx.barrier(done_barrier);
}

/// Run the synthetic benchmark and return the final counter value plus the
/// execution report.
pub fn run(config: ClusterConfig, params: &SyntheticParams) -> AppRun<u64> {
    assert!(params.repetition >= 1, "repetition must be at least 1");
    let mut registry = ObjectRegistry::new();
    // The shared counter object: created by the application's start node, so
    // its initial home is the master — the workers always start remote.
    let counter: ArrayHandle<u64> = ArrayHandle::register(
        &mut registry,
        COUNTER_NAME,
        0,
        16,
        NodeId::MASTER,
        HomeAssignment::Master,
    );
    debug_assert_eq!(counter.id, counter_object());
    let slot = ResultSlot::new();
    let slot_in = slot.clone();
    let params_in = params.clone();
    let report = Cluster::new(config, registry).run(move |ctx| {
        synthetic_node(ctx, &counter, &params_in, &slot_in);
    });
    AppRun {
        result: slot.take(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::ProtocolConfig;
    use dsm_model::ComputeModel;
    use dsm_net::MsgCategory;

    fn cfg(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
        ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
    }

    #[test]
    fn counter_reaches_target_without_lost_updates() {
        let params = SyntheticParams::small(4);
        let run = run(cfg(4, ProtocolConfig::adaptive()), &params);
        // The counter stops within one critical section of the target.
        assert!(run.result >= params.total_updates);
        assert!(run.result < params.total_updates + params.repetition as u64);
    }

    #[test]
    fn all_policies_compute_the_same_counter() {
        let params = SyntheticParams::small(2);
        let a = run(cfg(3, ProtocolConfig::adaptive()), &params).result;
        let b = run(cfg(3, ProtocolConfig::no_migration()), &params).result;
        let c = run(cfg(3, ProtocolConfig::fixed_threshold(1)), &params).result;
        // Lock scheduling is nondeterministic, so the exact overshoot can
        // differ, but every run must land in the same narrow window.
        for v in [a, b, c] {
            assert!(v >= params.total_updates && v < params.total_updates + 2);
        }
    }

    #[test]
    fn lasting_pattern_benefits_from_migration() {
        // Large repetition: the single-writer pattern lasts long enough that
        // migrating the counter's home pays off in coherence messages.
        let params = SyntheticParams {
            repetition: 16,
            total_updates: 16 * 24,
            compute_ops: 0,
        };
        let adaptive = run(cfg(3, ProtocolConfig::adaptive()), &params);
        let none = run(cfg(3, ProtocolConfig::no_migration()), &params);
        assert!(adaptive.report.migrations() >= 1);
        let at = adaptive.report.breakdown_messages() as f64;
        let nm = none.report.breakdown_messages() as f64;
        assert!(
            at < nm * 0.8,
            "with r=16 the adaptive protocol should eliminate a good share of \
             coherence messages (AT {at} vs NM {nm})"
        );
    }

    #[test]
    fn transient_pattern_avoids_redirection_storm() {
        // Small repetition: FT1 migrates eagerly and pays redirections; the
        // adaptive policy must not produce more redirections than FT1.
        let params = SyntheticParams {
            repetition: 2,
            total_updates: 2 * 48,
            compute_ops: 0,
        };
        let ft1 = run(cfg(4, ProtocolConfig::fixed_threshold(1)), &params);
        let at = run(cfg(4, ProtocolConfig::adaptive()), &params);
        let ft1_redir = ft1.report.messages(MsgCategory::Redirect);
        let at_redir = at.report.messages(MsgCategory::Redirect);
        assert!(
            at_redir <= ft1_redir,
            "adaptive protocol must not redirect more than FT1 (AT {at_redir} vs FT1 {ft1_redir})"
        );
    }
}
