//! A Zipfian key-value serving workload — the throughput mode's traffic.
//!
//! Unlike the paper's scientific kernels, this workload models a serving
//! system: every node is a frontend executing a stream of point reads and
//! writes against a shared store of `num_objects` coherence units holding
//! `keys_per_object` slots each. Three properties make it interesting for
//! home migration and still deterministic enough for the conformance
//! matrix:
//!
//! * **Zipfian skew** — keys are drawn rank-first from a seeded Zipfian
//!   distribution with configurable exponent `s`, so a small hot set
//!   receives most of the traffic.
//! * **Shifting hot set** — the run is split into phases; each phase both
//!   rotates every object's designated writer ([`writer`]) and rotates
//!   which objects the hot ranks land on ([`hot_object`]), so homes placed
//!   by a migration policy during one phase are wrong for the next and the
//!   protocol must chase the traffic.
//! * **Single writer per object per phase** — within a phase each object is
//!   written only by its designated writer, and phases are separated by
//!   barriers. The *final* store contents are therefore a pure function of
//!   the cluster seed — the FNV [fingerprint](KvRun::fingerprint) is
//!   bit-identical across fabrics, schedules and policies — while the
//!   *read* results stay timing-dependent and are deliberately kept out of
//!   the fingerprint (see [`KvNodeStats::read_hash`]).
//!
//! Each node batches `ops_per_interval` operations inside one acquire /
//! release pair of a private lock, so diff flushing happens at a realistic
//! interval granularity rather than per write. Wall-clock per-op latency is
//! recorded into a [`LatencyHistogram`] and per-window protocol-counter
//! snapshots (via [`NodeCtx::protocol_stats`]) let the throughput harness
//! attribute redirections to the window right after a hot-set shift versus
//! the settled remainder of a phase.

use crate::outcome::ResultSlot;
use dsm_core::ProtocolStats;
use dsm_objspace::{BarrierId, HomeAssignment, LockId, NodeId, ObjectRegistry};
use dsm_runtime::{Cluster, ClusterConfig, ExecutionReport, Matrix2dHandle, NodeCtx};
use dsm_util::{LatencyHistogram, Mutex, SmallRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Registered name of the store's row objects.
const STORE_NAME: &str = "kv.store";

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Key-value serving parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KvParams {
    /// Number of store objects (coherence units). Homes are assigned
    /// round-robin, so with `num_objects >= num_nodes` every node starts as
    /// home of some share of the store.
    pub num_objects: usize,
    /// Slots per object. One object is one diff/fault-in granule, so this
    /// controls the payload size of the coherence traffic.
    pub keys_per_object: usize,
    /// Operations executed by each node (reads + writes).
    pub ops_per_node: u64,
    /// Zipfian exponent `s` of the key popularity distribution (larger is
    /// more skewed; `1.0` is the classic Zipf).
    pub zipf_s: f64,
    /// Percentage of operations that are writes (0–100).
    pub write_percent: u32,
    /// Operations batched inside one acquire/release interval — the diff
    /// flush granularity.
    pub ops_per_interval: usize,
    /// Number of hot-set phases. Each phase rotates writers and shifts the
    /// hot ranks onto different objects.
    pub phases: usize,
    /// Measurement windows per phase. The first window of a phase observes
    /// the traffic shift; later windows observe the settled placement.
    pub windows_per_phase: usize,
}

impl KvParams {
    /// The full serving-mode configuration: ~1M operations cluster-wide on
    /// four nodes, heavy skew, an even read/write mix and three hot-set
    /// phases.
    pub fn serving() -> Self {
        KvParams {
            num_objects: 64,
            keys_per_object: 64,
            ops_per_node: 240_000,
            zipf_s: 1.1,
            write_percent: 50,
            ops_per_interval: 32,
            phases: 3,
            windows_per_phase: 2,
        }
    }

    /// The CI gate configuration: the same shape at a tenth of the
    /// operation count, sized to keep the per-policy sweep seconds-scale on
    /// a noisy runner.
    pub fn gate() -> Self {
        KvParams {
            ops_per_node: 24_000,
            ..KvParams::serving()
        }
    }

    /// A tiny configuration for the conformance matrix and tests.
    pub fn small() -> Self {
        KvParams {
            num_objects: 6,
            keys_per_object: 8,
            ops_per_node: 96,
            zipf_s: 1.2,
            write_percent: 50,
            ops_per_interval: 8,
            phases: 2,
            windows_per_phase: 2,
        }
    }

    /// Total measurement windows in a run.
    pub fn windows(&self) -> usize {
        self.phases * self.windows_per_phase
    }

    fn validate(&self, num_nodes: usize) {
        assert!(self.num_objects >= num_nodes, "fewer objects than nodes");
        assert!(self.keys_per_object >= 1, "empty objects");
        assert!(self.phases >= 1 && self.windows_per_phase >= 1);
        assert!((0..=100).contains(&self.write_percent));
        assert!(self.ops_per_interval >= 1);
        assert_eq!(
            self.ops_per_node % self.windows() as u64,
            0,
            "ops_per_node must divide evenly into {} windows",
            self.windows()
        );
    }
}

/// A seeded Zipfian sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)^s`. Implemented as a
/// precomputed CDF walked by binary search — construction is `O(n)`,
/// sampling `O(log n)`, and the same seed always replays the same rank
/// sequence.
#[derive(Debug, Clone)]
pub struct ZipfianSampler {
    cdf: Vec<f64>,
}

impl ZipfianSampler {
    /// Build a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty rank space");
        assert!(s.is_finite() && s >= 0.0, "bad exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point shortfall so sampling can never
        // index past the last rank.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfianSampler { cdf }
    }

    /// Draw a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let r = rng.next_f64();
        self.cdf.partition_point(|&c| c <= r)
    }

    /// The probability of rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// The object a popularity rank lands on during `phase`: the rank order is
/// rotated by one stride (`num_objects / phases`) per phase, so the hot
/// ranks move to a disjoint set of objects at every phase boundary.
pub fn hot_object(rank: usize, phase: usize, num_objects: usize, phases: usize) -> usize {
    let stride = (num_objects / phases).max(1);
    (rank + phase * stride) % num_objects
}

/// The node designated to write object `obj` during `phase`. The rotation
/// is chosen so that under round-robin initial homes (`obj % num_nodes`)
/// the writer of a phase is remote from the object's *initial* home
/// whenever `(phase + 1) % num_nodes != 0` — with the default
/// `phases < num_nodes` every write starts remote, which is precisely the
/// traffic a migration policy should chase.
pub fn writer(obj: usize, phase: usize, num_nodes: usize) -> usize {
    (obj + phase + 1) % num_nodes
}

/// One node's serving measurements.
#[derive(Debug, Clone)]
pub struct KvNodeStats {
    /// The node.
    pub node: NodeId,
    /// Operations this node executed.
    pub ops: u64,
    /// Wall-clock time spent serving (sum over windows, barrier waits at
    /// window edges excluded).
    pub serving: Duration,
    /// Per-operation wall-clock latency. Interval acquire/release overhead
    /// lands in the adjacent operation's sample, so the histogram accounts
    /// for all serving time.
    pub latency: LatencyHistogram,
    /// Protocol-counter snapshots: one before the first window, then one
    /// after each window (`windows() + 1` entries). Requester-side counters
    /// (notably `redirections_suffered`) only advance during this node's
    /// own operations, so consecutive-snapshot deltas attribute them to
    /// windows race-free.
    pub windows: Vec<ProtocolStats>,
    /// FNV fold of every value this node read. Timing-dependent (reads race
    /// with remote writers), so it is *not* part of the fingerprint; it
    /// exists to keep the read path honest and as a debugging breadcrumb.
    pub read_hash: u64,
}

/// A completed KV serving run.
#[derive(Debug, Clone)]
pub struct KvRun {
    /// FNV-1a-style fingerprint of the final store contents, read by the
    /// master after the end barrier. Deterministic for a given
    /// (seed, params, num_nodes) triple — independent of fabric, schedule
    /// and migration policy.
    pub fingerprint: u64,
    /// Per-node serving measurements, indexed by node id.
    pub nodes: Vec<KvNodeStats>,
    /// The runtime execution report (messages, migrations, modeled time).
    pub report: ExecutionReport,
}

fn kv_node(
    ctx: &NodeCtx,
    store: &Matrix2dHandle<u64>,
    params: &KvParams,
    stats: &Mutex<Vec<Option<KvNodeStats>>>,
    slot: &ResultSlot<u64>,
) {
    let me = ctx.node_id();
    let num_nodes = ctx.num_nodes();
    let start_barrier = BarrierId(900);
    let window_barrier = BarrierId(901);
    let end_barrier = BarrierId(902);
    let my_lock = LockId::derive(&format!("kv.interval.{}", me.0));
    let mut rng = ctx.node_rng();
    let read_sampler = ZipfianSampler::new(params.num_objects, params.zipf_s);
    let windows = params.windows();
    let ops_per_window = params.ops_per_node / windows as u64;

    let mut latency = LatencyHistogram::new();
    let mut read_hash = FNV_BASIS;
    let mut serving = Duration::ZERO;
    let mut snapshots = Vec::with_capacity(windows + 1);
    let mut owned: Vec<usize> = Vec::new();
    let mut write_sampler: Option<ZipfianSampler> = None;

    ctx.barrier(start_barrier);
    snapshots.push(ctx.protocol_stats());

    for w in 0..windows {
        let phase = w / params.windows_per_phase;
        if w % params.windows_per_phase == 0 {
            // Phase boundary: writer rotation and hot-set shift. The window
            // barrier below doubles as the phase barrier, so the previous
            // phase's diffs are all home before the new writers start.
            owned = (0..params.num_objects)
                .filter(|&o| writer(o, phase, num_nodes) == me.0 as usize)
                .collect();
            write_sampler =
                (!owned.is_empty()).then(|| ZipfianSampler::new(owned.len(), params.zipf_s));
        }

        let window_start = Instant::now();
        let mut last = window_start;
        let mut done = 0u64;
        while done < ops_per_window {
            let batch = params
                .ops_per_interval
                .min((ops_per_window - done) as usize);
            ctx.acquire(my_lock);
            for _ in 0..batch {
                // The type draw happens unconditionally so a node's rng
                // stream is a pure function of the parameters.
                let wants_write = rng.next_u64() % 100 < u64::from(params.write_percent);
                match (&write_sampler, wants_write) {
                    (Some(sampler), true) => {
                        // Writes stay within this phase's owned set — the
                        // single-writer discipline that keeps the final
                        // store contents schedule-independent.
                        let obj = owned[sampler.sample(&mut rng)];
                        let key = rng.gen_index(params.keys_per_object);
                        let value = rng.next_u64();
                        ctx.view_mut(store.row(obj))[key] = value;
                    }
                    _ => {
                        let rank = read_sampler.sample(&mut rng);
                        let obj = hot_object(rank, phase, params.num_objects, params.phases);
                        let key = rng.gen_index(params.keys_per_object);
                        let value = ctx.view(store.row(obj))[key];
                        read_hash = fnv(read_hash, value);
                    }
                }
                let now = Instant::now();
                latency.record_duration(now.duration_since(last));
                last = now;
            }
            ctx.release(my_lock);
            done += batch as u64;
        }
        serving += window_start.elapsed();
        ctx.barrier(window_barrier);
        snapshots.push(ctx.protocol_stats());
    }

    ctx.barrier(end_barrier);
    if ctx.is_master() {
        let mut h = FNV_BASIS;
        for o in 0..params.num_objects {
            h = fnv(h, o as u64);
            let row = ctx.view(store.row(o));
            for k in 0..params.keys_per_object {
                h = fnv(h, row[k]);
            }
        }
        slot.publish(h);
    }
    ctx.barrier(end_barrier);

    stats.lock()[me.0 as usize] = Some(KvNodeStats {
        node: me,
        ops: params.ops_per_node,
        serving,
        latency,
        windows: snapshots,
        read_hash,
    });
}

/// Run the KV serving workload and return the fingerprint, the per-node
/// serving measurements and the execution report.
pub fn run(config: ClusterConfig, params: &KvParams) -> KvRun {
    let num_nodes = config.num_nodes;
    params.validate(num_nodes);
    let mut registry = ObjectRegistry::new();
    let store: Matrix2dHandle<u64> = Matrix2dHandle::register(
        &mut registry,
        STORE_NAME,
        params.num_objects,
        params.keys_per_object,
        NodeId::MASTER,
        HomeAssignment::RoundRobin,
    );
    let slot = ResultSlot::new();
    let stats: Arc<Mutex<Vec<Option<KvNodeStats>>>> =
        Arc::new(Mutex::new((0..num_nodes).map(|_| None).collect()));
    let slot_in = slot.clone();
    let stats_in = Arc::clone(&stats);
    let params_in = params.clone();
    let report = Cluster::new(config, registry).run(move |ctx| {
        kv_node(ctx, &store, &params_in, &stats_in, &slot_in);
    });
    let nodes = stats
        .lock()
        .drain(..)
        .map(|s| s.expect("every node publishes its serving stats"))
        .collect();
    KvRun {
        fingerprint: slot.take(),
        nodes,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::ProtocolConfig;
    use dsm_model::ComputeModel;

    fn cfg(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
        ClusterConfig::new(nodes, protocol).with_compute(ComputeModel::free())
    }

    #[test]
    fn zipf_cdf_is_normalized_and_rank_frequency_monotone() {
        let sampler = ZipfianSampler::new(16, 1.1);
        assert_eq!(sampler.cdf.len(), 16);
        assert!(sampler.cdf.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sampler.cdf.last().unwrap(), 1.0);
        // Exact rank probabilities are monotone decreasing by construction.
        for k in 1..16 {
            assert!(sampler.probability(k) < sampler.probability(k - 1));
        }
        // Empirically: rank 0 dominates and the head outdraws the tail.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 16];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[8]);
        let head: u32 = counts[..4].iter().sum();
        let tail: u32 = counts[8..].iter().sum();
        assert!(head > tail * 2, "head {head} vs tail {tail}");
    }

    #[test]
    fn zipf_replay_is_bit_identical() {
        let sampler = ZipfianSampler::new(64, 1.1);
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|_| sampler.sample(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn hot_set_shifts_on_the_phase_schedule() {
        let p = KvParams::serving();
        // The most popular ranks land on disjoint objects in each phase.
        let hot: Vec<usize> = (0..p.phases)
            .map(|phase| hot_object(0, phase, p.num_objects, p.phases))
            .collect();
        assert_eq!(hot.len(), 3);
        assert!(hot[0] != hot[1] && hot[1] != hot[2] && hot[0] != hot[2]);
        // Within a phase the mapping is a bijection on objects.
        for phase in 0..p.phases {
            let mut seen = vec![false; p.num_objects];
            for rank in 0..p.num_objects {
                seen[hot_object(rank, phase, p.num_objects, p.phases)] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn writers_rotate_and_start_remote_from_round_robin_homes() {
        // With the default phases (3) on four nodes, (phase + 1) % 4 is
        // never zero, so the writer is always remote from the initial home.
        for phase in 0..3 {
            for obj in 0..64 {
                assert_ne!(writer(obj, phase, 4), obj % 4);
            }
        }
        // And consecutive phases pick different writers for every object.
        for obj in 0..64 {
            assert_ne!(writer(obj, 0, 4), writer(obj, 1, 4));
        }
    }

    #[test]
    fn run_reports_ops_windows_and_latency() {
        let p = KvParams::small();
        let run = run(cfg(4, ProtocolConfig::adaptive()), &p);
        assert_eq!(run.nodes.len(), 4);
        for node in &run.nodes {
            assert_eq!(node.ops, p.ops_per_node);
            assert_eq!(node.windows.len(), p.windows() + 1);
            assert_eq!(node.latency.count(), p.ops_per_node);
            // Requester-side counters are monotone across snapshots.
            for pair in node.windows.windows(2) {
                assert!(pair[1].redirections_suffered >= pair[0].redirections_suffered);
                assert!(pair[1].lock_acquires >= pair[0].lock_acquires);
            }
        }
    }

    #[test]
    fn fingerprint_is_schedule_and_policy_independent() {
        let p = KvParams::small();
        let nm = run(cfg(4, ProtocolConfig::no_migration()), &p);
        let at = run(cfg(4, ProtocolConfig::adaptive()), &p);
        let ft = run(cfg(4, ProtocolConfig::fixed_threshold(1)), &p);
        assert_eq!(nm.fingerprint, at.fingerprint);
        assert_eq!(nm.fingerprint, ft.fingerprint);
        // Replaying the same configuration is bit-identical too.
        let again = run(cfg(4, ProtocolConfig::adaptive()), &p);
        assert_eq!(again.fingerprint, at.fingerprint);
        // NM never migrates; the single-writer pattern makes migrating
        // policies move homes.
        assert_eq!(nm.report.migrations(), 0);
        assert!(ft.report.migrations() > 0);
    }
}
