//! Initial home assignment.
//!
//! From the paper's §5: "When an object is created, the creation node becomes
//! its default home node. Exceptionally, we distribute the homes of large
//! objects, such as array objects, among the nodes in a round-robin fashion
//! in order to achieve load balance." We reproduce both policies, plus the
//! hash policy mentioned in §3.2 ("all units are initially assigned a home
//! node by a well known hash function") for the ablation experiments.

use crate::id::{NodeId, ObjectId};

/// Policy deciding the *initial* home of an object (before any migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeAssignment {
    /// The node that allocated the object is its home (the paper's default
    /// for ordinary objects).
    CreationNode,
    /// Homes are spread over all nodes round-robin by allocation index (the
    /// paper's policy for large array objects; this is precisely what makes
    /// the "original homes are not the writing nodes" situation of ASP/SOR
    /// arise and gives home migration its opportunity).
    RoundRobin,
    /// A well-known hash of the object id chooses the home (§3.2).
    Hash,
    /// All objects are homed on the master node (worst-case baseline used in
    /// ablations; every non-master access is remote until migration).
    Master,
}

/// Static description of one shared object: identity, payload size, and the
/// information needed to compute its initial home deterministically on every
/// node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDescriptor {
    /// The object's identity.
    pub id: ObjectId,
    /// Payload size in bytes (fixed at allocation).
    pub size_bytes: usize,
    /// The node that logically allocates/initialises the object.
    pub creator: NodeId,
    /// Allocation index within the creating collection (e.g. row number);
    /// used by the round-robin policy.
    pub allocation_index: u64,
    /// Which initial-home policy applies to this object.
    pub assignment: HomeAssignment,
    /// Whether the application declares the object immutable after
    /// initialization (e.g. the TSP distance matrix). Immutable objects may
    /// stay cached across acquires — the GOS read-only object optimization.
    pub immutable: bool,
}

impl ObjectDescriptor {
    /// Whether the object is declared immutable after initialization.
    pub fn is_immutable(&self) -> bool {
        self.immutable
    }

    /// Compute the initial home under the descriptor's policy for a cluster
    /// of `num_nodes` nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes` is zero.
    pub fn initial_home(&self, num_nodes: usize) -> NodeId {
        assert!(num_nodes > 0, "cluster must have at least one node");
        match self.assignment {
            HomeAssignment::CreationNode => self.creator,
            HomeAssignment::RoundRobin => NodeId::from(self.allocation_index as usize % num_nodes),
            HomeAssignment::Hash => NodeId::from((self.id.raw() % num_nodes as u64) as usize),
            HomeAssignment::Master => NodeId::MASTER,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(policy: HomeAssignment, index: u64) -> ObjectDescriptor {
        ObjectDescriptor {
            id: ObjectId::derive("test", index),
            size_bytes: 64,
            creator: NodeId(3),
            allocation_index: index,
            assignment: policy,
            immutable: false,
        }
    }

    #[test]
    fn creation_node_policy_uses_creator() {
        assert_eq!(
            desc(HomeAssignment::CreationNode, 5).initial_home(8),
            NodeId(3)
        );
    }

    #[test]
    fn round_robin_spreads_homes() {
        let homes: Vec<NodeId> = (0..8)
            .map(|i| desc(HomeAssignment::RoundRobin, i).initial_home(4))
            .collect();
        assert_eq!(
            homes,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3)
            ]
        );
    }

    #[test]
    fn hash_policy_is_deterministic_and_in_range() {
        for i in 0..64 {
            let d = desc(HomeAssignment::Hash, i);
            let h = d.initial_home(7);
            assert_eq!(h, d.initial_home(7));
            assert!(h.index() < 7);
        }
    }

    #[test]
    fn master_policy_always_master() {
        assert_eq!(
            desc(HomeAssignment::Master, 9).initial_home(16),
            NodeId::MASTER
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = desc(HomeAssignment::RoundRobin, 0).initial_home(0);
    }
}
