//! # dsm-objspace — the shared object space substrate
//!
//! The paper's Global Object Space (GOS) virtualizes a single Java object
//! heap across the cluster: every shared Java object is a coherence unit of
//! the home-based protocol. This crate provides the object-level building
//! blocks that the protocol engine (`dsm-core`) and runtime (`dsm-runtime`)
//! are built on:
//!
//! * [`ObjectId`], [`NodeId`], [`LockId`], [`BarrierId`] — identities.
//! * [`ObjectData`] — the payload of one coherence unit, stored 8-byte
//!   aligned so it can be viewed both as raw bytes (twins, diffs, wire
//!   protocol) and **in place** as typed element slices ([`Element`]) — the
//!   substrate of the runtime's zero-copy `ReadView`/`WriteView` guards.
//! * [`ObjectStore`] — a shared, lockable handle to one copy's payload; the
//!   engine leases stores to the runtime so application views can borrow
//!   payload storage without pinning the engine itself.
//! * [`DsmError`] / [`DsmResult`] — the typed error taxonomy of the
//!   fallible application surface (`try_view`, `try_acquire`, ...).
//! * [`Twin`] and [`Diff`] — the multiple-writer machinery: a twin is the
//!   pristine copy made before the first local write in an interval; a diff
//!   is the word-granularity delta between the current copy and the twin,
//!   propagated to the home at release time (HLRC).
//! * [`AccessState`] — the explicit access-state machine that replaces the
//!   paper's virtual-memory/page-fault trapping: caches and home copies move
//!   between `Invalid`, `ReadOnly` and `ReadWrite`, and every upgrade is
//!   observable by the protocol (home reads, home writes, remote faults).
//! * [`HomeAssignment`] / [`ObjectDescriptor`] — deterministic initial home
//!   placement (creation node by default, round-robin for large array
//!   objects, exactly as in the paper's §5).
//!
//! The only `unsafe` in the crate lives in the private `raw` module backing
//! [`ObjectData`]'s zero-copy views; see its documentation for the safety
//! argument.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod data;
pub mod diff;
pub mod element;
pub mod error;
pub mod home;
pub mod id;
mod raw;
pub mod registry;
pub mod twin;
pub mod version;

pub use access::AccessState;
pub use data::ObjectData;
pub use diff::Diff;
pub use element::Element;
pub use error::{DsmError, DsmResult};
pub use home::{HomeAssignment, ObjectDescriptor};
pub use id::{BarrierId, LockId, NodeId, ObjectId};
pub use registry::ObjectRegistry;
pub use twin::Twin;
pub use version::Version;

use dsm_util::RwCell;
use std::sync::Arc;

/// A shared, lockable handle to one copy's payload.
///
/// The protocol engine keeps every home and cached copy behind one of
/// these; it hands clones to the runtime as *leases*, so a `ReadView`/
/// `WriteView` can hold the payload lock across application code while the
/// engine's own mutex stays free for the protocol server thread.
pub type ObjectStore = Arc<RwCell<ObjectData>>;

/// Wrap a payload in a fresh [`ObjectStore`].
pub fn new_store(data: ObjectData) -> ObjectStore {
    Arc::new(RwCell::new(data))
}
