//! # dsm-objspace — the shared object space substrate
//!
//! The paper's Global Object Space (GOS) virtualizes a single Java object
//! heap across the cluster: every shared Java object is a coherence unit of
//! the home-based protocol. This crate provides the object-level building
//! blocks that the protocol engine (`dsm-core`) and runtime (`dsm-runtime`)
//! are built on:
//!
//! * [`ObjectId`], [`NodeId`], [`LockId`], [`BarrierId`] — identities.
//! * [`ObjectData`] — the byte-level payload of one coherence unit, with safe
//!   typed views ([`Element`]) so applications can treat units as `f64`/`i64`
//!   arrays (the Java 2-D matrices of ASP/SOR become arrays of row objects).
//! * [`Twin`] and [`Diff`] — the multiple-writer machinery: a twin is the
//!   pristine copy made before the first local write in an interval; a diff
//!   is the word-granularity delta between the current copy and the twin,
//!   propagated to the home at release time (HLRC).
//! * [`AccessState`] — the explicit access-state machine that replaces the
//!   paper's virtual-memory/page-fault trapping (see DESIGN.md §1): caches
//!   and home copies move between `Invalid`, `ReadOnly` and `ReadWrite`, and
//!   every upgrade is observable by the protocol (home reads, home writes,
//!   remote faults).
//! * [`HomeAssignment`] / [`ObjectDescriptor`] — deterministic initial home
//!   placement (creation node by default, round-robin for large array
//!   objects, exactly as in the paper's §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod data;
pub mod diff;
pub mod element;
pub mod home;
pub mod id;
pub mod registry;
pub mod twin;
pub mod version;

pub use access::AccessState;
pub use data::ObjectData;
pub use diff::Diff;
pub use element::Element;
pub use home::{HomeAssignment, ObjectDescriptor};
pub use id::{BarrierId, LockId, NodeId, ObjectId};
pub use registry::ObjectRegistry;
pub use twin::Twin;
pub use version::Version;
