//! Explicit per-copy access states.
//!
//! The paper traps home and non-home accesses through the virtual-memory
//! protection of the underlying JVM ("the access state of the home copy will
//! be set to invalid on acquiring a lock and to read-only on releasing a
//! lock", §3.3). We model the same three states explicitly; the protocol
//! engine consults and updates them on every application read/write and on
//! every synchronization operation, which yields exactly the same observable
//! events (home read faults, home write faults, remote fetches) without any
//! signal handling.

/// Access state of one local copy (home or cached) of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessState {
    /// The copy may be stale (or is only a placeholder): any access faults.
    /// For a home copy this state is used purely to *trap and record* the
    /// first access of an interval — the data itself is always valid at home.
    Invalid,
    /// Reads hit locally; the first write of an interval faults (so a twin
    /// can be created and the write recorded).
    ReadOnly,
    /// Reads and writes both hit locally.
    ReadWrite,
}

impl AccessState {
    /// Does a read in this state require protocol action?
    pub fn read_faults(self) -> bool {
        matches!(self, AccessState::Invalid)
    }

    /// Does a write in this state require protocol action?
    pub fn write_faults(self) -> bool {
        !matches!(self, AccessState::ReadWrite)
    }

    /// State after a read has been served.
    pub fn after_read(self) -> AccessState {
        match self {
            AccessState::Invalid => AccessState::ReadOnly,
            other => other,
        }
    }

    /// State after a write has been served.
    pub fn after_write(self) -> AccessState {
        AccessState::ReadWrite
    }

    /// State after the enclosing interval ends with a release: write
    /// permission is dropped so the next interval's first write is trapped
    /// again.
    pub fn after_release(self) -> AccessState {
        match self {
            AccessState::Invalid => AccessState::Invalid,
            _ => AccessState::ReadOnly,
        }
    }

    /// State after the copy is invalidated by a write notice at acquire time.
    pub fn after_invalidate(self) -> AccessState {
        AccessState::Invalid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_predicates() {
        assert!(AccessState::Invalid.read_faults());
        assert!(!AccessState::ReadOnly.read_faults());
        assert!(!AccessState::ReadWrite.read_faults());
        assert!(AccessState::Invalid.write_faults());
        assert!(AccessState::ReadOnly.write_faults());
        assert!(!AccessState::ReadWrite.write_faults());
    }

    #[test]
    fn read_upgrades_invalid_to_read_only() {
        assert_eq!(AccessState::Invalid.after_read(), AccessState::ReadOnly);
        assert_eq!(AccessState::ReadOnly.after_read(), AccessState::ReadOnly);
        assert_eq!(AccessState::ReadWrite.after_read(), AccessState::ReadWrite);
    }

    #[test]
    fn write_always_leads_to_read_write() {
        for s in [
            AccessState::Invalid,
            AccessState::ReadOnly,
            AccessState::ReadWrite,
        ] {
            assert_eq!(s.after_write(), AccessState::ReadWrite);
        }
    }

    #[test]
    fn release_demotes_write_permission() {
        assert_eq!(
            AccessState::ReadWrite.after_release(),
            AccessState::ReadOnly
        );
        assert_eq!(AccessState::ReadOnly.after_release(), AccessState::ReadOnly);
        assert_eq!(AccessState::Invalid.after_release(), AccessState::Invalid);
    }

    #[test]
    fn invalidate_always_invalid() {
        for s in [
            AccessState::Invalid,
            AccessState::ReadOnly,
            AccessState::ReadWrite,
        ] {
            assert_eq!(s.after_invalidate(), AccessState::Invalid);
        }
    }

    #[test]
    fn full_interval_cycle() {
        // acquire (invalidate) -> read (fault) -> write (fault) -> release.
        let mut s = AccessState::ReadOnly.after_invalidate();
        assert!(s.read_faults());
        s = s.after_read();
        assert!(s.write_faults());
        s = s.after_write();
        assert!(!s.write_faults());
        s = s.after_release();
        assert_eq!(s, AccessState::ReadOnly);
    }
}
