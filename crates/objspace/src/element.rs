//! Typed views over object payload bytes.
//!
//! The paper's coherence unit is a Java object; our applications mostly
//! share numeric arrays (matrix rows, particle blocks, counters). The
//! [`Element`] trait ties such value types to their byte representation in
//! [`crate::ObjectData`].
//!
//! `Element` is **sealed** to the primitive numeric types. The runtime's
//! zero-copy views reinterpret payload storage as `&[T]`/`&mut [T]`
//! directly, which is only sound for plain-old-data types (no padding, all
//! bit patterns valid, alignment at most 8); sealing keeps that property a
//! crate-local invariant instead of a contract every downstream implementor
//! would have to uphold. Elements are encoded in native byte order — the
//! simulated cluster lives in one process, so payloads never cross a real
//! machine boundary.

mod sealed {
    /// Marker restricting [`super::Element`] to the crate's POD primitives.
    pub trait Pod {}
}

/// A fixed-size plain-old-data element that can live inside a shared object.
///
/// Implemented for `u8`–`u64`, `i8`–`i64`, `f32` and `f64`; sealed against
/// downstream implementations (see the module docs for why).
pub trait Element:
    sealed::Pod + Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// Size of the element in bytes inside the object payload.
    const SIZE: usize;

    /// Append the native-endian encoding of `self` to `out`.
    fn write_to(&self, out: &mut Vec<u8>);

    /// Decode one element from exactly `Self::SIZE` bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() != Self::SIZE`.
    fn read_from(bytes: &[u8]) -> Self;

    /// Encode into an existing slice of exactly `Self::SIZE` bytes.
    fn store_into(&self, slot: &mut [u8]) {
        let mut tmp = Vec::with_capacity(Self::SIZE);
        self.write_to(&mut tmp);
        slot.copy_from_slice(&tmp);
    }
}

macro_rules! impl_element_for_pod {
    ($($ty:ty),*) => {
        $(
            impl sealed::Pod for $ty {}

            impl Element for $ty {
                const SIZE: usize = std::mem::size_of::<$ty>();

                fn write_to(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_ne_bytes());
                }

                fn read_from(bytes: &[u8]) -> Self {
                    let arr: [u8; std::mem::size_of::<$ty>()] = bytes
                        .try_into()
                        .expect("element slice has wrong length");
                    <$ty>::from_ne_bytes(arr)
                }
            }
        )*
    };
}

impl_element_for_pod!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

/// Encode a slice of elements into a fresh byte vector.
pub fn encode_slice<T: Element>(values: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * T::SIZE);
    for v in values {
        v.write_to(&mut out);
    }
    out
}

/// Decode a byte buffer into a vector of elements.
///
/// # Panics
/// Panics if the buffer length is not a multiple of the element size.
pub fn decode_slice<T: Element>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(T::read_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let values = [0.0f64, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_slice(&values);
        assert_eq!(bytes.len(), values.len() * 8);
        assert_eq!(decode_slice::<f64>(&bytes), values);
    }

    #[test]
    fn roundtrip_integers() {
        let values = [0u32, 1, 42, u32::MAX];
        assert_eq!(decode_slice::<u32>(&encode_slice(&values)), values);
        let values = [-5i64, 0, i64::MAX, i64::MIN];
        assert_eq!(decode_slice::<i64>(&encode_slice(&values)), values);
        let values = [0u8, 255];
        assert_eq!(decode_slice::<u8>(&encode_slice(&values)), values);
    }

    #[test]
    fn store_into_overwrites_slot() {
        let mut buf = vec![0u8; 8];
        7.5f64.store_into(&mut buf);
        assert_eq!(f64::read_from(&buf), 7.5);
    }

    #[test]
    #[should_panic(expected = "not a multiple of element size")]
    fn decode_rejects_misaligned_length() {
        let _ = decode_slice::<f64>(&[0u8; 7]);
    }

    #[test]
    fn empty_slice_roundtrip() {
        let values: [f64; 0] = [];
        let bytes = encode_slice(&values);
        assert!(bytes.is_empty());
        assert!(decode_slice::<f64>(&bytes).is_empty());
    }

    #[test]
    fn encoding_matches_memory_representation() {
        // The byte encoding must agree with the zero-copy reinterpretation
        // the runtime views use: native byte order, no padding.
        let bytes = encode_slice(&[0x0102_0304u32]);
        assert_eq!(bytes, 0x0102_0304u32.to_ne_bytes());
    }
}
