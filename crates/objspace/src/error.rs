//! The typed error taxonomy of the GOS application surface.
//!
//! Protocol *misuse* — looking up an object that was never registered,
//! constructing a handle whose length disagrees with the registry, taking
//! overlapping mutable views, synchronizing while views are live — is
//! recoverable application error, not a runtime invariant violation, so the
//! fallible runtime API (`try_view`, `try_view_mut`, `try_acquire`, ...)
//! reports it as a [`DsmError`] instead of panicking a node thread. The
//! panicking conveniences (`view`, `acquire`, ...) are thin wrappers that
//! unwrap these same errors with a readable message.

use crate::id::ObjectId;
use std::fmt;

/// Result alias for the fallible GOS surface.
pub type DsmResult<T> = Result<T, DsmError>;

/// A recoverable application-facing error of the GOS runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmError {
    /// The object id is not present in the registry — typically a handle
    /// `lookup` for a name/index that no node registered.
    UnknownObject {
        /// The unknown id.
        obj: ObjectId,
    },
    /// A handle's element count disagrees with the registered payload size —
    /// decoding through it would corrupt element boundaries.
    SizeMismatch {
        /// The object.
        obj: ObjectId,
        /// Payload size recorded in the registry, in bytes.
        registered_bytes: usize,
        /// Payload size implied by the handle, in bytes.
        handle_bytes: usize,
    },
    /// A mutable view overlaps an existing view of the same object in the
    /// same critical section (or a shared view overlaps a mutable one).
    ViewConflict {
        /// The object with a live conflicting view.
        obj: ObjectId,
    },
    /// A synchronization operation (acquire, release, barrier) was invoked
    /// while object views were still live; views must be dropped first so
    /// the interval's writes are complete when the release flushes them.
    ViewsOutstanding {
        /// Number of live views at the time of the call.
        count: usize,
    },
    /// An access needed a remote fault-in while write views were live in
    /// this context. Blocking on the network with a write lease held could
    /// deadlock two nodes through mutual server deferral (each server
    /// defers the other's request behind the local write view), so the
    /// fetch is refused up front; fault the object in (or take the write
    /// view) before taking write views of other objects.
    FetchWithLiveWrites {
        /// The object that would have required a remote fault-in.
        obj: ObjectId,
        /// Number of live write views at the time of the call.
        writers: usize,
    },
    /// An element index beyond the end of the object.
    IndexOutOfBounds {
        /// The object.
        obj: ObjectId,
        /// The offending index.
        index: usize,
        /// The object's element count.
        len: usize,
    },
    /// A transport/wire failure: a frame that could not be decoded (bad
    /// magic, unsupported version, truncated or malformed body) or a socket
    /// fabric error. Decoding is total — malformed input from a peer becomes
    /// this error, never a panic.
    Transport {
        /// Human-readable description of the wire/transport failure.
        detail: String,
    },
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::UnknownObject { obj } => {
                write!(f, "object {obj} is not registered")
            }
            DsmError::SizeMismatch {
                obj,
                registered_bytes,
                handle_bytes,
            } => write!(
                f,
                "handle for {obj} implies {handle_bytes} bytes but the registry \
                 records {registered_bytes} bytes"
            ),
            DsmError::ViewConflict { obj } => {
                write!(f, "conflicting live view of {obj} in this critical section")
            }
            DsmError::ViewsOutstanding { count } => write!(
                f,
                "synchronization with {count} live object view(s); drop views before \
                 acquire/release/barrier"
            ),
            DsmError::FetchWithLiveWrites { obj, writers } => write!(
                f,
                "fault-in of {obj} refused: {writers} write view(s) are live; fetch \
                 objects before taking write views"
            ),
            DsmError::IndexOutOfBounds { obj, index, len } => {
                write!(
                    f,
                    "element index {index} out of bounds for {obj} (len {len})"
                )
            }
            DsmError::Transport { detail } => {
                write!(f, "transport error: {detail}")
            }
        }
    }
}

impl std::error::Error for DsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_actionable() {
        let obj = ObjectId::derive("e", 0);
        assert!(DsmError::UnknownObject { obj }
            .to_string()
            .contains("not registered"));
        let e = DsmError::SizeMismatch {
            obj,
            registered_bytes: 64,
            handle_bytes: 32,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("64"));
        assert!(DsmError::ViewConflict { obj }.to_string().contains("view"));
        assert!(DsmError::ViewsOutstanding { count: 2 }
            .to_string()
            .contains('2'));
        assert!(DsmError::IndexOutOfBounds {
            obj,
            index: 9,
            len: 4
        }
        .to_string()
        .contains("out of bounds"));
        assert!(DsmError::Transport {
            detail: "bad magic".to_string()
        }
        .to_string()
        .contains("bad magic"));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let obj = ObjectId::derive("e", 1);
        let e = DsmError::ViewConflict { obj };
        assert_eq!(e.clone(), e);
        let boxed: Box<dyn std::error::Error> = Box::new(e);
        assert!(boxed.to_string().contains("view"));
    }
}
