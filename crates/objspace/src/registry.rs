//! The object registry: the shared catalogue of every distributed-shared
//! object in the application.
//!
//! The paper's GOS "distinguishes distributed shared objects among all
//! objects at runtime" — only objects reachable from threads on different
//! nodes participate in the coherence protocol and carry migration metadata.
//! Our applications declare their shared objects up front through the typed
//! runtime API, which registers an [`ObjectDescriptor`] for each. Because
//! descriptors are derived deterministically from names and indices, every
//! node builds an identical registry without communication.

use crate::home::{HomeAssignment, ObjectDescriptor};
use crate::id::{NodeId, ObjectId};
use std::collections::HashMap;

/// Catalogue of all shared objects known to a node.
#[derive(Debug, Default, Clone)]
pub struct ObjectRegistry {
    objects: HashMap<ObjectId, ObjectDescriptor>,
}

impl ObjectRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ObjectRegistry {
            objects: HashMap::new(),
        }
    }

    /// Register a shared object. Registering the same descriptor twice is
    /// idempotent (all nodes execute the same declaration code).
    ///
    /// # Panics
    /// Panics if a *different* descriptor is already registered under the
    /// same id — that would mean an id collision or inconsistent declaration
    /// across nodes, both of which are programming errors.
    pub fn register(&mut self, descriptor: ObjectDescriptor) {
        match self.objects.get(&descriptor.id) {
            None => {
                self.objects.insert(descriptor.id, descriptor);
            }
            Some(existing) => {
                assert_eq!(
                    existing, &descriptor,
                    "conflicting registration for {}",
                    descriptor.id
                );
            }
        }
    }

    /// Convenience: register a freshly described mutable object and return
    /// its id.
    #[allow(clippy::too_many_arguments)]
    pub fn register_named(
        &mut self,
        name: &str,
        index: u64,
        size_bytes: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> ObjectId {
        let id = ObjectId::derive(name, index);
        self.register(ObjectDescriptor {
            id,
            size_bytes,
            creator,
            allocation_index: index,
            assignment,
            immutable: false,
        });
        id
    }

    /// Like [`Self::register_named`] but marks the object immutable after
    /// initialization (the GOS read-only object optimization).
    #[allow(clippy::too_many_arguments)]
    pub fn register_named_immutable(
        &mut self,
        name: &str,
        index: u64,
        size_bytes: usize,
        creator: NodeId,
        assignment: HomeAssignment,
    ) -> ObjectId {
        let id = ObjectId::derive(name, index);
        self.register(ObjectDescriptor {
            id,
            size_bytes,
            creator,
            allocation_index: index,
            assignment,
            immutable: true,
        });
        id
    }

    /// Look up a descriptor.
    pub fn get(&self, id: ObjectId) -> Option<&ObjectDescriptor> {
        self.objects.get(&id)
    }

    /// Look up a descriptor, panicking with a useful message if unknown.
    pub fn expect(&self, id: ObjectId) -> &ObjectDescriptor {
        self.objects
            .get(&id)
            .unwrap_or_else(|| panic!("object {id} is not registered"))
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Iterate over all descriptors (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &ObjectDescriptor> {
        self.objects.values()
    }

    /// All object ids whose initial home is `node` in a cluster of
    /// `num_nodes`.
    pub fn initially_homed_at(&self, node: NodeId, num_nodes: usize) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self
            .objects
            .values()
            .filter(|d| d.initial_home(num_nodes) == node)
            .map(|d| d.id)
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with(n: u64) -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        for i in 0..n {
            r.register_named("row", i, 128, NodeId::MASTER, HomeAssignment::RoundRobin);
        }
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = registry_with(4);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        let id = ObjectId::derive("row", 2);
        assert_eq!(r.expect(id).size_bytes, 128);
        assert!(r.get(ObjectId::derive("other", 0)).is_none());
    }

    #[test]
    fn duplicate_identical_registration_is_idempotent() {
        let mut r = registry_with(1);
        r.register_named("row", 0, 128, NodeId::MASTER, HomeAssignment::RoundRobin);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting registration")]
    fn conflicting_registration_panics() {
        let mut r = registry_with(1);
        r.register_named("row", 0, 256, NodeId::MASTER, HomeAssignment::RoundRobin);
    }

    #[test]
    fn initially_homed_at_partitions_objects() {
        let r = registry_with(8);
        let num_nodes = 4;
        let mut total = 0;
        for n in 0..num_nodes {
            let ids = r.initially_homed_at(NodeId::from(n), num_nodes);
            assert_eq!(ids.len(), 2, "round robin should place 2 of 8 on each node");
            total += ids.len();
        }
        assert_eq!(total, 8);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn expect_unknown_panics() {
        let r = ObjectRegistry::new();
        let _ = r.expect(ObjectId::derive("missing", 0));
    }
}
