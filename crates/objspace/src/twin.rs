//! Twins — pristine pre-write snapshots.
//!
//! In the multiple-writer protocol (TreadMarks-style, reused by HLRC), a
//! process about to write a cached copy for the first time in an interval
//! creates a *twin*: a byte-for-byte copy of the object as fetched. At
//! release time the diff is computed by comparing the (now modified) working
//! copy against the twin, and the twin is discarded.

use crate::data::ObjectData;
use crate::diff::Diff;

/// A pristine snapshot of an object taken just before the first local write
/// of an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Twin {
    snapshot: Vec<u8>,
}

impl Twin {
    /// Capture a twin of the current object contents.
    pub fn capture(data: &ObjectData) -> Self {
        Twin {
            snapshot: data.bytes().to_vec(),
        }
    }

    /// Size of the snapshot in bytes (same as the object).
    pub fn len(&self) -> usize {
        self.snapshot.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty()
    }

    /// The snapshot bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.snapshot
    }

    /// Compute the diff between the current working copy and this twin.
    ///
    /// # Panics
    /// Panics if the working copy has a different length from the twin
    /// (coherence units never change size).
    pub fn diff_against(&self, current: &ObjectData) -> Diff {
        Diff::between(&self.snapshot, current.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twin_captures_snapshot() {
        let mut data = ObjectData::from_elements(&[1.0f64, 2.0, 3.0]);
        let twin = Twin::capture(&data);
        assert_eq!(twin.len(), data.len());
        data.set(1, 9.0f64);
        // Twin still holds the old value.
        assert_ne!(twin.bytes(), data.bytes());
    }

    #[test]
    fn diff_against_detects_changes() {
        let mut data = ObjectData::from_elements(&[1.0f64, 2.0, 3.0, 4.0]);
        let twin = Twin::capture(&data);
        data.set(2, -3.0f64);
        let diff = twin.diff_against(&data);
        assert!(!diff.is_empty());
        // Applying the diff to a copy of the twin reproduces the new data.
        let mut reconstructed = ObjectData::from_bytes(twin.bytes().to_vec());
        diff.apply(&mut reconstructed);
        assert_eq!(reconstructed, data);
    }

    #[test]
    fn unchanged_object_produces_empty_diff() {
        let data = ObjectData::from_elements(&[5u32; 8]);
        let twin = Twin::capture(&data);
        assert!(twin.diff_against(&data).is_empty());
        assert!(!twin.is_empty());
    }
}
