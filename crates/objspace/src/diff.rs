//! Diffs — run-length deltas between a twin and the modified working copy.
//!
//! A diff is the set of contiguous byte runs that changed during an interval.
//! At release time the writer sends the diff to the object's home, where it
//! is applied to the home copy (home-based protocol: "each shared coherence
//! unit has a home to which all writes (diffs) are propagated and from which
//! all copies are derived").
//!
//! Diff size matters twice: it is the payload of a `diff` message (network
//! traffic, Figure 3/5) and it is the `d` of the home access coefficient
//! (Appendix A).

use crate::data::ObjectData;

/// One contiguous modified byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset of the run within the object.
    pub offset: u32,
    /// The new bytes for the run.
    pub bytes: Vec<u8>,
}

/// A complete diff for one object and one interval.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diff {
    runs: Vec<DiffRun>,
    /// Length of the object the diff was computed against, used to validate
    /// application targets.
    object_len: u32,
}

/// Granularity (bytes) at which changes are detected and coalesced. Word
/// granularity matches the paper's JVM implementation (Java fields/array
/// elements are at least 4 bytes; doubles are 8). Two modified words closer
/// than one gap word are merged into a single run to keep run bookkeeping
/// small, like real diff implementations do.
const WORD: usize = 4;

impl Diff {
    /// Compute the diff between `old` (the twin) and `new` (the working
    /// copy).
    ///
    /// # Panics
    /// Panics if the two buffers have different lengths.
    pub fn between(old: &[u8], new: &[u8]) -> Diff {
        assert_eq!(
            old.len(),
            new.len(),
            "twin and working copy must have identical length"
        );
        let len = old.len();
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut pos = 0usize;
        while pos < len {
            let chunk = WORD.min(len - pos);
            if old[pos..pos + chunk] != new[pos..pos + chunk] {
                // Start of a modified run; extend over consecutive modified
                // words.
                let start = pos;
                let mut end = pos + chunk;
                pos += chunk;
                while pos < len {
                    let c = WORD.min(len - pos);
                    if old[pos..pos + c] != new[pos..pos + c] {
                        end = pos + c;
                        pos += c;
                    } else {
                        break;
                    }
                }
                runs.push(DiffRun {
                    offset: u32::try_from(start).expect("object larger than 4 GiB"),
                    bytes: new[start..end].to_vec(),
                });
            } else {
                pos += chunk;
            }
        }
        Diff {
            runs,
            object_len: u32::try_from(len).expect("object larger than 4 GiB"),
        }
    }

    /// A diff that replaces the entire object (used when a writer has no twin
    /// because it allocated or wholly initialised the object).
    pub fn full(new: &[u8]) -> Diff {
        Diff {
            runs: if new.is_empty() {
                Vec::new()
            } else {
                vec![DiffRun {
                    offset: 0,
                    bytes: new.to_vec(),
                }]
            },
            object_len: u32::try_from(new.len()).expect("object larger than 4 GiB"),
        }
    }

    /// Reassemble a diff from explicit runs, validating the invariants that
    /// [`Diff::between`] / [`Diff::full`] establish by construction: runs are
    /// non-empty, sorted by offset, non-overlapping, and stay within
    /// `object_len`. Returns `None` on any violation — wire decoders use this
    /// so a malformed frame can never build a diff whose application would
    /// panic or corrupt an object.
    pub fn from_runs(runs: Vec<DiffRun>, object_len: u32) -> Option<Diff> {
        let mut next_free: u64 = 0;
        for run in &runs {
            if run.bytes.is_empty() {
                return None;
            }
            let start = u64::from(run.offset);
            let end = start + run.bytes.len() as u64;
            if start < next_free || end > u64::from(object_len) {
                return None;
            }
            next_free = end;
        }
        Some(Diff { runs, object_len })
    }

    /// Whether the diff contains no modified bytes.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of modified runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The modified runs.
    pub fn runs(&self) -> &[DiffRun] {
        &self.runs
    }

    /// Total count of modified payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Wire size of the diff: payload plus a (offset,length) header per run.
    /// This is the `d` used by the home access coefficient and the message
    /// size accounting.
    pub fn wire_bytes(&self) -> usize {
        self.payload_bytes() + self.runs.len() * 8
    }

    /// Length of the object this diff applies to.
    pub fn object_len(&self) -> usize {
        self.object_len as usize
    }

    /// Apply the diff to an object (normally the home copy).
    ///
    /// # Panics
    /// Panics if the target has a different length from the object the diff
    /// was computed against, or if any run falls outside the target.
    pub fn apply(&self, target: &mut ObjectData) {
        assert_eq!(
            target.len(),
            self.object_len as usize,
            "diff applied to object of different size"
        );
        let bytes = target.bytes_mut();
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.bytes.len();
            assert!(end <= bytes.len(), "diff run exceeds object bounds");
            bytes[start..end].copy_from_slice(&run.bytes);
        }
    }

    /// Merge another diff *computed against the same base object length* into
    /// this one; later runs win on overlap. Used when a node accumulates
    /// several intervals of local writes before flushing (lazy flush
    /// extension) and by the homeless baseline.
    pub fn merge(&mut self, later: &Diff) {
        assert_eq!(
            self.object_len, later.object_len,
            "cannot merge diffs of different objects"
        );
        // Apply both onto a scratch representation keyed by byte offset.
        // Diffs are small relative to objects, so a simple map-based merge is
        // fine and obviously correct.
        use std::collections::BTreeMap;
        let mut map: BTreeMap<u32, u8> = BTreeMap::new();
        for run in self.runs.iter().chain(later.runs.iter()) {
            for (i, b) in run.bytes.iter().enumerate() {
                map.insert(run.offset + i as u32, *b);
            }
        }
        // Re-coalesce into contiguous runs.
        let mut runs: Vec<DiffRun> = Vec::new();
        for (off, b) in map {
            match runs.last_mut() {
                Some(last) if last.offset + last.bytes.len() as u32 == off => {
                    last.bytes.push(b);
                }
                _ => runs.push(DiffRun {
                    offset: off,
                    bytes: vec![b],
                }),
            }
        }
        self.runs = runs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(vals: &[f64]) -> ObjectData {
        ObjectData::from_elements(vals)
    }

    #[test]
    fn from_runs_validates_bounds_and_order() {
        let run = |offset: u32, bytes: &[u8]| DiffRun {
            offset,
            bytes: bytes.to_vec(),
        };
        // A well-formed reassembly round-trips through the accessors.
        let d = Diff::from_runs(vec![run(0, &[1, 2]), run(4, &[3])], 8).expect("valid runs");
        assert_eq!(d.run_count(), 2);
        assert_eq!(d.object_len(), 8);
        assert_eq!(d.payload_bytes(), 3);
        // Empty diffs are valid (nothing modified).
        assert!(Diff::from_runs(Vec::new(), 8).is_some());
        // Out of bounds, overlapping, unsorted or empty runs are rejected.
        assert!(Diff::from_runs(vec![run(7, &[1, 2])], 8).is_none());
        assert!(Diff::from_runs(vec![run(0, &[1, 2]), run(1, &[3])], 8).is_none());
        assert!(Diff::from_runs(vec![run(4, &[1]), run(0, &[2])], 8).is_none());
        assert!(Diff::from_runs(vec![run(0, &[])], 8).is_none());
        // Adjacent runs touch but do not overlap: allowed.
        assert!(Diff::from_runs(vec![run(0, &[1]), run(1, &[2])], 8).is_some());
        // The reassembled diff applies like the original.
        let original = Diff::between(&[0u8; 8], &[9, 9, 0, 0, 0, 0, 7, 7]);
        let rebuilt = Diff::from_runs(original.runs().to_vec(), 8).expect("rebuild");
        assert_eq!(rebuilt, original);
    }

    #[test]
    fn identical_buffers_give_empty_diff() {
        let d = Diff::between(&[1, 2, 3, 4], &[1, 2, 3, 4]);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
        assert_eq!(d.wire_bytes(), 0);
    }

    #[test]
    fn single_word_change_detected() {
        let old = data(&[1.0, 2.0, 3.0]);
        let mut new = old.clone();
        new.set(1, 9.0f64);
        let d = Diff::between(old.bytes(), new.bytes());
        // 2.0 -> 9.0 only flips bits in the high-order word of the f64, so a
        // word-granularity diff captures exactly one 4-byte run.
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 4);
        let mut target = old.clone();
        d.apply(&mut target);
        assert_eq!(target, new);
    }

    #[test]
    fn adjacent_changes_coalesce_into_one_run() {
        let old = data(&[0.0; 8]);
        let mut new = old.clone();
        // 1.1 and 2.2 have non-zero bits in every byte, so both full f64
        // slots change and the two adjacent elements coalesce into one run.
        new.set(2, 1.1f64);
        new.set(3, 2.2f64);
        let d = Diff::between(old.bytes(), new.bytes());
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 16);
    }

    #[test]
    fn separated_changes_produce_separate_runs() {
        let old = data(&[0.0; 16]);
        let mut new = old.clone();
        new.set(0, 1.0f64);
        new.set(10, 2.0f64);
        let d = Diff::between(old.bytes(), new.bytes());
        assert_eq!(d.run_count(), 2);
        let mut target = old.clone();
        d.apply(&mut target);
        assert_eq!(target, new);
    }

    #[test]
    fn wire_size_includes_run_headers() {
        let old = data(&[0.0; 16]);
        let mut new = old.clone();
        new.set(0, 1.0f64);
        new.set(10, 2.0f64);
        let d = Diff::between(old.bytes(), new.bytes());
        assert_eq!(d.wire_bytes(), d.payload_bytes() + 16);
    }

    #[test]
    fn full_diff_replaces_everything() {
        let old = data(&[0.0; 4]);
        let new = data(&[1.0, 2.0, 3.0, 4.0]);
        let d = Diff::full(new.bytes());
        let mut target = old.clone();
        d.apply(&mut target);
        assert_eq!(target, new);
        assert_eq!(d.run_count(), 1);
        assert!(Diff::full(&[]).is_empty());
    }

    #[test]
    fn merge_later_wins_on_overlap() {
        let base = data(&[0.0; 4]);
        let mut v1 = base.clone();
        v1.set(1, 1.0f64);
        v1.set(2, 1.0f64);
        let mut v2 = base.clone();
        v2.set(2, 2.0f64);
        let mut d1 = Diff::between(base.bytes(), v1.bytes());
        let d2 = Diff::between(base.bytes(), v2.bytes());
        d1.merge(&d2);
        let mut target = base.clone();
        d1.apply(&mut target);
        assert_eq!(target.get::<f64>(1), 1.0);
        assert_eq!(target.get::<f64>(2), 2.0);
    }

    #[test]
    #[should_panic(expected = "identical length")]
    fn between_rejects_length_mismatch() {
        let _ = Diff::between(&[0u8; 4], &[0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn apply_rejects_wrong_target() {
        let old = data(&[0.0; 4]);
        let mut new = old.clone();
        new.set(0, 5.0f64);
        let d = Diff::between(old.bytes(), new.bytes());
        let mut wrong = ObjectData::zeroed(8);
        d.apply(&mut wrong);
    }

    #[test]
    fn non_word_multiple_lengths_are_handled() {
        // 10-byte object: trailing 2-byte chunk must still be diffed.
        let old = vec![0u8; 10];
        let mut new = old.clone();
        new[9] = 7;
        let d = Diff::between(&old, &new);
        assert_eq!(d.run_count(), 1);
        let mut target = ObjectData::from_bytes(old);
        d.apply(&mut target);
        assert_eq!(target.bytes()[9], 7);
    }
}
