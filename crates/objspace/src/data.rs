//! Payload of one coherence unit.
//!
//! [`ObjectData`] is an owned, dynamically-sized buffer with typed
//! accessors. The home copy of every object and every cached copy hold one
//! `ObjectData`; twins are snapshots of it and diffs are deltas between two
//! of them.
//!
//! The storage is 8-byte aligned (a `Vec<u64>` internally), which lets the
//! same buffer be viewed either as raw bytes — what twins, diffs and the
//! wire protocol operate on — or **borrowed in place** as a typed element
//! slice through [`ObjectData::as_slice`] / [`ObjectData::as_mut_slice`].
//! The borrowed views are what the runtime's `ReadView`/`WriteView` guards
//! expose to applications: accesses at the home touch the engine's storage
//! directly, with no decode/encode round-trip through a `Vec<T>`.

use crate::element::Element;
use crate::raw;

/// The payload of a shared object.
#[derive(Debug, Clone)]
pub struct ObjectData {
    /// 8-byte-aligned backing storage; only the first `len` bytes are
    /// payload, and the tail of the last word stays zeroed so buffer
    /// comparisons can ignore it.
    words: Vec<u64>,
    len: usize,
}

impl ObjectData {
    fn with_capacity_bytes(len: usize) -> Self {
        ObjectData {
            words: vec![0; len.div_ceil(8)],
            len,
        }
    }

    /// Create a zero-filled object of `len` bytes (the state of a freshly
    /// allocated Java object / array).
    pub fn zeroed(len: usize) -> Self {
        ObjectData::with_capacity_bytes(len)
    }

    /// Create an object from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let mut data = ObjectData::with_capacity_bytes(bytes.len());
        data.bytes_mut().copy_from_slice(&bytes);
        data
    }

    /// Create an object holding the encoding of a typed slice.
    pub fn from_elements<T: Element>(values: &[T]) -> Self {
        let mut data = ObjectData::with_capacity_bytes(values.len() * T::SIZE);
        data.as_mut_slice::<T>().copy_from_slice(values);
        data
    }

    /// Size of the payload in bytes. This is the `o` of the home access
    /// coefficient (Appendix A).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw byte view.
    pub fn bytes(&self) -> &[u8] {
        raw::bytes_of(&self.words, self.len)
    }

    /// Mutable raw byte view.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        raw::bytes_of_mut(&mut self.words, self.len)
    }

    /// Consume into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes().to_vec()
    }

    /// Borrow the whole payload as a typed slice, in place — the zero-copy
    /// read path of the GOS.
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of the element size.
    pub fn as_slice<T: Element>(&self) -> &[T] {
        raw::cast_slice(self.bytes())
    }

    /// Mutably borrow the whole payload as a typed slice, in place — the
    /// zero-copy write path of the GOS.
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of the element size.
    pub fn as_mut_slice<T: Element>(&mut self) -> &mut [T] {
        raw::cast_slice_mut(self.bytes_mut())
    }

    /// Decode the whole payload into an owned typed vector. Prefer
    /// [`Self::as_slice`] on hot paths; this exists for callers that need
    /// ownership (result gathering, tests).
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of the element size.
    pub fn as_elements<T: Element>(&self) -> Vec<T> {
        self.as_slice::<T>().to_vec()
    }

    /// Number of typed elements in the payload.
    pub fn element_count<T: Element>(&self) -> usize {
        self.len / T::SIZE
    }

    /// Read one typed element at element index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn get<T: Element>(&self, idx: usize) -> T {
        let slice = self.as_slice::<T>();
        assert!(idx < slice.len(), "element index {idx} out of range");
        slice[idx]
    }

    /// Overwrite one typed element at element index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn set<T: Element>(&mut self, idx: usize, value: T) {
        let slice = self.as_mut_slice::<T>();
        assert!(idx < slice.len(), "element index {idx} out of range");
        slice[idx] = value;
    }

    /// Overwrite the whole payload from a typed slice.
    ///
    /// # Panics
    /// Panics if the encoded length differs from the current payload length
    /// (coherence units never change size after allocation, mirroring Java
    /// arrays).
    pub fn overwrite_elements<T: Element>(&mut self, values: &[T]) {
        assert_eq!(
            values.len() * T::SIZE,
            self.len,
            "object payload size is fixed at allocation time"
        );
        self.as_mut_slice::<T>().copy_from_slice(values);
    }

    /// Overwrite the whole payload from raw bytes of identical length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn overwrite_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.len,
            "object payload size is fixed at allocation time"
        );
        self.bytes_mut().copy_from_slice(bytes);
    }
}

impl PartialEq for ObjectData {
    fn eq(&self, other: &Self) -> bool {
        self.bytes() == other.bytes()
    }
}

impl Eq for ObjectData {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::encode_slice;

    #[test]
    fn zeroed_object_is_all_zero() {
        let d = ObjectData::zeroed(16);
        assert_eq!(d.len(), 16);
        assert!(!d.is_empty());
        assert!(d.bytes().iter().all(|&b| b == 0));
        assert_eq!(d.as_elements::<f64>(), vec![0.0, 0.0]);
    }

    #[test]
    fn typed_roundtrip() {
        let d = ObjectData::from_elements(&[1.5f64, -2.5, 3.0]);
        assert_eq!(d.len(), 24);
        assert_eq!(d.element_count::<f64>(), 3);
        assert_eq!(d.as_elements::<f64>(), vec![1.5, -2.5, 3.0]);
        assert_eq!(d.get::<f64>(1), -2.5);
    }

    #[test]
    fn borrowed_views_alias_the_storage() {
        let mut d = ObjectData::from_elements(&[1u32, 2, 3, 4]);
        d.as_mut_slice::<u32>()[2] = 99;
        assert_eq!(d.as_slice::<u32>(), &[1, 2, 99, 4]);
        // The byte view sees the same storage the typed view wrote.
        assert_eq!(d.get::<u32>(2), 99);
        assert_eq!(encode_slice(&[99u32]), &d.bytes()[8..12]);
    }

    #[test]
    fn set_updates_single_element() {
        let mut d = ObjectData::from_elements(&[1u32, 2, 3, 4]);
        d.set(2, 99u32);
        assert_eq!(d.as_elements::<u32>(), vec![1, 2, 99, 4]);
    }

    #[test]
    fn overwrite_keeps_length() {
        let mut d = ObjectData::from_elements(&[0.0f64; 4]);
        d.overwrite_elements(&[1.0f64, 2.0, 3.0, 4.0]);
        assert_eq!(d.as_elements::<f64>(), vec![1.0, 2.0, 3.0, 4.0]);
        let other = ObjectData::from_elements(&[9.0f64, 8.0, 7.0, 6.0]);
        d.overwrite_bytes(other.bytes());
        assert_eq!(d.as_elements::<f64>(), vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "fixed at allocation time")]
    fn overwrite_with_wrong_size_panics() {
        let mut d = ObjectData::zeroed(8);
        d.overwrite_elements(&[1.0f64, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let d = ObjectData::zeroed(8);
        let _ = d.get::<f64>(1);
    }

    #[test]
    fn empty_object() {
        let d = ObjectData::zeroed(0);
        assert!(d.is_empty());
        assert_eq!(d.element_count::<u8>(), 0);
        assert!(d.as_slice::<u64>().is_empty());
    }

    #[test]
    fn into_bytes_returns_payload() {
        let d = ObjectData::from_elements(&[7u8, 8, 9]);
        assert_eq!(d.into_bytes(), vec![7, 8, 9]);
    }

    #[test]
    fn equality_ignores_buffer_padding() {
        // 3-byte payloads occupy one word; the padding tail must not affect
        // equality.
        let a = ObjectData::from_bytes(vec![1, 2, 3]);
        let b = ObjectData::from_bytes(vec![1, 2, 3]);
        let c = ObjectData::from_bytes(vec![1, 2, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn odd_lengths_are_supported() {
        let mut d = ObjectData::from_bytes((0..13u8).collect());
        assert_eq!(d.len(), 13);
        d.bytes_mut()[12] = 99;
        assert_eq!(d.bytes()[12], 99);
        assert_eq!(d.element_count::<u32>(), 3);
    }
}
