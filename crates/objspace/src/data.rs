//! Payload of one coherence unit.
//!
//! [`ObjectData`] is an owned, dynamically-sized byte buffer with typed
//! accessors. The home copy of every object and every cached copy hold one
//! `ObjectData`; twins are snapshots of it and diffs are deltas between two
//! of them.

use crate::element::{decode_slice, encode_slice, Element};
use serde::{Deserialize, Serialize};

/// The byte payload of a shared object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectData {
    bytes: Vec<u8>,
}

impl ObjectData {
    /// Create a zero-filled object of `len` bytes (the state of a freshly
    /// allocated Java object / array).
    pub fn zeroed(len: usize) -> Self {
        ObjectData {
            bytes: vec![0; len],
        }
    }

    /// Create an object from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        ObjectData { bytes }
    }

    /// Create an object holding the encoding of a typed slice.
    pub fn from_elements<T: Element>(values: &[T]) -> Self {
        ObjectData {
            bytes: encode_slice(values),
        }
    }

    /// Size of the payload in bytes. This is the `o` of the home access
    /// coefficient (Appendix A).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw byte view.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consume into raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Decode the whole payload as a typed vector.
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of the element size.
    pub fn as_elements<T: Element>(&self) -> Vec<T> {
        decode_slice(&self.bytes)
    }

    /// Number of typed elements in the payload.
    pub fn element_count<T: Element>(&self) -> usize {
        self.bytes.len() / T::SIZE
    }

    /// Read one typed element at element index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn get<T: Element>(&self, idx: usize) -> T {
        let start = idx * T::SIZE;
        let end = start + T::SIZE;
        assert!(end <= self.bytes.len(), "element index {idx} out of range");
        T::read_from(&self.bytes[start..end])
    }

    /// Overwrite one typed element at element index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn set<T: Element>(&mut self, idx: usize, value: T) {
        let start = idx * T::SIZE;
        let end = start + T::SIZE;
        assert!(end <= self.bytes.len(), "element index {idx} out of range");
        value.store_into(&mut self.bytes[start..end]);
    }

    /// Overwrite the whole payload from a typed slice.
    ///
    /// # Panics
    /// Panics if the encoded length differs from the current payload length
    /// (coherence units never change size after allocation, mirroring Java
    /// arrays).
    pub fn overwrite_elements<T: Element>(&mut self, values: &[T]) {
        let encoded = encode_slice(values);
        assert_eq!(
            encoded.len(),
            self.bytes.len(),
            "object payload size is fixed at allocation time"
        );
        self.bytes = encoded;
    }

    /// Overwrite the whole payload from raw bytes of identical length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn overwrite_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.bytes.len(),
            "object payload size is fixed at allocation time"
        );
        self.bytes.copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_object_is_all_zero() {
        let d = ObjectData::zeroed(16);
        assert_eq!(d.len(), 16);
        assert!(!d.is_empty());
        assert!(d.bytes().iter().all(|&b| b == 0));
        assert_eq!(d.as_elements::<f64>(), vec![0.0, 0.0]);
    }

    #[test]
    fn typed_roundtrip() {
        let d = ObjectData::from_elements(&[1.5f64, -2.5, 3.0]);
        assert_eq!(d.len(), 24);
        assert_eq!(d.element_count::<f64>(), 3);
        assert_eq!(d.as_elements::<f64>(), vec![1.5, -2.5, 3.0]);
        assert_eq!(d.get::<f64>(1), -2.5);
    }

    #[test]
    fn set_updates_single_element() {
        let mut d = ObjectData::from_elements(&[1u32, 2, 3, 4]);
        d.set(2, 99u32);
        assert_eq!(d.as_elements::<u32>(), vec![1, 2, 99, 4]);
    }

    #[test]
    fn overwrite_keeps_length() {
        let mut d = ObjectData::from_elements(&[0.0f64; 4]);
        d.overwrite_elements(&[1.0f64, 2.0, 3.0, 4.0]);
        assert_eq!(d.as_elements::<f64>(), vec![1.0, 2.0, 3.0, 4.0]);
        let other = ObjectData::from_elements(&[9.0f64, 8.0, 7.0, 6.0]);
        d.overwrite_bytes(other.bytes());
        assert_eq!(d.as_elements::<f64>(), vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "fixed at allocation time")]
    fn overwrite_with_wrong_size_panics() {
        let mut d = ObjectData::zeroed(8);
        d.overwrite_elements(&[1.0f64, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let d = ObjectData::zeroed(8);
        let _ = d.get::<f64>(1);
    }

    #[test]
    fn empty_object() {
        let d = ObjectData::zeroed(0);
        assert!(d.is_empty());
        assert_eq!(d.element_count::<u8>(), 0);
    }

    #[test]
    fn into_bytes_returns_payload() {
        let d = ObjectData::from_elements(&[7u8, 8, 9]);
        assert_eq!(d.into_bytes(), vec![7, 8, 9]);
    }
}
