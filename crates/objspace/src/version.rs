//! Object versions.
//!
//! The home copy of each object carries a monotonically increasing version,
//! bumped every time a diff (or a home write interval) is applied. Cached
//! copies remember the version they were derived from; write notices carry
//! `(object, version)` pairs so acquirers can invalidate exactly the cached
//! copies that are stale — the write-notice mechanism of LRC, simplified to a
//! single counter per object because all writes funnel through the home
//! (home-based protocol).

use std::fmt;

/// A monotonically increasing per-object version number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version of a freshly allocated object.
    pub const INITIAL: Version = Version(0);

    /// The next version (after one more write interval reaches the home).
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// Whether a cached copy at version `self` is stale with respect to a
    /// write notice announcing `announced`.
    pub fn is_stale_against(self, announced: Version) -> bool {
        self < announced
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_is_zero() {
        assert_eq!(Version::INITIAL, Version(0));
    }

    #[test]
    fn next_increments() {
        assert_eq!(Version(3).next(), Version(4));
        assert_eq!(Version::INITIAL.next().next(), Version(2));
    }

    #[test]
    fn staleness() {
        assert!(Version(1).is_stale_against(Version(2)));
        assert!(!Version(2).is_stale_against(Version(2)));
        assert!(!Version(3).is_stale_against(Version(2)));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Version(7)), "v7");
    }
}
