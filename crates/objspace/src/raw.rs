//! Byte/element reinterpretation over the aligned payload buffer.
//!
//! [`crate::ObjectData`] stores its payload in a `Vec<u64>` so that the
//! buffer is 8-byte aligned — at least the alignment of every [`Element`]
//! type. That makes it sound to view the same storage either as raw bytes
//! (what twins, diffs and the wire protocol operate on) or as a typed
//! element slice (what the runtime's zero-copy views hand to applications),
//! without ever copying or re-encoding the payload.
//!
//! This module contains all of the crate's `unsafe`. The safety argument
//! rests on three facts, each enforced at compile time or checked here:
//!
//! 1. **Validity** — [`Element`] is sealed to the ten primitive numeric
//!    types, all of which are plain-old-data: any bit pattern is a valid
//!    value, and they contain no padding, so round-tripping through bytes
//!    can neither produce an invalid value nor read uninitialized memory.
//! 2. **Alignment** — the buffer base is aligned to 8, and
//!    `align_of::<T>() <= 8` with `T::SIZE == size_of::<T>()` a power of
//!    two dividing 8 for every sealed element, so element `i` at byte
//!    offset `i * T::SIZE` from the base is aligned. Slices handed to
//!    [`cast_slice`] always start at the buffer base.
//! 3. **Provenance and lifetime** — every cast borrows from the `Vec<u64>`
//!    it reinterprets, with the borrow checker enforcing the usual shared/
//!    exclusive rules on the whole buffer.
//!
//! Elements are stored in **native byte order**: the cluster is simulated
//! inside one process, so payloads never cross a real machine boundary and
//! the typed view and the byte-level diff machinery agree by construction.

#![allow(unsafe_code)]

use crate::element::Element;

/// View the first `len` bytes of the word buffer.
///
/// # Panics
/// Panics if `len` exceeds the buffer capacity.
pub(crate) fn bytes_of(words: &[u64], len: usize) -> &[u8] {
    assert!(len <= words.len() * 8, "payload length exceeds buffer");
    // SAFETY: `words` owns at least `len` initialized bytes, `u8` has
    // alignment 1, and the returned slice borrows `words` (see module docs).
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), len) }
}

/// Mutably view the first `len` bytes of the word buffer.
///
/// # Panics
/// Panics if `len` exceeds the buffer capacity.
pub(crate) fn bytes_of_mut(words: &mut [u64], len: usize) -> &mut [u8] {
    assert!(len <= words.len() * 8, "payload length exceeds buffer");
    // SAFETY: as in `bytes_of`, plus exclusivity inherited from `&mut words`.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) }
}

/// Reinterpret a payload byte slice as a typed element slice.
///
/// `bytes` must be a prefix view of the aligned word buffer (this is the
/// only way the crate produces payload slices), so its base pointer carries
/// the buffer's 8-byte alignment.
///
/// # Panics
/// Panics if the slice length is not a multiple of the element size or the
/// base pointer is misaligned for `T` (impossible for buffer-backed slices;
/// checked defensively).
pub(crate) fn cast_slice<T: Element>(bytes: &[u8]) -> &[T] {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        T::SIZE
    );
    assert!(
        (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()),
        "payload base is not aligned for the element type"
    );
    // SAFETY: length and alignment checked above; `T` is sealed POD with
    // `T::SIZE == size_of::<T>()`; the borrow is tied to `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / T::SIZE) }
}

/// Mutable variant of [`cast_slice`].
///
/// # Panics
/// As [`cast_slice`].
pub(crate) fn cast_slice_mut<T: Element>(bytes: &mut [u8]) -> &mut [T] {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte length {} is not a multiple of element size {}",
        bytes.len(),
        T::SIZE
    );
    assert!(
        (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>()),
        "payload base is not aligned for the element type"
    );
    // SAFETY: as in `cast_slice`, plus exclusivity inherited from `bytes`.
    unsafe { std::slice::from_raw_parts_mut(bytes.as_mut_ptr().cast::<T>(), bytes.len() / T::SIZE) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_view_roundtrip() {
        let mut words = vec![0u64; 2];
        bytes_of_mut(&mut words, 16).copy_from_slice(&[1u8; 16]);
        assert!(bytes_of(&words, 16).iter().all(|&b| b == 1));
        assert_eq!(bytes_of(&words, 3).len(), 3);
    }

    #[test]
    fn typed_cast_roundtrip() {
        let mut words = vec![0u64; 3];
        {
            let floats = cast_slice_mut::<f64>(bytes_of_mut(&mut words, 24));
            floats.copy_from_slice(&[1.5, -2.5, 3.25]);
        }
        assert_eq!(cast_slice::<f64>(bytes_of(&words, 24)), &[1.5, -2.5, 3.25]);
        assert_eq!(cast_slice::<u32>(bytes_of(&words, 24)).len(), 6);
    }

    #[test]
    #[should_panic(expected = "not a multiple of element size")]
    fn misaligned_length_rejected() {
        let words = vec![0u64; 1];
        let _ = cast_slice::<f64>(bytes_of(&words, 7));
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn oversized_view_rejected() {
        let words = vec![0u64; 1];
        let _ = bytes_of(&words, 9);
    }
}
