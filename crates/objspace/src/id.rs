//! Identities used throughout the DSM: cluster nodes, shared objects,
//! distributed locks and barriers.
//!
//! Object identifiers are derived deterministically from a (name, index)
//! pair so that every node of the cluster computes the same `ObjectId` for
//! the same logical object without any allocation protocol — the analogue of
//! all JVM nodes resolving the same static field or array element.

use std::fmt;

/// A cluster node (one "processor" in the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node on which the application is started; in the paper this node
    /// creates the initial objects and hosts distributed synchronization.
    pub const MASTER: NodeId = NodeId(0);

    /// Numeric index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u16::try_from(v).expect("node index exceeds u16"))
    }
}

/// A shared coherence unit (a distributed-shared Java object in the paper's
/// GOS; an array row, a counter object, a tree node, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Derive an object id deterministically from a logical name and an
    /// index within that name (e.g. `("sor.matrix", row)`).
    ///
    /// Uses the FNV-1a hash so that all nodes — and repeated runs — agree on
    /// identifiers without communication. Collisions across distinct
    /// `(name, index)` pairs are astronomically unlikely for the workload
    /// sizes involved (≤ a few hundred thousand objects), and the registry
    /// detects them defensively.
    pub fn derive(name: &str, index: u64) -> ObjectId {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        for byte in index.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        ObjectId(hash)
    }

    /// Raw identifier value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj:{:016x}", self.0)
    }
}

/// A distributed lock (the paper's Java monitor / `synchronized` target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

impl LockId {
    /// Derive a lock id from a logical name (all nodes agree without
    /// communication).
    pub fn derive(name: &str) -> LockId {
        let oid = ObjectId::derive(name, u64::MAX);
        LockId((oid.0 >> 32) as u32 ^ (oid.0 as u32))
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock:{}", self.0)
    }
}

/// A barrier used by the iterative applications (SOR, ASP, Nbody). The
/// paper's programs build barriers from lock/wait primitives; we expose them
/// as a first-class synchronization object managed by the master node, which
/// produces the same message pattern (arrive → release with write notices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BarrierId(pub u32);

impl fmt::Display for BarrierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "barrier:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_master_is_zero() {
        assert_eq!(NodeId::MASTER, NodeId(0));
        assert_eq!(NodeId::MASTER.index(), 0);
        assert_eq!(NodeId::from(3usize), NodeId(3));
    }

    #[test]
    fn object_ids_are_deterministic() {
        assert_eq!(
            ObjectId::derive("sor.matrix", 7),
            ObjectId::derive("sor.matrix", 7)
        );
        assert_ne!(
            ObjectId::derive("sor.matrix", 7),
            ObjectId::derive("sor.matrix", 8)
        );
        assert_ne!(
            ObjectId::derive("sor.matrix", 7),
            ObjectId::derive("asp.dist", 7)
        );
    }

    #[test]
    fn object_ids_have_no_collisions_for_realistic_workloads() {
        let mut seen = HashSet::new();
        for name in [
            "sor.matrix",
            "asp.dist",
            "nbody.bodies",
            "tsp.state",
            "syn.counter",
        ] {
            for i in 0..4096u64 {
                assert!(
                    seen.insert(ObjectId::derive(name, i)),
                    "collision for {name}[{i}]"
                );
            }
        }
    }

    #[test]
    fn lock_ids_are_deterministic_and_distinct() {
        assert_eq!(LockId::derive("lock0"), LockId::derive("lock0"));
        assert_ne!(LockId::derive("lock0"), LockId::derive("lock1"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(3)), "P3");
        assert!(format!("{}", ObjectId::derive("x", 0)).starts_with("obj:"));
        assert!(format!("{}", LockId(9)).starts_with("lock:"));
        assert!(format!("{}", BarrierId(2)).starts_with("barrier:"));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u16")]
    fn node_from_huge_index_panics() {
        let _ = NodeId::from(70_000usize);
    }
}
