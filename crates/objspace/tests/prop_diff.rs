//! Property-based tests for the twin/diff machinery — the correctness core
//! of the multiple-writer protocol. If diffs ever lose or corrupt writes, the
//! whole DSM silently computes wrong answers, so these invariants get the
//! heaviest random testing.

use dsm_objspace::{ObjectData, Twin};
use proptest::prelude::*;

/// Strategy: an object payload plus a set of (index, new_value) writes.
fn payload_and_writes() -> impl Strategy<Value = (Vec<u8>, Vec<(usize, u8)>)> {
    (1usize..512).prop_flat_map(|len| {
        (
            proptest::collection::vec(any::<u8>(), len),
            proptest::collection::vec((0..len, any::<u8>()), 0..64),
        )
    })
}

proptest! {
    /// twin -> write -> diff -> apply reproduces the working copy exactly,
    /// for arbitrary contents and arbitrary write sets.
    #[test]
    fn diff_roundtrip_reconstructs_writes((bytes, writes) in payload_and_writes()) {
        let original = ObjectData::from_bytes(bytes);
        let twin = Twin::capture(&original);
        let mut working = original.clone();
        for (idx, val) in &writes {
            working.bytes_mut()[*idx] = *val;
        }
        let diff = twin.diff_against(&working);
        let mut home_copy = original.clone();
        diff.apply(&mut home_copy);
        prop_assert_eq!(home_copy, working);
    }

    /// A diff never claims more payload than the object size and its wire
    /// size is payload + 8 bytes per run.
    #[test]
    fn diff_size_bounds((bytes, writes) in payload_and_writes()) {
        let original = ObjectData::from_bytes(bytes);
        let twin = Twin::capture(&original);
        let mut working = original.clone();
        for (idx, val) in &writes {
            working.bytes_mut()[*idx] = *val;
        }
        let diff = twin.diff_against(&working);
        prop_assert!(diff.payload_bytes() <= original.len() + 3); // word rounding
        prop_assert_eq!(diff.wire_bytes(), diff.payload_bytes() + 8 * diff.run_count());
    }

    /// Diffs from two writers touching disjoint regions can be applied in
    /// either order with the same result (the multiple-writer guarantee under
    /// false sharing).
    #[test]
    fn disjoint_diffs_commute(len in 2usize..256, seed in any::<u64>()) {
        // Split the object in two halves; writer A modifies the first half,
        // writer B the second (word-aligned halves to avoid false sharing at
        // the word granularity of the diff).
        let half = ((len / 2) / 4) * 4;
        prop_assume!(half >= 4 && len - half >= 4);
        let base = ObjectData::from_bytes((0..len).map(|i| (i as u8).wrapping_mul(31)).collect());

        let mut a = base.clone();
        let mut b = base.clone();
        let twin_a = Twin::capture(&a);
        let twin_b = Twin::capture(&b);
        // Deterministic pseudo-writes derived from the seed.
        let mut s = seed;
        let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1); (s >> 32) as u8 };
        for i in 0..half { a.bytes_mut()[i] = next(); }
        for i in half..len { b.bytes_mut()[i] = next(); }

        let da = twin_a.diff_against(&a);
        let db = twin_b.diff_against(&b);

        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        prop_assert_eq!(&ab, &ba);
        // And the merged state contains both writers' updates.
        prop_assert_eq!(&ab.bytes()[..half], &a.bytes()[..half]);
        prop_assert_eq!(&ab.bytes()[half..], &b.bytes()[half..]);
    }

    /// Merging two sequential diffs is equivalent to applying them in order.
    #[test]
    fn merge_equals_sequential_application((bytes, writes) in payload_and_writes()) {
        prop_assume!(writes.len() >= 2);
        let split = writes.len() / 2;
        let base = ObjectData::from_bytes(bytes);

        // Interval 1.
        let twin1 = Twin::capture(&base);
        let mut v1 = base.clone();
        for (idx, val) in &writes[..split] { v1.bytes_mut()[*idx] = *val; }
        let d1 = twin1.diff_against(&v1);

        // Interval 2 continues from v1.
        let twin2 = Twin::capture(&v1);
        let mut v2 = v1.clone();
        for (idx, val) in &writes[split..] { v2.bytes_mut()[*idx] = *val; }
        let d2 = twin2.diff_against(&v2);

        // Sequential application.
        let mut seq = base.clone();
        d1.apply(&mut seq);
        d2.apply(&mut seq);

        // Merged application.
        let mut merged = d1.clone();
        merged.merge(&d2);
        let mut via_merge = base.clone();
        merged.apply(&mut via_merge);

        prop_assert_eq!(seq, via_merge);
    }

    /// An unmodified working copy always produces an empty diff.
    #[test]
    fn no_writes_empty_diff(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let base = ObjectData::from_bytes(bytes);
        let twin = Twin::capture(&base);
        let diff = twin.diff_against(&base);
        prop_assert!(diff.is_empty());
        prop_assert_eq!(diff.wire_bytes(), 0);
    }
}
