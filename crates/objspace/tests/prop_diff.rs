//! Randomized property tests for the twin/diff machinery — the correctness
//! core of the multiple-writer protocol. If diffs ever lose or corrupt
//! writes, the whole DSM silently computes wrong answers, so these
//! invariants get the heaviest random testing.
//!
//! The cases are driven by the workspace's seeded [`SmallRng`] (the build
//! environment has no external crates, so `proptest` is replaced by a fixed
//! seed and a generous case count — every failure is reproducible from the
//! case index).

use dsm_objspace::{ObjectData, Twin};
use dsm_util::SmallRng;

const CASES: u64 = 256;

/// One random payload plus a set of (index, new_value) writes.
fn payload_and_writes(rng: &mut SmallRng) -> (Vec<u8>, Vec<(usize, u8)>) {
    let len = 1 + rng.gen_index(511);
    let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
    let writes: Vec<(usize, u8)> = (0..rng.gen_index(64))
        .map(|_| (rng.gen_index(len), rng.next_u64() as u8))
        .collect();
    (bytes, writes)
}

/// twin -> write -> diff -> apply reproduces the working copy exactly, for
/// arbitrary contents and arbitrary write sets.
#[test]
fn diff_roundtrip_reconstructs_writes() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    for case in 0..CASES {
        let (bytes, writes) = payload_and_writes(&mut rng);
        let original = ObjectData::from_bytes(bytes);
        let twin = Twin::capture(&original);
        let mut working = original.clone();
        for (idx, val) in &writes {
            working.bytes_mut()[*idx] = *val;
        }
        let diff = twin.diff_against(&working);
        let mut home_copy = original.clone();
        diff.apply(&mut home_copy);
        assert_eq!(home_copy, working, "case {case}");
    }
}

/// A diff never claims more payload than the object size (modulo word
/// rounding) and its wire size is payload + 8 bytes per run.
#[test]
fn diff_size_bounds() {
    let mut rng = SmallRng::seed_from_u64(0x512E);
    for case in 0..CASES {
        let (bytes, writes) = payload_and_writes(&mut rng);
        let original = ObjectData::from_bytes(bytes);
        let twin = Twin::capture(&original);
        let mut working = original.clone();
        for (idx, val) in &writes {
            working.bytes_mut()[*idx] = *val;
        }
        let diff = twin.diff_against(&working);
        assert!(diff.payload_bytes() <= original.len() + 3, "case {case}");
        assert_eq!(
            diff.wire_bytes(),
            diff.payload_bytes() + 8 * diff.run_count(),
            "case {case}"
        );
    }
}

/// Diffs from two writers touching disjoint regions can be applied in either
/// order with the same result (the multiple-writer guarantee under false
/// sharing).
#[test]
fn disjoint_diffs_commute() {
    let mut rng = SmallRng::seed_from_u64(0xC0);
    let mut exercised = 0;
    for case in 0..CASES {
        let len = 2 + rng.gen_index(254);
        // Split the object in two word-aligned halves; writer A modifies the
        // first half, writer B the second, so the halves never share a word.
        let half = ((len / 2) / 4) * 4;
        if half < 4 || len - half < 4 {
            continue;
        }
        exercised += 1;
        let base = ObjectData::from_bytes((0..len).map(|i| (i as u8).wrapping_mul(31)).collect());

        let mut a = base.clone();
        let mut b = base.clone();
        let twin_a = Twin::capture(&a);
        let twin_b = Twin::capture(&b);
        for i in 0..half {
            a.bytes_mut()[i] = rng.next_u64() as u8;
        }
        for i in half..len {
            b.bytes_mut()[i] = rng.next_u64() as u8;
        }

        let da = twin_a.diff_against(&a);
        let db = twin_b.diff_against(&b);

        let mut ab = base.clone();
        da.apply(&mut ab);
        db.apply(&mut ab);
        let mut ba = base.clone();
        db.apply(&mut ba);
        da.apply(&mut ba);
        assert_eq!(ab, ba, "case {case}");
        // And the merged state contains both writers' updates.
        assert_eq!(&ab.bytes()[..half], &a.bytes()[..half], "case {case}");
        assert_eq!(&ab.bytes()[half..], &b.bytes()[half..], "case {case}");
    }
    assert!(
        exercised > CASES / 2,
        "too few cases exercised: {exercised}"
    );
}

/// Merging two sequential diffs is equivalent to applying them in order.
#[test]
fn merge_equals_sequential_application() {
    let mut rng = SmallRng::seed_from_u64(0x4E16E);
    for case in 0..CASES {
        let (bytes, writes) = payload_and_writes(&mut rng);
        if writes.len() < 2 {
            continue;
        }
        let split = writes.len() / 2;
        let base = ObjectData::from_bytes(bytes);

        // Interval 1.
        let twin1 = Twin::capture(&base);
        let mut v1 = base.clone();
        for (idx, val) in &writes[..split] {
            v1.bytes_mut()[*idx] = *val;
        }
        let d1 = twin1.diff_against(&v1);

        // Interval 2 continues from v1.
        let twin2 = Twin::capture(&v1);
        let mut v2 = v1.clone();
        for (idx, val) in &writes[split..] {
            v2.bytes_mut()[*idx] = *val;
        }
        let d2 = twin2.diff_against(&v2);

        // Sequential application.
        let mut seq = base.clone();
        d1.apply(&mut seq);
        d2.apply(&mut seq);

        // Merged application.
        let mut merged = d1.clone();
        merged.merge(&d2);
        let mut via_merge = base.clone();
        merged.apply(&mut via_merge);

        assert_eq!(seq, via_merge, "case {case}");
    }
}

/// An unmodified working copy always produces an empty diff.
#[test]
fn no_writes_empty_diff() {
    let mut rng = SmallRng::seed_from_u64(0xE4);
    for case in 0..CASES {
        let len = rng.gen_index(256);
        let base = ObjectData::from_bytes((0..len).map(|_| rng.next_u64() as u8).collect());
        let twin = Twin::capture(&base);
        let diff = twin.diff_against(&base);
        assert!(diff.is_empty(), "case {case}");
        assert_eq!(diff.wire_bytes(), 0, "case {case}");
    }
}
