//! The policy × workload conformance matrix.
//!
//! One place defines the grid every conformance sweep runs over: the six
//! application workloads (SOR, ASP, TSP, N-body, synthetic, and the KV
//! serving workload) at small deterministic parameters, and the seven
//! built-in home-migration policies
//! (NM, FT2, AT, JUMP, LAZY, HYST, EWMA). The integration suite
//! (`tests/tests/sim_matrix.rs`) and the `sim_matrix` binary both consume
//! it, so adding a workload or policy here automatically widens every
//! sweep.
//!
//! For every cell the harness can run the threaded fabric (the reference)
//! and the deterministic sim fabric under a seed sweep, and check the
//! conformance claims:
//!
//! * the application **fingerprint** (a bit-exact FNV over the result) is
//!   identical across fabrics, seeds and replays — migration policies and
//!   message schedules are performance knobs, never semantics;
//! * the same seed replays a **bit-identical delivery trace**;
//! * the **protocol invariants** hold ([`check_invariants`]): every flush
//!   acknowledged, migrations conserved, the delivery trace reconciling
//!   with the network statistics and per-link FIFO order.

use crate::table::Table;
use dsm_apps::{asp, kv, nbody, sor, synthetic, tsp};
use dsm_core::{EwmaWriteRatioPolicy, HysteresisPolicy, MigrationPolicy, ProtocolConfig};
use dsm_model::ComputeModel;
use dsm_runtime::{Cluster, ClusterConfig, ExecutionReport, FabricMode, SimConfig};

/// Number of cluster nodes every matrix cell runs on.
pub const MATRIX_NODES: usize = 4;

/// The outcome of one matrix-cell run.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Bit-exact fingerprint of the application result.
    pub fingerprint: u64,
    /// The full execution report (carries the delivery trace in sim mode).
    pub report: ExecutionReport,
}

/// One workload of the conformance matrix: a name and a runner producing a
/// result fingerprint at small, deterministic parameters.
pub struct MatrixWorkload {
    /// Workload name ("SOR", "ASP", ...).
    pub name: &'static str,
    runner: fn(ClusterConfig) -> MatrixRun,
}

impl MatrixWorkload {
    /// Run the workload under the given cluster configuration.
    pub fn run(&self, config: ClusterConfig) -> MatrixRun {
        (self.runner)(config)
    }
}

impl std::fmt::Debug for MatrixWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixWorkload")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

fn fnv(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Bit-exact fingerprint of a row-major `f64` matrix.
fn fingerprint_matrix(matrix: &[Vec<f64>]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for row in matrix {
        for &v in row {
            hash = fnv(hash, v.to_bits());
        }
        hash = fnv(hash, row.len() as u64);
    }
    hash
}

fn run_sor(config: ClusterConfig) -> MatrixRun {
    let run = sor::run(config, &sor::SorParams::small(24, 2));
    MatrixRun {
        fingerprint: fingerprint_matrix(&run.result),
        report: run.report,
    }
}

fn run_asp(config: ClusterConfig) -> MatrixRun {
    let run = asp::run(config, &asp::AspParams::small(16));
    MatrixRun {
        fingerprint: fingerprint_matrix(&run.result),
        report: run.report,
    }
}

fn run_tsp(config: ClusterConfig) -> MatrixRun {
    let run = tsp::run(config, &tsp::TspParams::small(7));
    MatrixRun {
        fingerprint: fnv(0xcbf2_9ce4_8422_2325, run.result),
        report: run.report,
    }
}

fn run_nbody(config: ClusterConfig) -> MatrixRun {
    let run = nbody::run(config, &nbody::NbodyParams::small(24, 2));
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for body in &run.result {
        for v in [body.x, body.y, body.vx, body.vy, body.mass] {
            hash = fnv(hash, v.to_bits());
        }
    }
    MatrixRun {
        fingerprint: hash,
        report: run.report,
    }
}

fn run_kv(config: ClusterConfig) -> MatrixRun {
    // The serving workload's first conformance cell: its fingerprint is the
    // final store contents, schedule-independent by the single-writer
    // phase discipline (see `dsm_apps::kv`), so the cell checks exactly
    // like the HPC kernels — including under the lossy fault sweep.
    let run = kv::run(config, &kv::KvParams::small());
    MatrixRun {
        fingerprint: run.fingerprint,
        report: run.report,
    }
}

fn run_synthetic(config: ClusterConfig) -> MatrixRun {
    let params = synthetic::SyntheticParams {
        repetition: 2,
        total_updates: 2 * 3 * MATRIX_NODES as u64,
        compute_ops: 0,
    };
    let run = synthetic::run(config, &params);
    MatrixRun {
        fingerprint: fnv(0xcbf2_9ce4_8422_2325, run.result),
        report: run.report,
    }
}

/// Every workload of the matrix.
pub fn workloads() -> Vec<MatrixWorkload> {
    vec![
        MatrixWorkload {
            name: "SOR",
            runner: run_sor,
        },
        MatrixWorkload {
            name: "ASP",
            runner: run_asp,
        },
        MatrixWorkload {
            name: "TSP",
            runner: run_tsp,
        },
        MatrixWorkload {
            name: "Nbody",
            runner: run_nbody,
        },
        MatrixWorkload {
            name: "synthetic",
            runner: run_synthetic,
        },
        MatrixWorkload {
            name: "KV",
            runner: run_kv,
        },
    ]
}

/// Every built-in home-migration policy, as `(label, protocol config)`.
pub fn policies() -> Vec<(String, ProtocolConfig)> {
    let base = ProtocolConfig::no_migration;
    vec![
        ("NM".into(), base()),
        ("FT2".into(), ProtocolConfig::fixed_threshold(2)),
        ("AT".into(), ProtocolConfig::adaptive()),
        (
            "JUMP".into(),
            base().with_migration(MigrationPolicy::MigrateOnRequest),
        ),
        (
            "LAZY".into(),
            base().with_migration(MigrationPolicy::lazy_flushing()),
        ),
        (
            "HYST1+2".into(),
            base().with_migration(HysteresisPolicy::new(1, 2)),
        ),
        (
            "EWMA".into(),
            base().with_migration(EwmaWriteRatioPolicy::default()),
        ),
    ]
}

/// A matrix-cell cluster configuration: [`MATRIX_NODES`] nodes, zero
/// compute cost, the requested fabric.
pub fn matrix_cluster(protocol: ProtocolConfig, fabric: FabricMode) -> ClusterConfig {
    Cluster::builder()
        .nodes(MATRIX_NODES)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .fabric(fabric)
        .config()
}

/// Check the protocol invariants one conformance run must satisfy. Returns
/// every violation as a human-readable line (empty = all good).
pub fn check_invariants(report: &ExecutionReport) -> Vec<String> {
    let mut violations = Vec::new();
    let p = &report.protocol;
    if p.diffs_sent != p.diffs_applied {
        violations.push(format!(
            "lost flush acks: {} diffs sent, {} applied",
            p.diffs_sent, p.diffs_applied
        ));
    }
    if p.migrations_out != p.migrations_in {
        violations.push(format!(
            "migration conservation: {} granted, {} installed",
            p.migrations_out, p.migrations_in
        ));
    }
    if let Some(trace) = &report.delivery_trace {
        // Drop-aware reconciliation: every send was either delivered (one
        // trace record) or dropped by an injected fault (one drop record).
        if trace.len() as u64 + trace.drops.len() as u64 != report.total_messages() {
            violations.push(format!(
                "message-count reconciliation: trace has {} deliveries + {} drops, \
                 network statistics counted {} sends",
                trace.len(),
                trace.drops.len(),
                report.total_messages()
            ));
        }
        if let Some(index) = trace.per_link_fifo_violation() {
            violations.push(format!(
                "per-link FIFO violated at delivery #{index}: {:?}",
                trace.records[index]
            ));
        }
    }
    violations
}

/// One row of a [`conformance`] sweep.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Workload name.
    pub workload: &'static str,
    /// Policy label.
    pub policy: String,
    /// Seeds swept.
    pub seeds: usize,
    /// The threaded-reference fingerprint.
    pub fingerprint: u64,
    /// Failures, as `(seed, description)` — empty when the cell conforms.
    pub failures: Vec<(u64, String)>,
}

/// Sweep the full policy × workload matrix: for every cell, one threaded
/// reference run, then per seed one sim run (the first seed twice, to check
/// replay) — asserting fingerprint conformance, trace replay and the
/// protocol invariants. Failures are collected, not panicked, so a sweep
/// reports *every* failing seed.
pub fn conformance(seeds: &[u64]) -> Vec<CellResult> {
    conformance_with(seeds, SimConfig::perturbed, 1)
}

/// The lossy conformance sweep: the same policy × workload grid, but every
/// sim run injects faults ([`SimConfig::lossy`]: 1% seeded per-link drops
/// plus a partition/heal cycle). Cells must still produce the threaded
/// reference fingerprint — the timeout/retry/re-election machinery makes
/// message loss a performance event, never a semantic one — and the run
/// must replay bit-identically, drop records included.
pub fn conformance_lossy(seeds: &[u64]) -> Vec<CellResult> {
    conformance_with(seeds, SimConfig::lossy, 1)
}

/// The generalized sweep behind [`conformance`] / [`conformance_lossy`]:
/// any perturbation configuration, on `workers` scheduler workers
/// ([`SimConfig::with_workers`]). With `workers > 1` every cell
/// additionally runs each seed on the single-worker reference scheduler
/// and requires a **bit-identical delivery trace** (checksum and order
/// signature) and result fingerprint — the parallel frontier scheduler is
/// an execution strategy, never a schedule change, so any divergence is a
/// determinism bug in the worker-pool merge.
pub fn conformance_with(
    seeds: &[u64],
    sim_config: fn(u64) -> SimConfig,
    workers: usize,
) -> Vec<CellResult> {
    let mut rows = Vec::new();
    for workload in workloads() {
        for (label, protocol) in policies() {
            let mut failures: Vec<(u64, String)> = Vec::new();
            let reference = workload.run(matrix_cluster(protocol.clone(), FabricMode::Threaded));
            let mut reference_order: Option<Vec<(u16, u16, u64)>> = None;
            let mut order_diverged = seeds.len() < 2;
            for (i, &seed) in seeds.iter().enumerate() {
                let fabric = FabricMode::Sim(sim_config(seed).with_workers(workers));
                let run = workload.run(matrix_cluster(protocol.clone(), fabric.clone()));
                if run.fingerprint != reference.fingerprint {
                    failures.push((
                        seed,
                        format!(
                            "sim fingerprint {:#018x} != threaded reference {:#018x}",
                            run.fingerprint, reference.fingerprint
                        ),
                    ));
                }
                for violation in check_invariants(&run.report) {
                    failures.push((seed, violation));
                }
                let trace = run
                    .report
                    .delivery_trace
                    .as_ref()
                    .expect("sim run has a trace");
                if workers > 1 {
                    let sequential = workload.run(matrix_cluster(
                        protocol.clone(),
                        FabricMode::Sim(sim_config(seed)),
                    ));
                    let sequential_trace = sequential
                        .report
                        .delivery_trace
                        .as_ref()
                        .expect("sim run has a trace");
                    if sequential.fingerprint != run.fingerprint {
                        failures.push((
                            seed,
                            format!(
                                "{workers}-worker fingerprint {:#018x} != single-worker \
                                 reference {:#018x}",
                                run.fingerprint, sequential.fingerprint
                            ),
                        ));
                    }
                    if sequential_trace != trace {
                        failures.push((
                            seed,
                            format!(
                                "{workers}-worker trace diverged from the single-worker \
                                 reference (checksum {:#018x} vs {:#018x}, order signature {})",
                                trace.checksum(),
                                sequential_trace.checksum(),
                                if trace.order_signature() == sequential_trace.order_signature() {
                                    "equal"
                                } else {
                                    "diverged"
                                }
                            ),
                        ));
                    }
                }
                match &reference_order {
                    None => reference_order = Some(trace.order_signature()),
                    Some(first) => order_diverged |= trace.order_signature() != *first,
                }
                if i == 0 {
                    // Replay the first seed: bit-identical trace required.
                    let replay = workload.run(matrix_cluster(protocol.clone(), fabric));
                    if replay.report.delivery_trace.as_ref() != Some(trace) {
                        failures.push((
                            seed,
                            format!(
                                "replay diverged: trace checksum {:#018x} then {:#018x}",
                                trace.checksum(),
                                replay
                                    .report
                                    .delivery_trace
                                    .as_ref()
                                    .map_or(0, |t| t.checksum())
                            ),
                        ));
                    }
                    if replay.fingerprint != run.fingerprint {
                        failures.push((seed, "replay changed the result".to_string()));
                    }
                }
            }
            if !order_diverged {
                failures.push((
                    seeds[0],
                    format!(
                        "all {} seeds produced the same delivery order — \
                         perturbations had no effect on this cell",
                        seeds.len()
                    ),
                ));
            }
            rows.push(CellResult {
                workload: workload.name,
                policy: label,
                seeds: seeds.len(),
                fingerprint: reference.fingerprint,
                failures,
            });
        }
    }
    rows
}

/// Render a conformance sweep as a table.
pub fn render(rows: &[CellResult]) -> Table {
    let mut table = Table::new(&["workload", "policy", "seeds", "fingerprint", "status"]);
    for row in rows {
        table.row(vec![
            row.workload.to_string(),
            row.policy.clone(),
            row.seeds.to_string(),
            format!("{:#018x}", row.fingerprint),
            if row.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURES", row.failures.len())
            },
        ]);
    }
    table
}
