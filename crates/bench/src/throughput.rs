//! The wall-clock throughput harness for the KV serving workload.
//!
//! Everything else in this crate reports **modeled** (Hockney) numbers on a
//! virtual clock; this module is the repo's first **wall-clock**
//! measurement. It drives [`dsm_apps::kv`] — seeded Zipfian traffic with a
//! shifting hot set — across the full built-in policy grid
//! ([`crate::matrix::policies`]) on a real fabric (threaded or TCP) and
//! reports, per policy:
//!
//! * ops/sec (total operations over the slowest node's serving time) and
//!   p50/p95/p99 per-operation latency from the merged
//!   [`LatencyHistogram`]s;
//! * migration behaviour — migrations, migrate-backs and requester-side
//!   redirections, the latter split into *shift* windows (the first window
//!   after each hot-set shift) and *settle* windows (the remainder of each
//!   phase);
//! * total protocol messages and the deterministic store fingerprint.
//!
//! Two checks make the numbers a gate rather than a report:
//! [`check_rows`] enforces per-policy sanity invariants that hold on every
//! machine (NM never migrates or redirects; the adaptive policies migrate
//! *and* beat NM on total messages under skew; AT's redirections
//! concentrate in the shift windows), and [`compare`] holds a fresh run
//! against `bench/throughput_baseline.json` under a deliberately generous
//! wall-clock band — wall-clock numbers move with the machine, so the
//! regression band only catches order-of-magnitude collapses while the
//! fingerprint and message checks stay exact.
//!
//! The results are written as a `throughput` section of the same
//! `BENCH_PR.json` document the modeled gate writes (see
//! [`document_json`] / [`parse_document`]).

use crate::gate::{GateRow, Parser};
use crate::table::{fmt_f, Table};
use dsm_apps::kv::{self, KvParams};
use dsm_model::ComputeModel;
use dsm_runtime::{Cluster, FabricMode, ServerMode};
use dsm_util::LatencyHistogram;
use std::time::Duration;

/// Default wall-clock regression band: a run must achieve at least
/// `baseline ops/sec ÷ band`. Generous by design — the baseline is
/// committed from one machine and checked on another, so only a collapse
/// (a lost fast path, an accidental sleep) should trip it, never runner
/// noise.
pub const DEFAULT_WALL_BAND: f64 = 5.0;

/// Allowed relative growth in total protocol messages vs the baseline.
/// Wider than the modeled gate's 5% because threaded-fabric runs retry
/// busy-deferred requests nondeterministically.
pub const DEFAULT_MESSAGE_TOLERANCE: f64 = 0.25;

/// One policy's throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Policy label (stable across runs; the baseline is keyed on it).
    pub policy: String,
    /// Cluster size.
    pub nodes: usize,
    /// Total operations executed (all nodes).
    pub ops: u64,
    /// Wall-clock serving time of the slowest node, in milliseconds.
    pub wall_ms: f64,
    /// Total operations over the slowest node's serving time.
    pub ops_per_sec: f64,
    /// Median per-operation latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-operation latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile per-operation latency, microseconds.
    pub p99_us: f64,
    /// Home migrations during the run.
    pub migrations: u64,
    /// Migrations that returned a home to the node it had just left.
    pub migrate_backs: u64,
    /// Requester-side redirection hops during the measured windows.
    pub redirects: u64,
    /// Redirections suffered in the first window after each hot-set shift.
    pub shift_redirects: u64,
    /// Redirections suffered in the settled remainder of each phase.
    pub settle_redirects: u64,
    /// Total protocol messages.
    pub messages: u64,
    /// Deterministic fingerprint of the final store contents — identical
    /// across policies, fabrics and machines for one (seed, params, nodes).
    pub fingerprint: u64,
}

impl ThroughputRow {
    /// Redirections per thousand operations.
    pub fn redirects_per_1k(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.redirects as f64 * 1000.0 / self.ops as f64
    }
}

/// Run the KV workload under one policy and aggregate the measurement.
fn measure(
    label: &str,
    protocol: dsm_core::ProtocolConfig,
    params: &KvParams,
    nodes: usize,
    fabric: &FabricMode,
    seed: u64,
) -> ThroughputRow {
    let config = Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::free())
        .seed(seed)
        .fast_poll()
        .fabric(fabric.clone())
        .config();
    let run = kv::run(config, params);

    let mut latency = LatencyHistogram::new();
    let mut wall = Duration::ZERO;
    let mut ops = 0u64;
    let mut shift = 0u64;
    let mut settle = 0u64;
    for node in &run.nodes {
        latency.merge(&node.latency);
        wall = wall.max(node.serving);
        ops += node.ops;
        // Requester-side redirections only advance during the node's own
        // operations (see `NodeCtx::protocol_stats`), so the deltas between
        // consecutive window snapshots attribute them exactly.
        for (w, pair) in node.windows.windows(2).enumerate() {
            let delta = pair[1].redirections_suffered - pair[0].redirections_suffered;
            if w % params.windows_per_phase == 0 {
                shift += delta;
            } else {
                settle += delta;
            }
        }
    }
    let wall_s = wall.as_secs_f64();
    ThroughputRow {
        policy: label.to_string(),
        nodes,
        ops,
        wall_ms: wall_s * 1000.0,
        ops_per_sec: if wall_s > 0.0 {
            ops as f64 / wall_s
        } else {
            0.0
        },
        p50_us: latency.percentile(0.50) as f64 / 1000.0,
        p95_us: latency.percentile(0.95) as f64 / 1000.0,
        p99_us: latency.percentile(0.99) as f64 / 1000.0,
        migrations: run.report.migrations(),
        migrate_backs: run.report.migrate_backs(),
        redirects: shift + settle,
        shift_redirects: shift,
        settle_redirects: settle,
        messages: run.report.total_messages(),
        fingerprint: run.fingerprint,
    }
}

/// Measure every built-in policy ([`crate::matrix::policies`], so a policy
/// added to the conformance grid automatically joins the throughput sweep)
/// under identical traffic.
pub fn collect(
    params: &KvParams,
    nodes: usize,
    fabric: &FabricMode,
    seed: u64,
) -> Vec<ThroughputRow> {
    crate::matrix::policies()
        .into_iter()
        .map(|(label, protocol)| measure(&label, protocol, params, nodes, fabric, seed))
        .collect()
}

/// Render throughput rows as a table.
pub fn render(rows: &[ThroughputRow]) -> Table {
    let mut table = Table::new(&[
        "policy", "ops/s", "wall_ms", "p50_us", "p95_us", "p99_us", "migr", "backs", "redir/1k",
        "msgs",
    ]);
    for row in rows {
        table.row(vec![
            row.policy.clone(),
            fmt_f(row.ops_per_sec),
            fmt_f(row.wall_ms),
            fmt_f(row.p50_us),
            fmt_f(row.p95_us),
            fmt_f(row.p99_us),
            row.migrations.to_string(),
            row.migrate_backs.to_string(),
            fmt_f(row.redirects_per_1k()),
            row.messages.to_string(),
        ]);
    }
    table
}

/// One server-scheduling mode's measurement of the same KV serving run —
/// the bench gate's executor-vs-polling comparison. The adaptive-policy
/// sweep above measures *migration* policies under the default scheduler;
/// these rows pin the scheduler itself: the wake-on-send executor pool
/// against one polling `recv_timeout` thread per node, same workload, same
/// seed, no migration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRow {
    /// `"executor"` or `"polling"` (the [`dsm_runtime::SchedulerReport`]
    /// mode label; the baseline-free gate is keyed on it).
    pub mode: String,
    /// Server threads used: pool size (executor) or one per node (polling).
    pub workers: usize,
    /// Total operations executed (all nodes).
    pub ops: u64,
    /// Wall-clock serving time of the slowest node, in milliseconds.
    pub wall_ms: f64,
    /// Total operations over the slowest node's serving time.
    pub ops_per_sec: f64,
    /// Idle server wakeups: empty handler steps (executor) or poll-tick
    /// timeouts (polling) — the executor's headline idle-CPU win.
    pub idle_wakeups: u64,
    /// Wake-on-send notifications that marked a node runnable (executor
    /// mode; 0 when polling).
    pub wakeups: u64,
    /// Handler steps executed (executor mode; 0 when polling).
    pub steps: u64,
    /// Deepest any node's inbound queue ever got during the run.
    pub queue_depth_high_watermark: usize,
    /// Total protocol messages.
    pub messages: u64,
    /// Deterministic fingerprint of the final store contents — must be
    /// identical across scheduling modes (scheduling is performance, never
    /// semantics).
    pub fingerprint: u64,
}

/// Measure the KV workload once per server-scheduling mode (executor pool
/// vs per-node polling threads) under the no-migration policy, so the two
/// rows differ in scheduling alone.
pub fn collect_scheduler(
    params: &KvParams,
    nodes: usize,
    fabric: &FabricMode,
    seed: u64,
) -> Vec<SchedulerRow> {
    [ServerMode::Executor, ServerMode::Polling]
        .into_iter()
        .map(|mode| {
            let config = Cluster::builder()
                .nodes(nodes)
                .protocol(dsm_core::ProtocolConfig::no_migration())
                .compute(ComputeModel::free())
                .seed(seed)
                .fast_poll()
                .server_mode(mode)
                .fabric(fabric.clone())
                .config();
            let run = kv::run(config, params);
            let mut wall = Duration::ZERO;
            let mut ops = 0u64;
            for node in &run.nodes {
                wall = wall.max(node.serving);
                ops += node.ops;
            }
            let messages = run.report.total_messages();
            let sched = run
                .report
                .scheduler
                .expect("threaded/tcp runs surface a scheduler report");
            let wall_s = wall.as_secs_f64();
            SchedulerRow {
                mode: sched.mode.to_string(),
                workers: sched.workers,
                ops,
                wall_ms: wall_s * 1000.0,
                ops_per_sec: if wall_s > 0.0 {
                    ops as f64 / wall_s
                } else {
                    0.0
                },
                idle_wakeups: sched.idle_wakeups,
                wakeups: sched.wakeups,
                steps: sched.steps,
                queue_depth_high_watermark: sched.queue_depth_high_watermark,
                messages,
                fingerprint: run.fingerprint,
            }
        })
        .collect()
}

/// Measure the wall-clock cost of the **sim scheduler itself**: one
/// diff-heavy SOR run on eight nodes, once on the single-worker reference
/// scheduler and once on `workers` workers
/// ([`dsm_runtime::SimConfig::with_workers`]), same seed. Worker count
/// never touches the virtual clock or the delivery schedule — what changes
/// is how long the simulation takes to *run* — so the two rows must agree
/// on everything deterministic (fingerprint, delivered events, protocol
/// messages; [`check_sim_workers`]) while their wall-clock columns report
/// the parallel scheduler's speedup. SOR on eight nodes is the widest
/// frontier source in the suite: every phase has all nodes exchanging
/// boundary rows, so many same-window deliveries target distinct nodes and
/// the handlers (diff applications) carry real memcpy work. Rows carry
/// modes `"sim-workers-1"` and `"sim-workers-N"`; `ops` counts delivered
/// sim events, so `ops_per_sec` is simulated events per wall-clock second.
pub fn collect_sim_workers(seed: u64, workers: usize) -> Vec<SchedulerRow> {
    assert!(workers > 1, "the comparison needs a parallel worker count");
    [1, workers]
        .into_iter()
        .map(|count| {
            let sim = dsm_runtime::SimConfig::calm(seed).with_workers(count);
            let config = Cluster::builder()
                .nodes(8)
                .protocol(dsm_core::ProtocolConfig::adaptive())
                .compute(ComputeModel::free())
                .fabric(FabricMode::Sim(sim))
                .config();
            let start = std::time::Instant::now();
            let run = dsm_apps::sor::run(config, &dsm_apps::sor::SorParams::small(512, 4));
            let wall_s = start.elapsed().as_secs_f64();
            let mut fingerprint = 0xcbf2_9ce4_8422_2325u64;
            for row in &run.result {
                for &v in row {
                    fingerprint = (fingerprint ^ v.to_bits()).wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            let events = run
                .report
                .delivery_trace
                .as_ref()
                .map_or(0, |t| t.len() as u64);
            let dispatched = run.report.scheduler.as_ref().map_or(0, |s| s.wakeups);
            SchedulerRow {
                mode: format!("sim-workers-{count}"),
                workers: count,
                ops: events,
                wall_ms: wall_s * 1000.0,
                ops_per_sec: if wall_s > 0.0 {
                    events as f64 / wall_s
                } else {
                    0.0
                },
                idle_wakeups: 0,
                wakeups: dispatched,
                steps: events,
                queue_depth_high_watermark: 0,
                messages: run.report.total_messages(),
                fingerprint,
            }
        })
        .collect()
}

/// The machine-independent invariants of a [`collect_sim_workers`] pair;
/// returns the violations (empty = pass). The wall-clock speedup itself is
/// report-only — machine-dependent — but everything the deterministic
/// scheduler guarantees is checked exactly: same combined fingerprint,
/// same delivered-event count and same protocol message count on every
/// worker count.
pub fn check_sim_workers(rows: &[SchedulerRow]) -> Vec<String> {
    let mut errors = Vec::new();
    let find = |workers: usize| {
        rows.iter()
            .find(|r| r.mode.starts_with("sim-workers-") && r.workers == workers)
    };
    let Some(sequential) = find(1) else {
        return vec!["sim-workers sweep is missing its single-worker reference row".into()];
    };
    let Some(parallel) = rows
        .iter()
        .find(|r| r.mode.starts_with("sim-workers-") && r.workers > 1)
    else {
        return vec!["sim-workers sweep is missing its parallel row".into()];
    };
    for row in [sequential, parallel] {
        if row.ops == 0 || row.wall_ms <= 0.0 {
            errors.push(format!("{}: empty measurement", row.mode));
        }
    }
    if parallel.fingerprint != sequential.fingerprint {
        errors.push(format!(
            "sim worker counts split the result fingerprint ({:#018x} on {} workers vs \
             {:#018x} sequential) — the parallel scheduler changed semantics",
            parallel.fingerprint, parallel.workers, sequential.fingerprint
        ));
    }
    if parallel.ops != sequential.ops {
        errors.push(format!(
            "sim worker counts delivered different event counts ({} vs {}) — the \
             schedule is no longer a pure function of the seed",
            parallel.ops, sequential.ops
        ));
    }
    if parallel.messages != sequential.messages {
        errors.push(format!(
            "sim worker counts sent different message counts ({} vs {})",
            parallel.messages, sequential.messages
        ));
    }
    if parallel.wakeups == 0 {
        errors.push(
            "the parallel sim row dispatched nothing to its worker pool — every frontier \
             was a singleton, so the run never exercised parallelism"
                .into(),
        );
    }
    errors
}

/// Render the scheduling-mode rows as a table.
pub fn render_scheduler(rows: &[SchedulerRow]) -> Table {
    let mut table = Table::new(&[
        "scheduler",
        "workers",
        "ops/s",
        "wall_ms",
        "idle_wakes",
        "wakes",
        "steps",
        "q_hwm",
        "msgs",
    ]);
    for row in rows {
        table.row(vec![
            row.mode.clone(),
            row.workers.to_string(),
            fmt_f(row.ops_per_sec),
            fmt_f(row.wall_ms),
            row.idle_wakeups.to_string(),
            row.wakeups.to_string(),
            row.steps.to_string(),
            row.queue_depth_high_watermark.to_string(),
            row.messages.to_string(),
        ]);
    }
    table
}

/// Poll-tick counts below this are jitter, not signal: on a short gate
/// run the polling baseline only times out a handful of times, and the
/// executor's wake/drain races land in the same single digits, so a
/// strict less-than between the two flakes on machine load. The
/// executor-vs-polling comparison binds only once polling idled at least
/// this often; the spin check holds unconditionally.
pub const IDLE_SIGNAL_FLOOR: u64 = 50;

/// The machine-independent scheduling invariants; returns the violations
/// (empty = pass). No committed baseline backs these rows — wall-clock
/// scheduling numbers are the most machine-dependent in the whole gate —
/// so everything checkable is checked structurally: same fingerprint, the
/// executor quieter on idle wakeups than the per-node polling threads it
/// replaced (once polling's count clears [`IDLE_SIGNAL_FLOOR`]), and the
/// executor's own idle steps a trace fraction of its real work.
pub fn check_scheduler(rows: &[SchedulerRow]) -> Vec<String> {
    let mut errors = Vec::new();
    let find = |mode: &str| rows.iter().find(|r| r.mode == mode);
    let (Some(executor), Some(polling)) = (find("executor"), find("polling")) else {
        return vec!["scheduler sweep must measure both executor and polling modes".into()];
    };
    for row in [executor, polling] {
        if row.ops == 0 || row.wall_ms <= 0.0 {
            errors.push(format!("{}: empty measurement", row.mode));
        }
    }
    if executor.fingerprint != polling.fingerprint {
        errors.push(format!(
            "scheduler modes split the store fingerprint ({:#018x} executor vs {:#018x} \
             polling) — scheduling changed the application result",
            executor.fingerprint, polling.fingerprint
        ));
    }
    if polling.idle_wakeups >= IDLE_SIGNAL_FLOOR && executor.idle_wakeups >= polling.idle_wakeups {
        errors.push(format!(
            "executor performed {} idle wakeups vs polling's {} — the wake-on-send pool \
             must be strictly quieter than per-node poll timers",
            executor.idle_wakeups, polling.idle_wakeups
        ));
    }
    // Wake/drain races cost a handful of empty steps per run regardless of
    // duration; a pool that idles through a meaningful fraction of its
    // steps is spinning instead of parking.
    if executor.idle_wakeups * 50 > executor.steps {
        errors.push(format!(
            "executor idled on {} of {} handler steps — the wake-on-send pool is \
             spinning instead of parking",
            executor.idle_wakeups, executor.steps
        ));
    }
    if executor.wakeups == 0 || executor.steps == 0 {
        errors.push("executor measured no wakeups/steps — the wake path is dead".into());
    }
    errors
}

fn find<'a>(rows: &'a [ThroughputRow], policy: &str) -> Option<&'a ThroughputRow> {
    rows.iter().find(|r| r.policy == policy)
}

/// The machine-independent per-policy sanity invariants; returns the list
/// of violations (empty = pass).
///
/// The issue's headline claim — "adaptive policies redirect less than NM
/// under skew" — is enforced in its only coherent form: NM never migrates,
/// so it never redirects *at all*; what adaptivity buys is strictly fewer
/// **total messages** than NM (migrated homes turn remote write round-trips
/// into local writes), at the price of a nonzero but shift-concentrated
/// redirection count. JUMP and LAZY are measured but exempt from the
/// message claim: JUMP's migrate-on-every-request churn can legitimately
/// cost more than staying put, which is exactly why it is in the grid.
pub fn check_rows(rows: &[ThroughputRow], params: &KvParams) -> Vec<String> {
    let mut errors = Vec::new();
    let Some(nm) = find(rows, "NM") else {
        return vec!["NM row missing — the sweep must include the no-migration baseline".into()];
    };
    // Semantics first: one deterministic store for every policy.
    for row in rows {
        if row.fingerprint != nm.fingerprint {
            errors.push(format!(
                "{}: fingerprint {:#018x} != NM's {:#018x} — a migration policy changed \
                 the application result",
                row.policy, row.fingerprint, nm.fingerprint
            ));
        }
        if row.ops == 0 || row.wall_ms <= 0.0 {
            errors.push(format!("{}: empty measurement", row.policy));
        }
        if !(row.p50_us <= row.p95_us && row.p95_us <= row.p99_us) {
            errors.push(format!(
                "{}: latency percentiles not monotone (p50 {} p95 {} p99 {})",
                row.policy, row.p50_us, row.p95_us, row.p99_us
            ));
        }
    }
    // NM is inert: no migrations means no stale home hints, so no redirects.
    if nm.migrations != 0 || nm.migrate_backs != 0 || nm.redirects != 0 {
        errors.push(format!(
            "NM: the no-migration baseline moved ({} migrations, {} backs, {} redirects)",
            nm.migrations, nm.migrate_backs, nm.redirects
        ));
    }
    // The adaptive family must chase the rotating writers and win on
    // coherence traffic.
    for policy in ["FT2", "AT", "HYST1+2", "EWMA"] {
        let Some(row) = find(rows, policy) else {
            errors.push(format!("{policy} row missing"));
            continue;
        };
        if row.migrations == 0 {
            errors.push(format!(
                "{policy}: never migrated under a rotating single-writer pattern"
            ));
        }
        if row.messages >= nm.messages {
            errors.push(format!(
                "{policy}: {} messages, not fewer than NM's {} — migration stopped \
                 paying for itself under skew",
                row.messages, nm.messages
            ));
        }
    }
    if let Some(jump) = find(rows, "JUMP") {
        if jump.migrations == 0 {
            errors.push("JUMP: migrate-on-request never migrated".into());
        }
    }
    // AT redirects, but the cost concentrates right after hot-set shifts:
    // once homes settle at the new writers, stale hints are used up.
    if let Some(at) = find(rows, "AT") {
        if at.redirects == 0 {
            errors.push(
                "AT: migrated homes without a single redirection — home hints are \
                 never stale, which cannot happen when homes move"
                    .into(),
            );
        }
        if params.windows_per_phase > 1 && at.shift_redirects < at.settle_redirects {
            errors.push(format!(
                "AT: redirections did not drop after hot-set shifts \
                 (shift windows {} < settle windows {})",
                at.shift_redirects, at.settle_redirects
            ));
        }
    } else {
        errors.push("AT row missing".into());
    }
    errors
}

/// Compare a fresh run against the committed baseline; returns the list of
/// regressions (empty = pass). `wall_band` is the allowed ops/sec slowdown
/// factor ([`DEFAULT_WALL_BAND`]); `message_tolerance` the allowed relative
/// message growth ([`DEFAULT_MESSAGE_TOLERANCE`]). Fingerprints are exact:
/// they are machine-independent, so any drift is a semantic change, not
/// noise.
pub fn compare(
    current: &[ThroughputRow],
    baseline: &[ThroughputRow],
    wall_band: f64,
    message_tolerance: f64,
) -> Vec<String> {
    let mut errors = Vec::new();
    for base in baseline {
        let Some(now) = find(current, &base.policy) else {
            errors.push(format!("{}: policy missing from current run", base.policy));
            continue;
        };
        // A different op count is a different workload: its fingerprint,
        // message count and ops/sec are all incomparable, and reporting
        // them as regressions would misdiagnose an `--ops`/`--nodes`
        // override as a semantic change.
        if now.ops != base.ops {
            errors.push(format!(
                "{}: run measured {} ops vs the baseline's {} — op-count overrides are \
                 not comparable against the committed baseline; rerun without them or \
                 refresh it with --write-baseline",
                base.policy, now.ops, base.ops
            ));
            continue;
        }
        if now.fingerprint != base.fingerprint {
            errors.push(format!(
                "{}: fingerprint {:#018x} != baseline {:#018x} — the workload's \
                 deterministic result changed",
                base.policy, now.fingerprint, base.fingerprint
            ));
        }
        let floor = base.ops_per_sec / wall_band;
        if now.ops_per_sec < floor {
            errors.push(format!(
                "{}: throughput collapsed {:.0} -> {:.0} ops/s (> {:.1}x below baseline)",
                base.policy, base.ops_per_sec, now.ops_per_sec, wall_band
            ));
        }
        let limit = base.messages as f64 * (1.0 + message_tolerance);
        if now.messages as f64 > limit {
            errors.push(format!(
                "{}: protocol messages regressed {} -> {} (> {:.0}% over baseline)",
                base.policy,
                base.messages,
                now.messages,
                message_tolerance * 100.0
            ));
        }
    }
    for now in current {
        if find(baseline, &now.policy).is_none() {
            errors.push(format!(
                "{}: no baseline entry — refresh bench/throughput_baseline.json with \
                 --write-baseline",
                now.policy
            ));
        }
    }
    errors
}

// ----------------------------------------------------------------------
// JSON (de)serialization — hand-rolled, the workspace carries no serde.
// ----------------------------------------------------------------------

/// Serialize the combined `BENCH_PR.json` document: the modeled gate's
/// `workloads` section next to the wall-clock `throughput` section (either
/// may be empty — the baseline files each carry only their own section),
/// plus an optional `scheduler` section with the executor-vs-polling
/// comparison rows. The scheduler rows are report-only: no baseline file
/// carries them (their wall-clock columns are the most machine-dependent
/// numbers in the gate), so both parsers tolerate and skip the section.
pub fn document_json(
    workloads: &[GateRow],
    rows: &[ThroughputRow],
    scheduler: &[SchedulerRow],
) -> String {
    let gate_doc = crate::gate::to_json(workloads);
    let body = gate_doc
        .trim_end()
        .strip_suffix('}')
        .expect("gate document ends with its closing brace")
        .trim_end();
    let mut out = format!("{body},\n  \"throughput\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"nodes\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p95_us\": {:.3}, \
             \"p99_us\": {:.3}, \"migrations\": {}, \"migrate_backs\": {}, \
             \"redirects\": {}, \"shift_redirects\": {}, \"settle_redirects\": {}, \
             \"messages\": {}, \"fingerprint\": \"{:#018x}\"}}{}\n",
            row.policy,
            row.nodes,
            row.ops,
            row.wall_ms,
            row.ops_per_sec,
            row.p50_us,
            row.p95_us,
            row.p99_us,
            row.migrations,
            row.migrate_backs,
            row.redirects,
            row.shift_redirects,
            row.settle_redirects,
            row.messages,
            row.fingerprint,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if !scheduler.is_empty() {
        out.push_str(",\n  \"scheduler\": [\n");
        for (i, row) in scheduler.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"workers\": {}, \"ops\": {}, \"wall_ms\": {:.3}, \
                 \"ops_per_sec\": {:.1}, \"idle_wakeups\": {}, \"wakeups\": {}, \
                 \"steps\": {}, \"queue_depth_high_watermark\": {}, \"messages\": {}, \
                 \"fingerprint\": \"{:#018x}\"}}{}\n",
                row.mode,
                row.workers,
                row.ops,
                row.wall_ms,
                row.ops_per_sec,
                row.idle_wakeups,
                row.wakeups,
                row.steps,
                row.queue_depth_high_watermark,
                row.messages,
                row.fingerprint,
                if i + 1 < scheduler.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Parse a combined document into its two sections. Either section may be
/// absent (an old `BENCH_PR.json` has no `throughput` key; the throughput
/// baseline has an empty `workloads` array).
pub fn parse_document(text: &str) -> Result<(Vec<GateRow>, Vec<ThroughputRow>), String> {
    let workloads = crate::gate::parse_json(text)?;
    Ok((workloads, parse_throughput(text)?))
}

/// Every section an existing shared document carried, as recovered for a
/// re-write, plus the damage found on the way (empty = clean). Produced by
/// [`salvage_document`] / [`read_for_merge`].
#[derive(Debug, Default, PartialEq)]
pub struct MergeSections {
    /// The modeled gate's `workloads` section.
    pub workloads: Vec<GateRow>,
    /// The wall-clock `throughput` section.
    pub throughput: Vec<ThroughputRow>,
    /// The report-only `scheduler` section.
    pub scheduler: Vec<SchedulerRow>,
    /// Human-readable damage reports — a non-empty list means the document
    /// was truncated or corrupt and only the rows above were recovered.
    pub warnings: Vec<String>,
}

/// Salvage every section of a shared document. Unlike [`parse_document`],
/// a truncated or corrupt file is not a dead end: each section keeps every
/// row that parsed before the damage, and the parse errors come back as
/// warnings. The bench binaries use this when *merging* into an existing
/// `BENCH_PR.json` — the strict parsers stay in force for baselines, where
/// silently accepting half a document would weaken the gate.
pub fn salvage_document(text: &str) -> MergeSections {
    let mut sections = MergeSections::default();
    let (workloads, gate_error) = crate::gate::salvage_json(text);
    sections.workloads = workloads;
    let throughput_error = parse_throughput_into(text, &mut sections.throughput).err();
    let scheduler_error = parse_scheduler_into(text, &mut sections.scheduler).err();
    for error in [gate_error, throughput_error, scheduler_error]
        .into_iter()
        .flatten()
    {
        // The three passes walk the same bytes, so one truncation usually
        // produces three copies of the same error.
        if !sections.warnings.contains(&error) {
            sections.warnings.push(error);
        }
    }
    sections
}

/// Read the shared output document a binary is about to merge its own
/// section into. A missing file is a clean empty document (the other
/// binary simply has not run); anything else is salvaged via
/// [`salvage_document`], with the path prefixed onto each warning — the
/// caller re-writes the whole document, so recovered rows survive the
/// damage and the warnings are its only trace.
pub fn read_for_merge(path: &str) -> MergeSections {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return MergeSections::default(),
        Err(e) => {
            return MergeSections {
                warnings: vec![format!("{path}: cannot read the existing document: {e}")],
                ..MergeSections::default()
            }
        }
    };
    let mut sections = salvage_document(&text);
    for warning in &mut sections.warnings {
        *warning = format!("{path}: {warning}");
    }
    sections
}

fn parse_throughput(text: &str) -> Result<Vec<ThroughputRow>, String> {
    let mut rows = Vec::new();
    parse_throughput_into(text, &mut rows)?;
    Ok(rows)
}

fn parse_throughput_into(text: &str, rows: &mut Vec<ThroughputRow>) -> Result<(), String> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            // `gate::parse_json` already validated the schema and the
            // workloads section; this pass only extracts its own. The
            // report-only scheduler section has no baseline to compare
            // against, so it is skipped here too.
            "schema" | "workloads" | "scheduler" => p.skip_value()?,
            "throughput" => {
                p.expect(b'[')?;
                p.skip_ws();
                if !p.eat(b']') {
                    loop {
                        rows.push(throughput_row(&mut p)?);
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        p.expect(b',')?;
                    }
                }
            }
            other => return Err(format!("unknown top-level key {other:?}")),
        }
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    Ok(())
}

fn parse_scheduler_into(text: &str, rows: &mut Vec<SchedulerRow>) -> Result<(), String> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "schema" | "workloads" | "throughput" => p.skip_value()?,
            "scheduler" => {
                p.expect(b'[')?;
                p.skip_ws();
                if !p.eat(b']') {
                    loop {
                        rows.push(scheduler_row(&mut p)?);
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        p.expect(b',')?;
                    }
                }
            }
            other => return Err(format!("unknown top-level key {other:?}")),
        }
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    Ok(())
}

fn scheduler_row(p: &mut Parser<'_>) -> Result<SchedulerRow, String> {
    p.skip_ws();
    p.expect(b'{')?;
    let mut row = SchedulerRow {
        mode: String::new(),
        workers: 0,
        ops: 0,
        wall_ms: 0.0,
        ops_per_sec: 0.0,
        idle_wakeups: 0,
        wakeups: 0,
        steps: 0,
        queue_depth_high_watermark: 0,
        messages: 0,
        fingerprint: 0,
    };
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "mode" => row.mode = p.string()?,
            "workers" => row.workers = p.number()? as usize,
            "ops" => row.ops = p.number()? as u64,
            "wall_ms" => row.wall_ms = p.number()?,
            "ops_per_sec" => row.ops_per_sec = p.number()?,
            "idle_wakeups" => row.idle_wakeups = p.number()? as u64,
            "wakeups" => row.wakeups = p.number()? as u64,
            "steps" => row.steps = p.number()? as u64,
            "queue_depth_high_watermark" => {
                row.queue_depth_high_watermark = p.number()? as usize;
            }
            "messages" => row.messages = p.number()? as u64,
            "fingerprint" => {
                let s = p.string()?;
                row.fingerprint =
                    dsm_util::parse_seed(&s).map_err(|e| format!("bad fingerprint {s:?}: {e}"))?;
            }
            other => return Err(format!("unknown scheduler key {other:?}")),
        }
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    if row.mode.is_empty() {
        return Err("scheduler entry without a mode".to_string());
    }
    Ok(row)
}

fn throughput_row(p: &mut Parser<'_>) -> Result<ThroughputRow, String> {
    p.skip_ws();
    p.expect(b'{')?;
    let mut row = ThroughputRow {
        policy: String::new(),
        nodes: 0,
        ops: 0,
        wall_ms: 0.0,
        ops_per_sec: 0.0,
        p50_us: 0.0,
        p95_us: 0.0,
        p99_us: 0.0,
        migrations: 0,
        migrate_backs: 0,
        redirects: 0,
        shift_redirects: 0,
        settle_redirects: 0,
        messages: 0,
        fingerprint: 0,
    };
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "policy" => row.policy = p.string()?,
            "nodes" => row.nodes = p.number()? as usize,
            "ops" => row.ops = p.number()? as u64,
            "wall_ms" => row.wall_ms = p.number()?,
            "ops_per_sec" => row.ops_per_sec = p.number()?,
            "p50_us" => row.p50_us = p.number()?,
            "p95_us" => row.p95_us = p.number()?,
            "p99_us" => row.p99_us = p.number()?,
            "migrations" => row.migrations = p.number()? as u64,
            "migrate_backs" => row.migrate_backs = p.number()? as u64,
            "redirects" => row.redirects = p.number()? as u64,
            "shift_redirects" => row.shift_redirects = p.number()? as u64,
            "settle_redirects" => row.settle_redirects = p.number()? as u64,
            "messages" => row.messages = p.number()? as u64,
            // A u64 fingerprint does not round-trip through JSON's f64
            // numbers, so it travels as a hex string.
            "fingerprint" => {
                let s = p.string()?;
                row.fingerprint =
                    dsm_util::parse_seed(&s).map_err(|e| format!("bad fingerprint {s:?}: {e}"))?;
            }
            other => return Err(format!("unknown throughput key {other:?}")),
        }
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    if row.policy.is_empty() {
        return Err("throughput entry without a policy".to_string());
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(policy: &str, migrations: u64, redirects: u64, messages: u64) -> ThroughputRow {
        ThroughputRow {
            policy: policy.to_string(),
            nodes: 4,
            ops: 96_000,
            wall_ms: 120.5,
            ops_per_sec: 796_680.5,
            p50_us: 1.5,
            p95_us: 12.0,
            p99_us: 40.0,
            migrations,
            migrate_backs: migrations / 4,
            redirects,
            shift_redirects: redirects * 3 / 4,
            settle_redirects: redirects - redirects * 3 / 4,
            messages,
            fingerprint: 0xdead_beef_cafe_f00d,
        }
    }

    fn healthy() -> Vec<ThroughputRow> {
        vec![
            row("NM", 0, 0, 1000),
            row("FT2", 40, 60, 700),
            row("AT", 30, 50, 650),
            row("JUMP", 90, 300, 1400),
            row("LAZY", 5, 10, 900),
            row("HYST1+2", 35, 55, 700),
            row("EWMA", 20, 30, 800),
        ]
    }

    fn scheduler_rows() -> Vec<SchedulerRow> {
        let executor = SchedulerRow {
            mode: "executor".to_string(),
            workers: 4,
            ops: 96_000,
            wall_ms: 110.0,
            ops_per_sec: 870_000.0,
            idle_wakeups: 12,
            wakeups: 40_000,
            steps: 41_000,
            queue_depth_high_watermark: 9,
            messages: 1000,
            fingerprint: 0xdead_beef_cafe_f00d,
        };
        let polling = SchedulerRow {
            mode: "polling".to_string(),
            workers: 4,
            ops: 96_000,
            wall_ms: 120.0,
            ops_per_sec: 800_000.0,
            idle_wakeups: 4800,
            wakeups: 0,
            steps: 0,
            queue_depth_high_watermark: 11,
            messages: 1000,
            fingerprint: 0xdead_beef_cafe_f00d,
        };
        vec![executor, polling]
    }

    #[test]
    fn scheduler_invariants_pass_healthy_and_catch_each_violation() {
        assert_eq!(check_scheduler(&scheduler_rows()), Vec::<String>::new());

        // A missing mode fails structurally.
        assert!(!check_scheduler(&scheduler_rows()[..1]).is_empty());

        // The executor must be strictly quieter than polling once
        // polling's idle count is signal rather than jitter.
        let mut rows = scheduler_rows();
        rows[0].idle_wakeups = rows[1].idle_wakeups;
        assert!(check_scheduler(&rows)
            .iter()
            .any(|e| e.contains("strictly quieter")));

        // On a short run both counters are single-digit scheduler noise:
        // the comparison must not flake on which landed higher.
        let mut rows = scheduler_rows();
        rows[0].idle_wakeups = 8;
        rows[1].idle_wakeups = 6;
        assert_eq!(check_scheduler(&rows), Vec::<String>::new());

        // A spinning pool is caught even when polling idled too little
        // for the comparison to bind.
        let mut rows = scheduler_rows();
        rows[0].idle_wakeups = rows[0].steps / 10;
        rows[1].idle_wakeups = 6;
        assert!(check_scheduler(&rows)
            .iter()
            .any(|e| e.contains("spinning instead of parking")));

        // Scheduling must never change the application result.
        let mut rows = scheduler_rows();
        rows[1].fingerprint ^= 1;
        assert!(check_scheduler(&rows)
            .iter()
            .any(|e| e.contains("changed the application result")));

        // A dead wake path is caught even when everything else looks fine.
        let mut rows = scheduler_rows();
        rows[0].wakeups = 0;
        assert!(check_scheduler(&rows)
            .iter()
            .any(|e| e.contains("wake path is dead")));
    }

    fn gate_row() -> GateRow {
        GateRow {
            workload: "fig2_sor_nohm".to_string(),
            batched: true,
            messages: 1200,
            diff_messages: 400,
            bytes: 120_000,
            time_ms: 35.25,
            migrations: 17,
            migrate_backs: 3,
            checksum: 42.5,
        }
    }

    #[test]
    fn salvage_round_trips_a_clean_document() {
        let workloads = vec![gate_row()];
        let text = document_json(&workloads, &healthy(), &scheduler_rows());
        let sections = salvage_document(&text);
        assert_eq!(sections.warnings, Vec::<String>::new());
        assert_eq!(sections.workloads, workloads);
        assert_eq!(sections.throughput, healthy());
        assert_eq!(sections.scheduler, scheduler_rows());
    }

    #[test]
    fn salvage_keeps_surviving_sections_of_a_truncated_document() {
        let workloads = vec![gate_row()];
        let text = document_json(&workloads, &healthy(), &scheduler_rows());
        // Chop the document inside the throughput section's last row (a
        // killed CI step mid-write): the strict parser rejects the whole
        // file, which used to make the next merging binary silently drop
        // every section — salvage instead keeps the complete workloads
        // section and every throughput row that finished, and reports the
        // damage.
        let cut = text.find("\"EWMA\"").expect("last policy row present");
        let truncated = &text[..cut];
        assert!(parse_document(truncated).is_err());
        let sections = salvage_document(truncated);
        assert!(!sections.warnings.is_empty());
        assert_eq!(sections.workloads, workloads);
        assert_eq!(sections.throughput.len(), healthy().len() - 1);
        assert_eq!(sections.throughput[..], healthy()[..healthy().len() - 1]);
        assert!(sections.scheduler.is_empty(), "scheduler section was cut");
    }

    #[test]
    fn merge_read_treats_a_missing_file_as_clean_and_empty() {
        let sections = read_for_merge("definitely/not/a/real/BENCH_PR.json");
        assert_eq!(sections, MergeSections::default());
        assert!(sections.warnings.is_empty());
    }

    #[test]
    fn sim_worker_invariants_catch_semantic_drift() {
        let sequential = SchedulerRow {
            mode: "sim-workers-1".to_string(),
            workers: 1,
            ops: 5000,
            wall_ms: 400.0,
            ops_per_sec: 12_500.0,
            idle_wakeups: 0,
            wakeups: 0,
            steps: 5000,
            queue_depth_high_watermark: 0,
            messages: 5100,
            fingerprint: 0x1234,
        };
        let mut parallel = sequential.clone();
        parallel.mode = "sim-workers-4".to_string();
        parallel.workers = 4;
        parallel.wall_ms = 150.0;
        parallel.wakeups = 900;
        let rows = vec![sequential.clone(), parallel.clone()];
        assert_eq!(check_sim_workers(&rows), Vec::<String>::new());

        // A missing row fails structurally.
        assert!(!check_sim_workers(&rows[..1]).is_empty());
        assert!(!check_sim_workers(&rows[1..]).is_empty());

        // Fingerprint, event-count and message-count drift are each caught.
        let mut bad = vec![sequential.clone(), parallel.clone()];
        bad[1].fingerprint ^= 1;
        assert!(check_sim_workers(&bad)
            .iter()
            .any(|e| e.contains("split the result fingerprint")));
        let mut bad = vec![sequential.clone(), parallel.clone()];
        bad[1].ops += 1;
        assert!(check_sim_workers(&bad)
            .iter()
            .any(|e| e.contains("different event counts")));
        let mut bad = vec![sequential.clone(), parallel.clone()];
        bad[1].messages += 1;
        assert!(check_sim_workers(&bad)
            .iter()
            .any(|e| e.contains("different message counts")));

        // A parallel run that never dispatched to the pool proves nothing.
        let mut bad = vec![sequential, parallel];
        bad[1].wakeups = 0;
        assert!(check_sim_workers(&bad)
            .iter()
            .any(|e| e.contains("never exercised parallelism")));
    }

    #[test]
    fn scheduler_section_is_tolerated_by_both_parsers() {
        let text = document_json(&[], &healthy(), &scheduler_rows());
        // Both section parsers skip the report-only scheduler rows.
        assert!(crate::gate::parse_json(&text).unwrap().is_empty());
        let (workloads, parsed) = parse_document(&text).unwrap();
        assert!(workloads.is_empty());
        assert_eq!(parsed, healthy());
    }

    #[test]
    fn json_document_round_trips_and_gate_parser_skips_throughput() {
        let rows = healthy();
        let text = document_json(&[], &rows, &[]);
        // The modeled gate's parser tolerates the throughput section.
        assert!(crate::gate::parse_json(&text).unwrap().is_empty());
        let (workloads, parsed) = parse_document(&text).unwrap();
        assert!(workloads.is_empty());
        assert_eq!(parsed.len(), rows.len());
        assert_eq!(parsed[0].policy, "NM");
        assert_eq!(parsed[3].migrations, 90);
        assert_eq!(parsed[0].fingerprint, 0xdead_beef_cafe_f00d);
        assert_eq!(parsed[2].shift_redirects, 37);
        assert!((parsed[1].ops_per_sec - 796_680.5).abs() < 0.1);
        // And round-trips exactly.
        assert_eq!(parsed, rows);
    }

    #[test]
    fn parser_rejects_drift() {
        assert!(parse_throughput("{\"schema\": 1, \"throughput\": [{\"bogus\": 1}]}").is_err());
        assert!(parse_throughput("{\"schema\": 1, \"nonsense\": []}").is_err());
        // A document without the section parses to an empty list.
        assert!(parse_throughput("{\"schema\": 1, \"workloads\": []}")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn invariants_pass_on_a_healthy_sweep_and_catch_each_violation() {
        let params = KvParams::gate();
        assert_eq!(check_rows(&healthy(), &params), Vec::<String>::new());

        // NM moving is a violation.
        let mut rows = healthy();
        rows[0].migrations = 1;
        assert!(check_rows(&rows, &params)
            .iter()
            .any(|e| e.contains("no-migration baseline moved")));

        // An adaptive policy that stops beating NM on messages.
        let mut rows = healthy();
        rows[2].messages = 1001;
        assert!(check_rows(&rows, &params)
            .iter()
            .any(|e| e.contains("stopped paying for itself")));

        // A fingerprint split is a semantic failure.
        let mut rows = healthy();
        rows[1].fingerprint ^= 1;
        assert!(check_rows(&rows, &params)
            .iter()
            .any(|e| e.contains("changed the application result")));

        // AT redirections concentrating in settle windows.
        let mut rows = healthy();
        rows[2].shift_redirects = 10;
        rows[2].settle_redirects = 40;
        assert!(check_rows(&rows, &params)
            .iter()
            .any(|e| e.contains("did not drop after hot-set shifts")));

        // A missing baseline policy is reported by name.
        let rows: Vec<ThroughputRow> = healthy()
            .into_iter()
            .filter(|r| r.policy != "EWMA")
            .collect();
        assert!(check_rows(&rows, &params)
            .iter()
            .any(|e| e.contains("EWMA row missing")));
    }

    #[test]
    fn compare_flags_collapse_growth_and_drift() {
        let baseline = healthy();
        assert!(compare(
            &baseline,
            &baseline,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE
        )
        .is_empty());

        // 4x slower passes the generous band; 6x fails.
        let mut slow = healthy();
        for r in &mut slow {
            r.ops_per_sec /= 4.0;
        }
        assert!(compare(
            &slow,
            &baseline,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE
        )
        .is_empty());
        for r in &mut slow {
            r.ops_per_sec /= 1.5;
        }
        let errors = compare(
            &slow,
            &baseline,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE,
        );
        assert_eq!(errors.len(), baseline.len(), "{errors:?}");
        assert!(errors[0].contains("throughput collapsed"));

        // Message growth beyond tolerance and fingerprint drift are caught.
        let mut bad = healthy();
        bad[0].messages = 1300;
        bad[1].fingerprint ^= 1;
        let errors = compare(
            &bad,
            &baseline,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE,
        );
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("messages regressed"));
        assert!(errors[1].contains("fingerprint"));

        // An op-count mismatch refuses the comparison per policy instead
        // of misreporting the different workload as fingerprint drift.
        let mut resized = healthy();
        for r in &mut resized {
            r.ops /= 2;
            r.fingerprint ^= 1;
        }
        let errors = compare(
            &resized,
            &baseline,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE,
        );
        assert_eq!(errors.len(), baseline.len(), "{errors:?}");
        assert!(errors.iter().all(|e| e.contains("not comparable")));

        // Missing rows are flagged in both directions.
        let fewer: Vec<ThroughputRow> = healthy().into_iter().skip(1).collect();
        let errors = compare(
            &fewer,
            &baseline,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE,
        );
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("missing from current run"));
        let errors = compare(
            &baseline,
            &fewer,
            DEFAULT_WALL_BAND,
            DEFAULT_MESSAGE_TOLERANCE,
        );
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("no baseline entry"));
    }

    #[test]
    fn redirects_per_1k_is_ops_normalized() {
        let r = row("AT", 10, 192, 100);
        assert!((r.redirects_per_1k() - 2.0).abs() < 1e-9);
    }
}
