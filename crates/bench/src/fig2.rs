//! Figure 2 — application execution time against the number of processors,
//! with home migration enabled (HM = adaptive threshold) and disabled
//! (NoHM), for ASP, SOR, Nbody and TSP.

#[cfg(test)]
use crate::cluster;
use crate::table::{fmt_f, Table};
use crate::{cluster_on, Scale};
use dsm_apps::{asp, nbody, sor, tsp};
use dsm_core::ProtocolConfig;
use dsm_runtime::FabricMode;

/// One measurement point of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// Application name (ASP, SOR, Nbody, TSP).
    pub app: String,
    /// Number of cluster nodes.
    pub nodes: usize,
    /// Policy label ("HM" = adaptive migration, "NoHM" = disabled).
    pub policy: String,
    /// Virtual execution time in milliseconds.
    pub time_ms: f64,
    /// Total protocol messages.
    pub messages: u64,
    /// Home migrations performed.
    pub migrations: u64,
}

/// Node counts swept by the figure.
pub fn node_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![2, 4, 8],
        Scale::Paper => vec![2, 4, 8, 16],
    }
}

fn policies() -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("NoHM", ProtocolConfig::no_migration()),
        ("HM", ProtocolConfig::adaptive()),
    ]
}

/// Produce every point of Figure 2 (all four applications).
///
/// The figure reproduces the *paper's* wire protocol, so flush batching is
/// disabled here: batching compresses the NoHM baseline (whose flushes
/// persist and batch) much more than HM (which migrated the objects home),
/// which would skew exactly the comparison the figure makes. The gate table
/// the `fig2` binary prints alongside reports both wire modes.
pub fn collect(scale: Scale) -> Vec<Fig2Point> {
    collect_on(scale, &FabricMode::Threaded)
}

/// As [`collect`], on an explicit fabric: `--fabric sim --seed N` runs the
/// whole figure on the deterministic sim fabric, making the reproduction
/// replayable seed-exactly.
pub fn collect_on(scale: Scale, fabric: &FabricMode) -> Vec<Fig2Point> {
    // Shadows the crate-level threaded helper for the body below.
    let cluster = |nodes: usize, protocol: ProtocolConfig| cluster_on(nodes, protocol, fabric);
    let mut points = Vec::new();
    for nodes in node_counts(scale) {
        for (label, protocol) in policies() {
            // ASP
            let params = match scale {
                Scale::Small => asp::AspParams::small(96),
                Scale::Paper => asp::AspParams::paper(),
            };
            let run = asp::run(
                cluster(nodes, protocol.clone()).with_flush_batching(false),
                &params,
            );
            points.push(point("ASP", nodes, label, &run.report));

            // SOR
            let params = match scale {
                Scale::Small => sor::SorParams::small(96, 6),
                Scale::Paper => sor::SorParams::paper(),
            };
            let run = sor::run(
                cluster(nodes, protocol.clone()).with_flush_batching(false),
                &params,
            );
            points.push(point("SOR", nodes, label, &run.report));

            // Nbody
            let params = match scale {
                Scale::Small => nbody::NbodyParams::small(256, 3),
                Scale::Paper => nbody::NbodyParams::paper(),
            };
            let run = nbody::run(
                cluster(nodes, protocol.clone()).with_flush_batching(false),
                &params,
            );
            points.push(point("Nbody", nodes, label, &run.report));

            // TSP
            let params = match scale {
                Scale::Small => tsp::TspParams::small(10),
                Scale::Paper => tsp::TspParams::paper(),
            };
            let run = tsp::run(
                cluster(nodes, protocol.clone()).with_flush_batching(false),
                &params,
            );
            points.push(point("TSP", nodes, label, &run.report));
        }
    }
    points
}

fn point(
    app: &str,
    nodes: usize,
    policy: &str,
    report: &dsm_runtime::ExecutionReport,
) -> Fig2Point {
    Fig2Point {
        app: app.to_string(),
        nodes,
        policy: policy.to_string(),
        time_ms: report.execution_time.as_millis(),
        messages: report.total_messages(),
        migrations: report.migrations(),
    }
}

/// Render the collected points as the figure's table.
pub fn render(points: &[Fig2Point]) -> Table {
    let mut table = Table::new(&[
        "app",
        "nodes",
        "policy",
        "time_ms",
        "messages",
        "migrations",
    ]);
    for p in points {
        table.row(vec![
            p.app.clone(),
            p.nodes.to_string(),
            p.policy.clone(),
            fmt_f(p.time_ms),
            p.messages.to_string(),
            p.migrations.to_string(),
        ]);
    }
    table
}

/// Shape checks for the figure (used by tests and EXPERIMENTS.md):
/// HM must clearly beat NoHM for ASP and SOR and stay neutral for Nbody
/// and TSP (gated on message-count neutrality — their times are noisy at
/// test scales).
pub fn shape_holds(points: &[Fig2Point]) -> bool {
    let find = |app: &str, nodes: usize, policy: &str| -> Option<&Fig2Point> {
        points
            .iter()
            .find(|p| p.app == app && p.nodes == nodes && p.policy == policy)
    };
    let mut ok = true;
    for p in points {
        if p.policy != "HM" {
            continue;
        }
        let Some(nohm) = find(&p.app, p.nodes, "NoHM") else {
            continue;
        };
        match p.app.as_str() {
            "ASP" | "SOR" => {
                if p.nodes >= 4 {
                    ok &= p.time_ms < nohm.time_ms;
                }
            }
            "TSP" => {
                // TSP is neutral, but its modeled *time* is noisy:
                // branch-and-bound pruning depends on racy lock-grant
                // order (the paper notes lock re-acquisition "happens
                // randomly at runtime"), which moves the explored work —
                // and with it the time — by tens of percent between runs.
                // The stable expression of neutrality is the message
                // count: HM neither adds nor removes meaningful coherence
                // traffic.
                let delta = (p.messages as f64 - nohm.messages as f64).abs();
                ok &= delta / (nohm.messages as f64) < 0.25;
            }
            _ => {
                // Nbody: neutral like TSP, and just as noisy in *time* at
                // the scales the tests sweep — a few milliseconds of
                // mostly-local compute, where scheduler jitter alone moves
                // the wall clock by tens of percent. Neutrality gates on
                // the coherence traffic instead: HM must not meaningfully
                // change the message count.
                let delta = (p.messages as f64 - nohm.messages as f64).abs();
                ok &= delta / (nohm.messages as f64) < 0.25;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts_match_scale() {
        assert_eq!(node_counts(Scale::Small), vec![2, 4, 8]);
        assert_eq!(node_counts(Scale::Paper), vec![2, 4, 8, 16]);
    }

    #[test]
    fn tiny_fig2_sweep_produces_expected_shape() {
        // A miniature sweep (one node count) exercising the full pipeline.
        let mut points = Vec::new();
        for (label, protocol) in policies() {
            let run = asp::run(cluster(4, protocol.clone()), &asp::AspParams::small(24));
            points.push(point("ASP", 4, label, &run.report));
            let run = sor::run(cluster(4, protocol.clone()), &sor::SorParams::small(24, 2));
            points.push(point("SOR", 4, label, &run.report));
            let run = nbody::run(cluster(4, protocol), &nbody::NbodyParams::small(48, 1));
            points.push(point("Nbody", 4, label, &run.report));
        }
        assert!(shape_holds(&points), "figure 2 shape violated: {points:?}");
        let table = render(&points);
        assert_eq!(table.len(), points.len());
    }
}
