//! # dsm-bench — the experiment harness
//!
//! One function per figure of the paper's evaluation (Section 5), each
//! returning the rows/series the paper plots, plus report binaries
//! (`fig2`, `fig3`, `fig5`, `ablation_notify`, `ablation_alpha`,
//! `ablation_related`) that print the same data as aligned text tables and
//! CSV. The `benches/` targets are plain `harness = false` binaries built
//! on [`time_bench`] — the offline build environment carries no criterion
//! dependency.
//!
//! Paper workload sizes (1024-vertex ASP, 2048×2048 SOR, 16 nodes) take a
//! while on a single development machine because the whole cluster is
//! simulated in one process; every harness therefore takes a [`Scale`]
//! knob. `Scale::Small` keeps the shapes of the figures while running in
//! seconds; `Scale::Paper` uses the paper's sizes. Binaries accept `--full`
//! to select the paper scale.
//!
//! Besides the modeled figures, [`throughput`] measures **wall-clock**
//! ops/sec and latency percentiles for the KV serving workload across the
//! policy grid, and [`gate`] + [`throughput`] together write and check the
//! two-section `BENCH_PR.json` regression document.
//!
//! ## Adding a workload
//!
//! A workload is a function `fn(ClusterConfig) -> (fingerprint, report)` —
//! there is deliberately no trait to implement. The contract is the
//! *fingerprint*: a `u64` (FNV fold, by convention) over the workload's
//! deterministic result, where "deterministic" means *schedule-independent
//! for a fixed `(seed, params, num_nodes)`* — identical across fabrics
//! (threaded / sim / tcp), sim seeds, migration policies and replays. The
//! standard way to get there is single-writer-per-object-per-phase with
//! barriers between phases; values whose outcome depends on timing (e.g.
//! racy reads) must stay out of the fingerprint. `dsm_apps::kv` is the
//! worked example: writes are partitioned by a per-phase [`writer`]
//! rotation so the final store contents fingerprint exactly, while the
//! values *read* under contention are folded into a separate, unchecked
//! `read_hash`.
//!
//! A new workload then joins one or both harnesses:
//!
//! * **Conformance matrix** — add a `MatrixWorkload` entry to
//!   [`matrix::workloads`] with small parameters (the full policy × fabric
//!   × seed sweep runs every cell many times; aim for well under a second
//!   per cell). The sim matrix, the lossy fault matrix, the weekly extended
//!   sweep and the TCP conformance suite all widen automatically.
//! * **Throughput harness** — only if the workload is a *serving* loop
//!   whose wall-clock rate is meaningful; wire it in
//!   [`throughput::collect`] and extend the row invariants
//!   ([`throughput::check_rows`]) with whatever per-policy behaviour the
//!   workload pins down. Refresh `bench/throughput_baseline.json` with
//!   `throughput --gate --write-baseline` in the same PR.
//!
//! Modeled workloads instead join the [`gate`] (add the name to
//! [`gate::WORKLOADS`], run it in `run_workload`, refresh
//! `bench/baseline.json` with `bench_gate --write-baseline`).
//!
//! [`writer`]: dsm_apps::kv::writer

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod gate;
pub mod matrix;
pub mod table;
pub mod throughput;

use dsm_core::ProtocolConfig;
use dsm_model::ComputeModel;
use dsm_runtime::{ClusterConfig, FabricMode, SimConfig, TcpConfig};

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes: same shapes, seconds of runtime. Used by tests and the
    /// default benchmark run.
    Small,
    /// The paper's sizes (1024-vertex ASP, 2048×2048 SOR, 2048-body Nbody,
    /// 12-city TSP, 16 nodes).
    Paper,
}

impl Scale {
    /// Parse the scale from process arguments (`--full` selects
    /// [`Scale::Paper`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full" || a == "--paper") {
            Scale::Paper
        } else {
            Scale::Small
        }
    }
}

/// Build a cluster configuration for an experiment run: the paper's Fast
/// Ethernet network and Pentium-4-class compute model.
pub fn cluster(nodes: usize, protocol: ProtocolConfig) -> ClusterConfig {
    dsm_runtime::Cluster::builder()
        .nodes(nodes)
        .protocol(protocol)
        .compute(ComputeModel::pentium4_2ghz())
        .config()
}

/// As [`cluster`], but on an explicit fabric — the figure harnesses thread
/// this through so paper reproductions can run on the deterministic sim
/// fabric (`--fabric sim --seed N`) and be replayed seed-exactly.
pub fn cluster_on(nodes: usize, protocol: ProtocolConfig, fabric: &FabricMode) -> ClusterConfig {
    cluster(nodes, protocol).with_fabric(fabric.clone())
}

/// Parse the fabric selection from process arguments: `--fabric sim`
/// selects the deterministic sim fabric (seeded by `--seed N`, default
/// 2004; hex `0x...` accepted, so the seeds printed by failure reports can
/// be pasted verbatim); `--fabric tcp` runs the same experiment over real
/// `127.0.0.1` sockets; `--fabric threaded` (or no flag) keeps the
/// threaded fabric.
///
/// # Panics
/// Panics on an unknown `--fabric` value or an unparsable `--seed`, so a
/// typo cannot silently fall back to a different experiment.
pub fn fabric_from_args() -> FabricMode {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    match value_of("--fabric") {
        None | Some("threaded") => FabricMode::Threaded,
        Some("sim") => {
            let seed = value_of("--seed").map_or(2004, |s| {
                dsm_util::parse_seed(s).unwrap_or_else(|e| panic!("--seed {s:?} is invalid: {e}"))
            });
            FabricMode::Sim(SimConfig::perturbed(seed))
        }
        Some("tcp") => FabricMode::Tcp(TcpConfig::default()),
        Some(other) => panic!("unknown --fabric {other:?} (expected: threaded, sim, tcp)"),
    }
}

/// A one-line caveat the figure binaries print for fabrics that change how
/// the experiment should be read; `None` when nothing needs saying. The
/// modeled-time figures are defined by the virtual clock, which is
/// fabric-independent — the TCP note exists because readers reasonably
/// suspect real sockets would perturb them, and they do not.
pub fn fabric_note(fabric: &FabricMode) -> Option<&'static str> {
    match fabric {
        FabricMode::Threaded | FabricMode::Sim(_) => None,
        FabricMode::Tcp(_) => Some(
            "note: --fabric tcp moves real bytes over 127.0.0.1, but the figures below \
             plot modeled virtual time, which is fabric-independent; sim/loopback \
             produce the same numbers without socket overhead",
        ),
    }
}

/// Run `f` `iters` times and print the minimum and mean wall-clock duration.
/// The `benches/` targets are plain `harness = false` binaries built on this
/// helper (the offline build environment carries no criterion dependency).
pub fn time_bench(label: &str, iters: u32, mut f: impl FnMut()) {
    use std::time::{Duration, Instant};
    assert!(iters > 0, "a benchmark needs at least one iteration");
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        best = best.min(elapsed);
        total += elapsed;
    }
    println!("{label:>16}: min {best:>12?}  mean {:>12?}", total / iters);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_small() {
        // The test binary has no --full flag.
        assert_eq!(Scale::from_args(), Scale::Small);
    }

    #[test]
    fn cluster_builder_uses_requested_nodes() {
        let cfg = cluster(8, ProtocolConfig::adaptive());
        assert_eq!(cfg.num_nodes, 8);
    }
}
