//! Minimal aligned-text table and CSV output helpers for the report
//! binaries (no external dependencies).

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Default, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must have as many cells as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format a float with three significant decimals.
pub fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["app", "nodes", "time"]);
        t.row(vec!["ASP".into(), "8".into(), "12.5".into()]);
        t.row(vec!["SOR".into(), "16".into(), "3.25".into()]);
        let text = t.render();
        assert!(text.contains("app"));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn row_arity_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_pct(0.1234), "12.3%");
    }
}
