//! Figure 3 — improvement of the adaptive-threshold protocol (AT) over the
//! fixed-threshold protocol FT2 in execution time, message count and network
//! traffic, as the problem size scales (ASP graph size, SOR matrix size), on
//! eight cluster nodes.

use crate::table::{fmt_pct, Table};
use crate::{cluster_on, Scale};
use dsm_apps::{asp, sor};
use dsm_core::ProtocolConfig;
use dsm_runtime::FabricMode;

/// Number of cluster nodes used by the figure (the paper uses eight).
pub const NODES: usize = 8;

/// One measurement point of Figure 3.
#[derive(Debug, Clone)]
pub struct Fig3Point {
    /// Application name (ASP or SOR).
    pub app: String,
    /// Problem size (graph vertices / matrix dimension).
    pub size: usize,
    /// Relative reduction of execution time, AT vs FT2.
    pub time_improvement: f64,
    /// Relative reduction of the message count, AT vs FT2.
    pub message_improvement: f64,
    /// Relative reduction of the network traffic, AT vs FT2.
    pub traffic_improvement: f64,
}

/// Problem sizes swept by the figure.
pub fn problem_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![32, 64, 128],
        Scale::Paper => vec![128, 256, 512, 1024],
    }
}

/// Collect the ASP and SOR series.
pub fn collect(scale: Scale) -> Vec<Fig3Point> {
    collect_on(scale, &FabricMode::Threaded)
}

/// As [`collect`], on an explicit fabric (`--fabric sim --seed N` makes the
/// reproduction replayable seed-exactly).
pub fn collect_on(scale: Scale, fabric: &FabricMode) -> Vec<Fig3Point> {
    let mut points = Vec::new();
    for size in problem_sizes(scale) {
        points.push(asp_point_on(size, fabric));
        points.push(sor_point_on(size, fabric));
    }
    points
}

/// One ASP measurement at a given graph size, threaded fabric.
pub fn asp_point(size: usize) -> Fig3Point {
    asp_point_on(size, &FabricMode::Threaded)
}

/// One ASP measurement at a given graph size.
///
/// As in Figure 2, the paper-reproduction points run with flush batching
/// disabled (the paper's one-`DiffFlush`-per-object wire protocol), so the
/// AT-vs-FT2 comparison measures exactly what the paper measured; the gate
/// table the `fig3` binary prints alongside reports both wire modes.
pub fn asp_point_on(size: usize, fabric: &FabricMode) -> Fig3Point {
    let params = asp::AspParams::small(size);
    let at = asp::run(
        cluster_on(NODES, ProtocolConfig::adaptive(), fabric).with_flush_batching(false),
        &params,
    );
    let ft2 = asp::run(
        cluster_on(NODES, ProtocolConfig::fixed_threshold(2), fabric).with_flush_batching(false),
        &params,
    );
    Fig3Point {
        app: "ASP".to_string(),
        size,
        time_improvement: at.report.time_improvement_over(&ft2.report),
        message_improvement: at.report.message_improvement_over(&ft2.report),
        traffic_improvement: at.report.traffic_improvement_over(&ft2.report),
    }
}

/// One SOR measurement at a given matrix size, threaded fabric.
pub fn sor_point(size: usize) -> Fig3Point {
    sor_point_on(size, &FabricMode::Threaded)
}

/// One SOR measurement at a given matrix size (paper wire mode, see
/// [`asp_point_on`]).
pub fn sor_point_on(size: usize, fabric: &FabricMode) -> Fig3Point {
    let params = sor::SorParams::small(size, 6);
    let at = sor::run(
        cluster_on(NODES, ProtocolConfig::adaptive(), fabric).with_flush_batching(false),
        &params,
    );
    let ft2 = sor::run(
        cluster_on(NODES, ProtocolConfig::fixed_threshold(2), fabric).with_flush_batching(false),
        &params,
    );
    Fig3Point {
        app: "SOR".to_string(),
        size,
        time_improvement: at.report.time_improvement_over(&ft2.report),
        message_improvement: at.report.message_improvement_over(&ft2.report),
        traffic_improvement: at.report.traffic_improvement_over(&ft2.report),
    }
}

/// Render the collected points as a table.
pub fn render(points: &[Fig3Point]) -> Table {
    let mut table = Table::new(&[
        "app",
        "size",
        "time_improvement",
        "message_improvement",
        "traffic_improvement",
    ]);
    for p in points {
        table.row(vec![
            p.app.clone(),
            p.size.to_string(),
            fmt_pct(p.time_improvement),
            fmt_pct(p.message_improvement),
            fmt_pct(p.traffic_improvement),
        ]);
    }
    table
}

/// Shape check: AT never loses to FT2 by more than noise, and wins on
/// messages for both applications.
pub fn shape_holds(points: &[Fig3Point]) -> bool {
    points.iter().all(|p| {
        p.message_improvement > -0.02 && p.time_improvement > -0.05 && p.traffic_improvement > -0.05
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_scale() {
        assert_eq!(problem_sizes(Scale::Small), vec![32, 64, 128]);
        assert_eq!(problem_sizes(Scale::Paper).last(), Some(&1024));
    }

    #[test]
    fn at_improves_over_ft2_on_small_instances() {
        let points = vec![asp_point(24), sor_point(24)];
        assert!(shape_holds(&points), "figure 3 shape violated: {points:?}");
        let table = render(&points);
        assert_eq!(table.len(), 2);
    }
}
