//! The benchmark-regression gate.
//!
//! Runs a small, fully deterministic set of modeled workloads — the Figure 2
//! / Figure 3 applications (SOR, ASP) and the ablation's synthetic
//! single-writer pattern — in **both** flush-batching modes, and turns the
//! results into a flat JSON report (`BENCH_PR.json` in CI). The gate then
//! checks two things:
//!
//! 1. **Internal invariants** — batching must never change application
//!    results (checksums are byte-derived), it must deliver *strictly
//!    fewer* diff-propagation messages on the multi-object SOR workloads,
//!    and *strictly lower* modeled time on the deterministic
//!    (no-migration) one;
//! 2. **Regression vs. a committed baseline** (`bench/baseline.json`) —
//!    modeled message counts must not grow by more than the tolerance
//!    (5 % in CI) for any (workload, mode) pair; modeled execution time is
//!    gated for the [`time_gated`] (no-migration) workloads at
//!    [`TIME_TOLERANCE_FACTOR`] × the tolerance, because thread-scheduling
//!    order leaks a little noise into the virtual clock. Adaptive-threshold
//!    rows race migrations against requests, so their modeled time varies
//!    run to run and only their (stable) message counts are gated.
//!
//! The same gate runs locally through `scripts/bench_gate.sh` (or
//! `cargo run -p dsm-bench --release --bin bench_gate`).

use crate::table::{fmt_f, Table};
use crate::{cluster, Scale};
use dsm_apps::synthetic::{self, SyntheticParams};
use dsm_apps::{asp, sor};
use dsm_core::{EwmaWriteRatioPolicy, HysteresisPolicy, MigrationPolicy, ProtocolConfig};
use dsm_runtime::ExecutionReport;

/// Relative growth in messages or modeled time that fails the gate.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// Modeled *time* is gated at this multiple of the message tolerance.
/// Message counts are scheduling-invariant (repeat runs reproduce them to
/// the message), but real thread-scheduling order leaks into the virtual
/// clock — per-message handling costs accumulate in arrival order — which
/// moves modeled time by up to ~±8 % between runs even on deterministic
/// workloads. 3 × 5 % still catches any structural slowdown (a lost
/// batching path costs ~25 % on the SOR workload) without flaking on
/// scheduler noise.
pub const TIME_TOLERANCE_FACTOR: f64 = 3.0;

/// One measured (workload, mode) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Workload label (stable across runs; the baseline is keyed on it).
    pub workload: String,
    /// Whether release-time flush batching was enabled.
    pub batched: bool,
    /// Total modeled protocol messages.
    pub messages: u64,
    /// Diff-propagation messages (`Diff` + `DiffBatch`).
    pub diff_messages: u64,
    /// Total modeled network traffic in bytes.
    pub bytes: u64,
    /// Modeled (virtual) execution time in milliseconds.
    pub time_ms: f64,
    /// Home migrations performed during the run.
    pub migrations: u64,
    /// Migrations that returned the home to the node it had just left (the
    /// ping-pong events the policy matrix's hysteresis row damps).
    pub migrate_backs: u64,
    /// Checksum of the application result (0 when the workload has none);
    /// must be identical between the two modes of one workload.
    pub checksum: f64,
}

impl GateRow {
    fn from_report(workload: &str, batched: bool, checksum: f64, report: &ExecutionReport) -> Self {
        GateRow {
            workload: workload.to_string(),
            batched,
            messages: report.total_messages(),
            diff_messages: report.network.diff_propagation_messages(),
            bytes: report.total_traffic_bytes(),
            time_ms: report.execution_time.as_millis(),
            migrations: report.migrations(),
            migrate_backs: report.migrate_backs(),
            checksum,
        }
    }

    /// The key the baseline comparison matches rows on.
    pub fn key(&self) -> String {
        format!(
            "{}[{}]",
            self.workload,
            if self.batched { "batched" } else { "unbatched" }
        )
    }
}

/// Every gate workload, in the order they are collected and reported. The
/// `policy_matrix_*` family runs one fixed ping-pong workload (the
/// synthetic single-writer benchmark on three nodes: two workers
/// alternating short bursts) across the policy layer — the paper's
/// baselines, the beyond-the-paper hysteresis and EWMA policies, and a
/// mixed cluster whose default policy is overridden per object — so
/// policy-layer regressions are gated exactly like wire-mode regressions.
pub const WORKLOADS: [&str; 10] = [
    "fig2_sor_nohm",
    "fig3_sor_at",
    "fig3_asp_at",
    "ablation_synthetic_r2_nohm",
    "policy_matrix_nohm",
    "policy_matrix_at",
    "policy_matrix_ft2",
    "policy_matrix_hyst",
    "policy_matrix_ewma",
    "policy_matrix_mixed",
];

/// Run one named gate workload in one flush-batching mode.
fn run_workload(name: &str, scale: Scale, batched: bool) -> GateRow {
    // The AT SOR size keeps `band / nodes >= 2` on eight nodes, so each
    // release still flushes at least two rows per remote home and batches
    // really form under the migration-enabled configuration too.
    let (sor_size, at_sor_size, asp_size, updates) = match scale {
        Scale::Small => (64, 128, 48, 96),
        Scale::Paper => (256, 512, 128, 384),
    };
    match name {
        // Figure 2's SOR under NoHM on four nodes: round-robin row homes
        // mean every phase release flushes several same-home diffs — the
        // workload batching exists for.
        "fig2_sor_nohm" => {
            let params = sor::SorParams::small(sor_size, 4);
            let config = cluster(4, ProtocolConfig::no_migration()).with_flush_batching(batched);
            let run = sor::run(config, &params);
            GateRow::from_report(name, batched, sor::checksum(&run.result), &run.report)
        }
        // Figure 3's SOR configuration (adaptive threshold, eight nodes):
        // the early iterations flush whole bands to the round-robin homes
        // (batched), then rows migrate to their writers and only boundary
        // traffic is left — batching under the paper's headline mode.
        "fig3_sor_at" => {
            let params = sor::SorParams::small(at_sor_size, 4);
            let config = cluster(crate::fig3::NODES, ProtocolConfig::adaptive())
                .with_flush_batching(batched);
            let run = sor::run(config, &params);
            GateRow::from_report(name, batched, sor::checksum(&run.result), &run.report)
        }
        // Figure 3's ASP configuration.
        "fig3_asp_at" => {
            let params = asp::AspParams::small(asp_size);
            let config = cluster(crate::fig3::NODES, ProtocolConfig::adaptive())
                .with_flush_batching(batched);
            let run = asp::run(config, &params);
            GateRow::from_report(name, batched, asp::checksum(&run.result), &run.report)
        }
        // The ablation's synthetic single-writer pattern at r = 2, pinned
        // to the no-migration baseline: every update is exactly one
        // fault-in plus one diff, so the message count is a closed-form
        // function of the configuration — the most regression-sensitive
        // row of the gate. (Single-object intervals never batch; the row
        // exists to pin the unbatched fast path in both modes.)
        "ablation_synthetic_r2_nohm" => {
            let params = SyntheticParams {
                repetition: 2,
                total_updates: updates,
                compute_ops: 0,
            };
            let config = cluster(5, ProtocolConfig::no_migration()).with_flush_batching(batched);
            let run = synthetic::run(config, &params);
            GateRow::from_report(name, batched, run.result as f64, &run.report)
        }
        // The policy matrix: the synthetic benchmark on three nodes (master
        // plus two workers taking turns in bursts of two updates) is a
        // ping-pong access trace — the hardest pattern for eager migration
        // policies and the one hysteresis exists for. The EWMA row instead
        // uses bursts of four: its default configuration (gain 0.5, bound
        // 0.8) needs three unbroken remote writes to arm, so bursts of two
        // would leave the policy permanently inert and the row would gate
        // nothing. `total_updates` is a multiple of every repetition used,
        // so the final counter value (the checksum) is
        // schedule-independent.
        name if name.starts_with("policy_matrix_") => {
            let repetition = if name == "policy_matrix_ewma" { 4 } else { 2 };
            let params = SyntheticParams {
                repetition,
                total_updates: updates,
                compute_ops: 0,
            };
            let protocol = match name {
                "policy_matrix_nohm" => ProtocolConfig::no_migration(),
                "policy_matrix_at" => ProtocolConfig::adaptive(),
                "policy_matrix_ft2" => ProtocolConfig::fixed_threshold(2),
                "policy_matrix_hyst" => {
                    ProtocolConfig::no_migration().with_migration(HysteresisPolicy::default())
                }
                "policy_matrix_ewma" => {
                    ProtocolConfig::no_migration().with_migration(EwmaWriteRatioPolicy::default())
                }
                // The mixed cluster: a NoMigration default, overridden to
                // the adaptive policy for the one object that matters —
                // proof that per-object overrides reach the engine (the
                // default alone would never migrate; see check_internal).
                "policy_matrix_mixed" => ProtocolConfig::no_migration()
                    .with_object_policy(synthetic::counter_object(), MigrationPolicy::adaptive()),
                other => panic!("unknown policy-matrix workload {other:?}"),
            };
            let config = cluster(3, protocol).with_flush_batching(batched);
            let run = synthetic::run(config, &params);
            GateRow::from_report(name, batched, run.result as f64, &run.report)
        }
        other => panic!("unknown gate workload {other:?}"),
    }
}

/// Collect every gate workload in both flush-batching modes.
pub fn collect(scale: Scale) -> Vec<GateRow> {
    collect_prefixed(scale, "")
}

/// Collect only the gate workloads whose name starts with `prefix`, in both
/// flush-batching modes — the fig2/fig3/ablation binaries use this to show
/// their *own* workload family in both wire modes without re-running the
/// other figures' workloads.
pub fn collect_prefixed(scale: Scale, prefix: &str) -> Vec<GateRow> {
    let mut rows = Vec::new();
    for batched in [true, false] {
        for name in WORKLOADS {
            if name.starts_with(prefix) {
                rows.push(run_workload(name, scale, batched));
            }
        }
    }
    rows
}

/// Render gate rows as a table (printed by the fig2/fig3/ablation binaries
/// so every report shows both flush-batching modes).
pub fn render(rows: &[GateRow]) -> Table {
    let mut table = Table::new(&[
        "workload",
        "mode",
        "messages",
        "diff_msgs",
        "bytes",
        "time_ms",
        "migr",
        "backs",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            if row.batched { "batched" } else { "unbatched" }.to_string(),
            row.messages.to_string(),
            row.diff_messages.to_string(),
            row.bytes.to_string(),
            fmt_f(row.time_ms),
            row.migrations.to_string(),
            row.migrate_backs.to_string(),
        ]);
    }
    table
}

/// Internal consistency checks on a freshly collected run; returns the list
/// of violations (empty = pass).
pub fn check_internal(rows: &[GateRow]) -> Vec<String> {
    let mut errors = Vec::new();
    let find = |workload: &str, batched: bool| {
        rows.iter()
            .find(|r| r.workload == workload && r.batched == batched)
    };
    let workloads: Vec<&str> = {
        let mut seen = Vec::new();
        for row in rows {
            if !seen.contains(&row.workload.as_str()) {
                seen.push(row.workload.as_str());
            }
        }
        seen
    };
    for workload in &workloads {
        let (Some(on), Some(off)) = (find(workload, true), find(workload, false)) else {
            errors.push(format!("{workload}: missing one of the two modes"));
            continue;
        };
        if on.checksum != off.checksum {
            errors.push(format!(
                "{workload}: batching changed the application result \
                 (checksum {} vs {})",
                on.checksum, off.checksum
            ));
        }
    }
    // The acceptance claim, enforced on the multi-object SOR workloads:
    // strictly fewer diff-propagation messages with batching on, and — on
    // the no-migration configuration, whose message DAG is a pure function
    // of the workload — strictly lower modeled time. (Adaptive-threshold
    // runs carry a little scheduling noise in modeled time, so the strict
    // time comparison is pinned to the deterministic workload; the 5 %
    // baseline comparison still bounds AT's time.)
    for workload in ["fig2_sor_nohm", "fig3_sor_at"] {
        if let (Some(on), Some(off)) = (find(workload, true), find(workload, false)) {
            if on.diff_messages >= off.diff_messages {
                errors.push(format!(
                    "{workload}: batching must send strictly fewer diff messages \
                     ({} vs {})",
                    on.diff_messages, off.diff_messages
                ));
            }
        }
    }
    if let (Some(on), Some(off)) = (find("fig2_sor_nohm", true), find("fig2_sor_nohm", false)) {
        if on.time_ms >= off.time_ms {
            errors.push(format!(
                "fig2_sor_nohm: batching must lower modeled time \
                 ({} ms vs {} ms)",
                on.time_ms, off.time_ms
            ));
        }
    }
    // The policy-matrix claims, checked per flush-batching mode:
    // 1. NoMigration never migrates — the trait-based NM policy must be as
    //    inert as the old enum variant.
    // 2. The adaptive default migrates on the worker pattern, and on the
    //    two-worker ping-pong trace it pays migrate-backs.
    // 3. The hysteresis policy's whole point: strictly fewer migrate-backs
    //    than the adaptive policy on the same ping-pong trace.
    // 4. The mixed cluster's NoMigration *default* would never migrate, so
    //    any migration there proves the per-object override reached the
    //    engine's decision point.
    for batched in [true, false] {
        let mode = if batched { "batched" } else { "unbatched" };
        if let Some(nohm) = find("policy_matrix_nohm", batched) {
            if nohm.migrations != 0 || nohm.migrate_backs != 0 {
                errors.push(format!(
                    "policy_matrix_nohm[{mode}]: NoMigration migrated \
                     ({} migrations, {} migrate-backs)",
                    nohm.migrations, nohm.migrate_backs
                ));
            }
        }
        if let (Some(at), Some(hyst)) = (
            find("policy_matrix_at", batched),
            find("policy_matrix_hyst", batched),
        ) {
            if at.migrations == 0 || at.migrate_backs == 0 {
                errors.push(format!(
                    "policy_matrix_at[{mode}]: the adaptive policy must \
                     migrate (and migrate back) on the ping-pong trace \
                     ({} migrations, {} migrate-backs)",
                    at.migrations, at.migrate_backs
                ));
            } else if hyst.migrate_backs >= at.migrate_backs {
                errors.push(format!(
                    "policy_matrix[{mode}]: hysteresis must suffer strictly \
                     fewer migrate-backs than adaptive ({} vs {})",
                    hyst.migrate_backs, at.migrate_backs
                ));
            }
        }
        if let Some(mixed) = find("policy_matrix_mixed", batched) {
            if mixed.migrations == 0 {
                errors.push(format!(
                    "policy_matrix_mixed[{mode}]: the per-object adaptive \
                     override never migrated — overrides are not reaching \
                     the engine"
                ));
            }
        }
        // The EWMA row runs bursts of four, which deterministically arm the
        // default write-ratio bound within a single writer's turn — a row
        // that never migrates means the policy (or its scratch hooks) broke.
        if let Some(ewma) = find("policy_matrix_ewma", batched) {
            if ewma.migrations == 0 {
                errors.push(format!(
                    "policy_matrix_ewma[{mode}]: the EWMA policy must \
                     migrate on bursts of four (0 migrations)"
                ));
            }
        }
    }
    errors
}

/// Whether a workload's modeled *time* is gated against the baseline. Only
/// the no-migration workloads qualify: their message DAG is a pure function
/// of the configuration, so modeled time is reproducible to within ~1 %.
/// Adaptive-threshold runs race migrations against requests, which can
/// shift modeled time by double-digit percentages between runs — those rows
/// are gated on message counts only (counts stay within a fraction of a
/// percent).
pub fn time_gated(workload: &str) -> bool {
    workload.ends_with("_nohm")
}

/// Compare a fresh run against the committed baseline; returns the list of
/// regressions (empty = pass). `tolerance` is the allowed relative growth
/// in modeled message count and — for [`time_gated`] workloads — modeled
/// time (0.05 = 5 %).
pub fn compare(current: &[GateRow], baseline: &[GateRow], tolerance: f64) -> Vec<String> {
    let mut errors = Vec::new();
    for base in baseline {
        let Some(now) = current
            .iter()
            .find(|r| r.workload == base.workload && r.batched == base.batched)
        else {
            errors.push(format!("{}: workload missing from current run", base.key()));
            continue;
        };
        let msg_limit = base.messages as f64 * (1.0 + tolerance);
        if now.messages as f64 > msg_limit {
            errors.push(format!(
                "{}: modeled message count regressed {} -> {} (> {:.0}% over baseline)",
                base.key(),
                base.messages,
                now.messages,
                tolerance * 100.0
            ));
        }
        let time_tolerance = tolerance * TIME_TOLERANCE_FACTOR;
        let time_limit = base.time_ms * (1.0 + time_tolerance);
        if time_gated(&base.workload) && now.time_ms > time_limit {
            errors.push(format!(
                "{}: modeled time regressed {:.3} ms -> {:.3} ms (> {:.0}% over baseline)",
                base.key(),
                base.time_ms,
                now.time_ms,
                time_tolerance * 100.0
            ));
        }
    }
    // The reverse direction: a workload measured now but absent from the
    // baseline would otherwise be silently ungated — a newly added gate
    // workload must come with a refreshed baseline (`--write-baseline`).
    for now in current {
        if !baseline
            .iter()
            .any(|b| b.workload == now.workload && b.batched == now.batched)
        {
            errors.push(format!(
                "{}: no baseline entry — refresh bench/baseline.json with --write-baseline",
                now.key()
            ));
        }
    }
    errors
}

// ----------------------------------------------------------------------
// JSON (de)serialization — hand-rolled, the workspace carries no serde.
// ----------------------------------------------------------------------

/// Serialize gate rows as the `BENCH_PR.json` / `bench/baseline.json`
/// document.
pub fn to_json(rows: &[GateRow]) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"batched\": {}, \"messages\": {}, \
             \"diff_messages\": {}, \"bytes\": {}, \"time_ms\": {:.6}, \
             \"migrations\": {}, \"migrate_backs\": {}, \
             \"checksum\": {:.6}}}{}\n",
            row.workload,
            row.batched,
            row.messages,
            row.diff_messages,
            row.bytes,
            row.time_ms,
            row.migrations,
            row.migrate_backs,
            row.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse a gate JSON document (the exact shape [`to_json`] writes; field
/// order inside a workload object is free, unknown fields are rejected so
/// schema drift is caught loudly).
pub fn parse_json(text: &str) -> Result<Vec<GateRow>, String> {
    let mut rows = Vec::new();
    parse_into(text, &mut rows)?;
    Ok(rows)
}

/// As [`parse_json`], but salvaging: returns every workload row that
/// parsed *before* the first error, plus the error itself (`None` = clean
/// parse). The bench binaries merge their sections into one shared
/// `BENCH_PR.json`; when that file is truncated or corrupt (a killed CI
/// step mid-write), a strict parse would make the next binary silently
/// drop every section it does not own — salvage keeps whatever rows
/// survive and surfaces the damage as a warning instead.
pub fn salvage_json(text: &str) -> (Vec<GateRow>, Option<String>) {
    let mut rows = Vec::new();
    let error = parse_into(text, &mut rows).err();
    (rows, error)
}

/// The shared parse loop: pushes each workload row into `rows` as it
/// completes, so a truncation error loses only the row it interrupted.
fn parse_into(text: &str, rows: &mut Vec<GateRow>) -> Result<(), String> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect(b'{')?;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "schema" => {
                let v = p.number()?;
                if v != 1.0 {
                    return Err(format!("unsupported gate schema {v}"));
                }
            }
            "workloads" => {
                p.expect(b'[')?;
                p.skip_ws();
                if !p.eat(b']') {
                    loop {
                        rows.push(p.workload()?);
                        p.skip_ws();
                        if p.eat(b']') {
                            break;
                        }
                        p.expect(b',')?;
                    }
                }
            }
            // The throughput harness appends its own sections to the same
            // document (see `crate::throughput::parse_document`); the
            // workload-gate parser tolerates and skips them so both gates
            // can read one `BENCH_PR.json`.
            "throughput" | "scheduler" => p.skip_value()?,
            other => return Err(format!("unknown top-level key {other:?}")),
        }
        p.skip_ws();
        if p.eat(b'}') {
            break;
        }
        p.expect(b',')?;
    }
    Ok(())
}

/// Minimal recursive-descent parser for the gate document. Shared with the
/// throughput section's (de)serializer in `crate::throughput`.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }
}

impl Parser<'_> {
    pub(crate) fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    pub(crate) fn eat(&mut self, byte: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} (found {:?})",
                byte as char,
                self.pos,
                self.bytes.get(self.pos).map(|b| *b as char)
            ))
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| e.to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err("escape sequences are not used by the gate format".to_string());
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    pub(crate) fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    pub(crate) fn boolean(&mut self) -> Result<bool, String> {
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(format!("expected boolean at byte {}", self.pos))
        }
    }

    /// Skip one JSON value of any shape — used to tolerate the *other*
    /// gate's section when each gate parses the shared document.
    pub(crate) fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => {
                self.string()?;
            }
            Some(b'{') | Some(b'[') => {
                let (open, close) = if self.bytes[self.pos] == b'{' {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                self.pos += 1;
                self.skip_ws();
                if self.eat(close) {
                    return Ok(());
                }
                loop {
                    if open == b'{' {
                        self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                    }
                    self.skip_value()?;
                    self.skip_ws();
                    if self.eat(close) {
                        return Ok(());
                    }
                    self.expect(b',')?;
                    self.skip_ws();
                }
            }
            Some(b't') | Some(b'f') => {
                self.boolean()?;
            }
            _ => {
                self.number()?;
            }
        }
        Ok(())
    }

    fn workload(&mut self) -> Result<GateRow, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut row = GateRow {
            workload: String::new(),
            batched: false,
            messages: 0,
            diff_messages: 0,
            bytes: 0,
            time_ms: 0.0,
            migrations: 0,
            migrate_backs: 0,
            checksum: 0.0,
        };
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            match key.as_str() {
                "workload" => row.workload = self.string()?,
                "batched" => row.batched = self.boolean()?,
                "messages" => row.messages = self.number()? as u64,
                "diff_messages" => row.diff_messages = self.number()? as u64,
                "bytes" => row.bytes = self.number()? as u64,
                "time_ms" => row.time_ms = self.number()?,
                "migrations" => row.migrations = self.number()? as u64,
                "migrate_backs" => row.migrate_backs = self.number()? as u64,
                "checksum" => row.checksum = self.number()?,
                other => return Err(format!("unknown workload key {other:?}")),
            }
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            self.expect(b',')?;
        }
        if row.workload.is_empty() {
            return Err("workload entry without a name".to_string());
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, batched: bool, messages: u64, time_ms: f64) -> GateRow {
        GateRow {
            workload: workload.to_string(),
            batched,
            messages,
            diff_messages: messages / 3,
            bytes: messages * 100,
            time_ms,
            migrations: 0,
            migrate_backs: 0,
            checksum: 42.5,
        }
    }

    #[test]
    fn json_round_trips() {
        let mut rows = vec![
            row("fig2_sor_nohm", true, 1200, 35.25),
            row("x", false, 7, 0.5),
        ];
        rows[0].migrations = 17;
        rows[0].migrate_backs = 3;
        let text = to_json(&rows);
        let parsed = parse_json(&text).expect("own output parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].workload, "fig2_sor_nohm");
        assert!(parsed[0].batched);
        assert_eq!(parsed[0].messages, 1200);
        assert_eq!(parsed[0].diff_messages, 400);
        assert_eq!(parsed[0].bytes, 120_000);
        assert!((parsed[0].time_ms - 35.25).abs() < 1e-9);
        assert_eq!(parsed[0].migrations, 17);
        assert_eq!(parsed[0].migrate_backs, 3);
        assert!((parsed[0].checksum - 42.5).abs() < 1e-9);
        assert!(!parsed[1].batched);
    }

    #[test]
    fn salvage_keeps_rows_parsed_before_a_truncation() {
        let rows = vec![row("a", true, 1, 1.0), row("b", false, 7, 0.5)];
        let text = to_json(&rows);
        // A clean document salvages completely, with no error.
        let (all, error) = salvage_json(&text);
        assert_eq!(all, rows);
        assert!(error.is_none());
        // Chopped mid-way through the second row: the first survives and
        // the damage is reported, where parse_json would drop everything.
        let cut = text.rfind("\"b\"").expect("second row is present");
        let (salvaged, error) = salvage_json(&text[..cut]);
        assert_eq!(salvaged.len(), 1, "{salvaged:?}");
        assert_eq!(salvaged[0], rows[0]);
        assert!(error.is_some());
        assert!(parse_json(&text[..cut]).is_err());
    }

    #[test]
    fn parser_rejects_schema_drift() {
        assert!(parse_json("{\"schema\": 2, \"workloads\": []}").is_err());
        assert!(parse_json("{\"schema\": 1, \"workloads\": [{\"bogus\": 1}]}").is_err());
        assert!(parse_json("not json").is_err());
        assert!(parse_json("{\"schema\": 1, \"workloads\": []}")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let baseline = vec![row("a_nohm", true, 100, 10.0), row("b", false, 100, 10.0)];
        // Within 5 %: pass. Messages -regression is fine (improvement).
        let ok = vec![row("a_nohm", true, 104, 10.4), row("b", false, 80, 8.0)];
        assert!(compare(&ok, &baseline, DEFAULT_TOLERANCE).is_empty());
        // Message blow-up and time blow-up are both caught, as is a
        // missing workload.
        let bad = vec![row("a_nohm", true, 106, 10.0)];
        let errors = compare(&bad, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("message count regressed"));
        assert!(errors[1].contains("missing"));
        // Time is gated at TIME_TOLERANCE_FACTOR x the message tolerance:
        // +6% passes, +16% fails.
        let slow_ok = vec![row("a_nohm", true, 100, 10.6), row("b", false, 100, 10.0)];
        assert!(compare(&slow_ok, &baseline, DEFAULT_TOLERANCE).is_empty());
        let slow = vec![row("a_nohm", true, 100, 11.6), row("b", false, 100, 10.0)];
        let errors = compare(&slow, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("time regressed"));
        // Modeled time is NOT gated for scheduling-noisy (adaptive) rows;
        // their message counts still are.
        assert!(time_gated("fig2_sor_nohm"));
        assert!(!time_gated("fig3_sor_at"));
        let noisy_time = vec![row("a_nohm", true, 100, 10.0), row("b", false, 100, 99.0)];
        assert!(compare(&noisy_time, &baseline, DEFAULT_TOLERANCE).is_empty());
        // A workload measured now but missing from the baseline fails the
        // gate (it would otherwise be silently ungated).
        let extra = vec![
            row("a_nohm", true, 100, 10.0),
            row("b", false, 100, 10.0),
            row("fresh", true, 1, 1.0),
        ];
        let errors = compare(&extra, &baseline, DEFAULT_TOLERANCE);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("no baseline entry"));
    }

    #[test]
    fn internal_checks_enforce_the_batching_claims() {
        let mut rows = vec![
            row("fig2_sor_nohm", true, 100, 10.0),
            row("fig2_sor_nohm", false, 130, 12.0),
        ];
        rows[0].diff_messages = 10;
        rows[1].diff_messages = 40;
        assert!(check_internal(&rows).is_empty());
        // Equal diff counts violate the strict improvement claim.
        rows[0].diff_messages = 40;
        assert_eq!(check_internal(&rows).len(), 1);
        // A checksum mismatch is always an error.
        rows[0].diff_messages = 10;
        rows[0].checksum = 1.0;
        let errors = check_internal(&rows);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("checksum"));
    }

    #[test]
    fn internal_checks_enforce_the_policy_matrix_claims() {
        // A healthy matrix (both modes): NM inert, AT ping-pongs, HYST damps
        // the migrate-backs, the mixed cluster's override migrates.
        let mut rows = Vec::new();
        for batched in [true, false] {
            let mut nohm = row("policy_matrix_nohm", batched, 100, 10.0);
            nohm.migrations = 0;
            let mut at = row("policy_matrix_at", batched, 80, 9.0);
            at.migrations = 20;
            at.migrate_backs = 12;
            let mut hyst = row("policy_matrix_hyst", batched, 70, 8.0);
            hyst.migrations = 2;
            hyst.migrate_backs = 0;
            let mut mixed = row("policy_matrix_mixed", batched, 80, 9.0);
            mixed.migrations = 20;
            let mut ewma = row("policy_matrix_ewma", batched, 85, 9.5);
            ewma.migrations = 10;
            rows.extend([nohm, at, hyst, mixed, ewma]);
        }
        assert!(
            check_internal(&rows).is_empty(),
            "{:?}",
            check_internal(&rows)
        );
        // A migrating NM row, a hysteresis row that ping-pongs as much as
        // adaptive, an inert mixed row and a dead EWMA row are each caught
        // (in one mode).
        rows[0].migrations = 1;
        rows[2].migrate_backs = 12;
        rows[3].migrations = 0;
        rows[4].migrations = 0;
        let errors = check_internal(&rows);
        assert_eq!(errors.len(), 4, "{errors:?}");
        assert!(errors[0].contains("NoMigration migrated"));
        assert!(errors[1].contains("strictly fewer migrate-backs"));
        assert!(errors[2].contains("overrides are not reaching"));
        assert!(errors[3].contains("EWMA policy must migrate"));
        // An adaptive row that never migrated is itself an error.
        rows[0].migrations = 0;
        rows[2].migrate_backs = 0;
        rows[3].migrations = 20;
        rows[4].migrations = 10;
        rows[1].migrations = 0;
        rows[1].migrate_backs = 0;
        let errors = check_internal(&rows);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("must migrate"));
    }

    #[test]
    fn gate_rows_have_stable_keys() {
        assert_eq!(row("a", true, 1, 1.0).key(), "a[batched]");
        assert_eq!(row("a", false, 1, 1.0).key(), "a[unbatched]");
    }
}
