//! Ablation experiments that go beyond the paper's figures:
//!
//! * **Notification mechanism** (§3.2 discussion): forwarding pointer vs.
//!   home manager vs. broadcast, under the synthetic workload.
//! * **Coefficient sensitivity** (§4.2 / Appendix A): forcing the home
//!   access coefficient α to fixed values and varying the feedback
//!   coefficient λ.
//! * **Related-work policies** (§2): the paper's AT against JUMP-style
//!   migrate-on-request and Jackal-style lazy flushing under an adversarial
//!   sequentially-rotating-writer workload.

use crate::table::{fmt_f, Table};
use crate::{cluster, Scale};
use dsm_apps::sor;
use dsm_apps::synthetic::{self, SyntheticParams};
use dsm_core::{MigrationPolicy, NotificationMechanism, ProtocolConfig};
use dsm_net::MsgCategory;

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Which configuration was run.
    pub label: String,
    /// Virtual execution time in milliseconds.
    pub time_ms: f64,
    /// Total messages in the coherence breakdown.
    pub breakdown_messages: u64,
    /// Redirection replies.
    pub redirections: u64,
    /// Notification messages (broadcast / manager posts).
    pub notifications: u64,
    /// Home migrations.
    pub migrations: u64,
}

fn synthetic_params(scale: Scale, repetition: usize, workers: usize) -> SyntheticParams {
    match scale {
        Scale::Small => SyntheticParams {
            repetition,
            total_updates: (repetition * workers * 8) as u64,
            compute_ops: 2_000,
        },
        Scale::Paper => SyntheticParams::paper(repetition, workers),
    }
}

fn run_synthetic(
    label: &str,
    protocol: ProtocolConfig,
    scale: Scale,
    repetition: usize,
) -> AblationPoint {
    let nodes = crate::fig5::nodes(scale);
    let params = synthetic_params(scale, repetition, nodes - 1);
    let run = synthetic::run(cluster(nodes, protocol), &params);
    AblationPoint {
        label: label.to_string(),
        time_ms: run.report.execution_time.as_millis(),
        breakdown_messages: run.report.breakdown_messages(),
        redirections: run.report.messages(MsgCategory::Redirect),
        notifications: run.report.messages(MsgCategory::HomeNotify)
            + run.report.messages(MsgCategory::HomeLookup),
        migrations: run.report.migrations(),
    }
}

/// A1: compare the three new-home notification mechanisms under the
/// synthetic workload at a moderate repetition.
pub fn notification_comparison(scale: Scale) -> Vec<AblationPoint> {
    let repetition = 8;
    vec![
        run_synthetic(
            "forwarding_pointer",
            ProtocolConfig::adaptive().with_notification(NotificationMechanism::ForwardingPointer),
            scale,
            repetition,
        ),
        run_synthetic(
            "home_manager",
            ProtocolConfig::adaptive().with_notification(NotificationMechanism::HomeManager),
            scale,
            repetition,
        ),
        run_synthetic(
            "broadcast",
            ProtocolConfig::adaptive().with_notification(NotificationMechanism::Broadcast),
            scale,
            repetition,
        ),
    ]
}

/// A2: sensitivity of the adaptive protocol to the home access coefficient α
/// and feedback coefficient λ, under the transient (r = 2) synthetic
/// workload where the feedback matters most.
pub fn coefficient_sensitivity(scale: Scale) -> Vec<AblationPoint> {
    let mut points = Vec::new();
    for (label, lambda, alpha) in [
        ("lambda=1, alpha=model", 1.0, None),
        ("lambda=1, alpha=1", 1.0, Some(1.0)),
        ("lambda=1, alpha=8", 1.0, Some(8.0)),
        ("lambda=0.25, alpha=model", 0.25, None),
        ("lambda=4, alpha=model", 4.0, None),
    ] {
        let policy = MigrationPolicy::AdaptiveThreshold {
            lambda,
            initial_threshold: 1.0,
            alpha_override: alpha,
        };
        points.push(run_synthetic(
            label,
            ProtocolConfig::adaptive().with_migration(policy),
            scale,
            2,
        ));
    }
    points
}

/// A3: the paper's adaptive policy against the related-work policies on SOR
/// (a lasting single-writer workload where every reasonable policy should
/// relocate rows) — the interesting column is the redirection/notification
/// overhead each policy pays to get there.
pub fn related_work_comparison(scale: Scale) -> Vec<AblationPoint> {
    let size = match scale {
        Scale::Small => 32,
        Scale::Paper => 512,
    };
    let params = sor::SorParams::small(size, 4);
    let mut points = Vec::new();
    for (label, policy) in [
        ("AT (paper)", MigrationPolicy::adaptive()),
        ("FT2", MigrationPolicy::fixed(2)),
        ("JUMP migrate-on-request", MigrationPolicy::MigrateOnRequest),
        ("Jackal lazy flushing", MigrationPolicy::lazy_flushing()),
        ("No migration", MigrationPolicy::NoMigration),
    ] {
        let run = sor::run(
            cluster(8, ProtocolConfig::adaptive().with_migration(policy)),
            &params,
        );
        points.push(AblationPoint {
            label: label.to_string(),
            time_ms: run.report.execution_time.as_millis(),
            breakdown_messages: run.report.breakdown_messages(),
            redirections: run.report.messages(MsgCategory::Redirect),
            notifications: run.report.messages(MsgCategory::HomeNotify),
            migrations: run.report.migrations(),
        });
    }
    points
}

/// Render ablation points as a table.
pub fn render(points: &[AblationPoint]) -> Table {
    let mut table = Table::new(&[
        "configuration",
        "time_ms",
        "coherence_msgs",
        "redirections",
        "notifications",
        "migrations",
    ]);
    for p in points {
        table.row(vec![
            p.label.clone(),
            fmt_f(p.time_ms),
            p.breakdown_messages.to_string(),
            p.redirections.to_string(),
            p.notifications.to_string(),
            p.migrations.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notification_mechanisms_trade_redirections_for_notifications() {
        let points = notification_comparison(Scale::Small);
        assert_eq!(points.len(), 3);
        let fp = &points[0];
        let bc = &points[2];
        // The forwarding pointer sends no notifications; broadcast does.
        assert_eq!(fp.notifications, 0);
        assert!(bc.notifications > 0);
        assert!(render(&points).len() == 3);
    }

    #[test]
    fn related_work_policies_all_converge_on_sor() {
        let points = related_work_comparison(Scale::Small);
        let at = points.iter().find(|p| p.label.starts_with("AT")).unwrap();
        let nm = points.iter().find(|p| p.label == "No migration").unwrap();
        // The paper's policy must beat the no-migration baseline on coherence
        // traffic; the related-work baselines are reported for comparison and
        // their exact counts depend on scheduling, so only AT is asserted.
        assert!(at.breakdown_messages < nm.breakdown_messages);
        assert!(at.migrations > 0, "AT performed no migrations on SOR");
        assert_eq!(nm.migrations, 0);
    }
}
