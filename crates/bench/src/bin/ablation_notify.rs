//! Ablation A1: new-home notification mechanisms (forwarding pointer vs.
//! home manager vs. broadcast) under the synthetic workload.
//!
//! Usage: `cargo run -p dsm-bench --release --bin ablation_notify [--full]`

use dsm_bench::{ablation, Scale};

fn main() {
    let scale = Scale::from_args();
    let points = ablation::notification_comparison(scale);
    println!("Ablation A1 — notification mechanism comparison (synthetic, r = 8)\n");
    println!("{}", ablation::render(&points).render());
}
