//! Regenerates Figure 5 of the paper: the synthetic single-writer benchmark.
//! Panel (a) normalized execution time and panel (b) normalized message
//! breakdown for NM, FT1, FT2 and AT against the repetition of the
//! single-writer pattern.
//!
//! Usage: `cargo run -p dsm-bench --release --bin fig5 [--full]
//! [--fabric sim --seed N | --fabric tcp]` — the sim fabric makes the whole
//! reproduction replayable seed-exactly; the tcp fabric moves the same
//! traffic over real sockets (the modeled-time figures are unchanged).

use dsm_bench::{fabric_from_args, fabric_note, fig5, Scale};

fn main() {
    let scale = Scale::from_args();
    let fabric = fabric_from_args();
    eprintln!("collecting Figure 5 data at {scale:?} scale on the {fabric:?} fabric ...");
    if let Some(note) = fabric_note(&fabric) {
        eprintln!("{note}");
    }
    let points = fig5::collect_on(scale, &fabric);
    println!(
        "Figure 5(a) — normalized execution time vs. repetition of the single-writer pattern\n"
    );
    println!("{}", fig5::render_times(&points).render());
    println!("Figure 5(b) — normalized message breakdown (obj / mig / diff / redir)\n");
    println!("{}", fig5::render_messages(&points).render());
    println!("shape checks (paper §5.2 observations):");
    for (name, ok) in fig5::shape_holds(&points) {
        println!("  [{}] {}", if ok { "ok" } else { "FAIL" }, name);
    }
    println!(
        "\nCSV (messages):\n{}",
        fig5::render_messages(&points).to_csv()
    );
}
