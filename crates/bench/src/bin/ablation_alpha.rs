//! Ablation A2: sensitivity of the adaptive protocol to the home access
//! coefficient α and the feedback coefficient λ under the transient
//! single-writer pattern (r = 2).
//!
//! Usage: `cargo run -p dsm-bench --release --bin ablation_alpha [--full]`

use dsm_bench::{ablation, gate, Scale};

fn main() {
    let scale = Scale::from_args();
    let points = ablation::coefficient_sensitivity(scale);
    println!("Ablation A2 — home access coefficient / feedback coefficient sensitivity (synthetic, r = 2)\n");
    println!("{}", ablation::render(&points).render());
    println!("\nFlush batching — the ablation's gate workload in both wire modes:\n");
    println!(
        "{}",
        gate::render(&gate::collect_prefixed(scale, "ablation")).render()
    );
}
