//! The benchmark-regression gate binary.
//!
//! Runs the deterministic gate workloads (Figure 2 / Figure 3 SOR and ASP
//! plus the ablation's synthetic pattern) in both flush-batching modes,
//! writes the results as JSON, verifies the batching acceptance claims, and
//! fails if modeled message counts or modeled time regress more than 5 %
//! against the committed `bench/baseline.json`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dsm-bench --release --bin bench_gate [options]
//!   --output PATH           where to write the fresh results
//!                           (default: BENCH_PR.json)
//!   --baseline PATH         baseline to compare against
//!                           (default: bench/baseline.json)
//!   --write-baseline        overwrite the baseline with this run and exit
//!   --tolerance PCT         allowed regression in percent (default: 5)
//!   --full                  paper-scale workloads instead of small ones
//! ```
//!
//! The same entry point runs locally through `scripts/bench_gate.sh`.

use dsm_bench::gate;
use dsm_bench::Scale;
use std::process::ExitCode;

struct Options {
    output: String,
    baseline: String,
    write_baseline: bool,
    tolerance: f64,
}

fn parse_args() -> Options {
    let mut options = Options {
        output: "BENCH_PR.json".to_string(),
        baseline: "bench/baseline.json".to_string(),
        write_baseline: false,
        tolerance: gate::DEFAULT_TOLERANCE,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--output" => options.output = args.next().expect("--output needs a path"),
            "--baseline" => options.baseline = args.next().expect("--baseline needs a path"),
            "--write-baseline" => options.write_baseline = true,
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .expect("--tolerance needs a percentage")
                    .parse()
                    .expect("--tolerance must be a number");
                options.tolerance = pct / 100.0;
            }
            // Scale flags are consumed by Scale::from_args.
            "--full" | "--paper" => {}
            other => panic!("unknown argument {other:?}"),
        }
    }
    options
}

fn main() -> ExitCode {
    let options = parse_args();
    let scale = Scale::from_args();
    eprintln!("collecting gate workloads at {scale:?} scale (both flush-batching modes) ...");
    let rows = gate::collect(scale);

    println!("Benchmark gate — modeled workloads, batched vs. unbatched\n");
    println!("{}", gate::render(&rows).render());

    if options.write_baseline {
        std::fs::write(&options.baseline, gate::to_json(&rows))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", options.baseline));
        println!("baseline written to {}", options.baseline);
        return ExitCode::SUCCESS;
    }

    // The throughput harness shares the output document; keep its sections
    // (throughput *and* the report-only scheduler rows) if the file already
    // has them, so the two gates can run in either order — and salvage
    // whatever a truncated or corrupt file still carries rather than
    // silently dropping the other gate's results.
    let existing = dsm_bench::throughput::read_for_merge(&options.output);
    for warning in &existing.warnings {
        eprintln!("warning: {warning} — keeping the rows that survived");
    }
    let document = if existing.throughput.is_empty() && existing.scheduler.is_empty() {
        gate::to_json(&rows)
    } else {
        dsm_bench::throughput::document_json(&rows, &existing.throughput, &existing.scheduler)
    };
    std::fs::write(&options.output, document)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", options.output));
    println!("results written to {}", options.output);

    let mut failures = gate::check_internal(&rows);
    match std::fs::read_to_string(&options.baseline) {
        Ok(text) => {
            let baseline = gate::parse_json(&text)
                .unwrap_or_else(|e| panic!("cannot parse {}: {e}", options.baseline));
            failures.extend(gate::compare(&rows, &baseline, options.tolerance));
        }
        Err(e) => {
            // A missing baseline is a hard failure in CI: the gate would
            // otherwise silently pass on a branch that deleted it.
            failures.push(format!("cannot read baseline {}: {e}", options.baseline));
        }
    }

    if failures.is_empty() {
        println!("\ngate PASS (tolerance {:.0}%)", options.tolerance * 100.0);
        ExitCode::SUCCESS
    } else {
        eprintln!("\ngate FAIL:");
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        ExitCode::FAILURE
    }
}
