//! Regenerates Figure 2 of the paper: execution time vs. number of
//! processors for ASP, SOR, Nbody and TSP, with and without home migration.
//!
//! Usage: `cargo run -p dsm-bench --release --bin fig2 [--full]
//! [--fabric sim --seed N | --fabric tcp]` — the sim fabric makes the whole
//! reproduction replayable seed-exactly; the tcp fabric moves the same
//! traffic over real sockets (the modeled-time figures are unchanged).

use dsm_bench::{fabric_from_args, fabric_note, fig2, gate, Scale};

fn main() {
    let scale = Scale::from_args();
    let fabric = fabric_from_args();
    eprintln!("collecting Figure 2 data at {scale:?} scale on the {fabric:?} fabric ...");
    if let Some(note) = fabric_note(&fabric) {
        eprintln!("{note}");
    }
    let points = fig2::collect_on(scale, &fabric);
    let table = fig2::render(&points);
    println!("Figure 2 — execution time vs. number of processors (HM = adaptive migration, NoHM = disabled)\n");
    println!("{}", table.render());
    println!(
        "shape check (HM wins on ASP/SOR, neutral on Nbody/TSP): {}",
        fig2::shape_holds(&points)
    );
    println!("\nCSV:\n{}", table.to_csv());
    println!("\nFlush batching — Figure 2's gate workload in both wire modes:\n");
    println!(
        "{}",
        gate::render(&gate::collect_prefixed(scale, "fig2")).render()
    );
}
