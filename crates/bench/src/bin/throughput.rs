//! The wall-clock throughput harness binary.
//!
//! Runs the Zipfian KV serving workload (`dsm_apps::kv`) under every
//! built-in home-migration policy on a real fabric and reports wall-clock
//! ops/sec, p50/p95/p99 per-operation latency, and per-policy migration
//! behaviour (migrations, migrate-backs, redirects per 1k ops). Results are
//! merged into the `throughput` section of `BENCH_PR.json`, next to the
//! modeled gate's `workloads` section.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dsm-bench --release --bin throughput [options]
//!   --gate                  gate mode: the smaller CI op count, plus a
//!                           regression comparison against the committed
//!                           baseline (default mode only checks the
//!                           per-policy sanity invariants)
//!   --output PATH           where to merge the results
//!                           (default: BENCH_PR.json)
//!   --baseline PATH         baseline for --gate comparisons
//!                           (default: bench/throughput_baseline.json)
//!   --write-baseline        overwrite the baseline with this run and exit
//!   --ops N                 override operations per node
//!   --nodes N               cluster size (default: 4)
//!   --seed N                cluster seed (default: 2004; decimal or 0x hex)
//!   --fabric threaded|tcp   fabric to measure on (default: threaded; the
//!                           sim fabric is rejected — it runs on a virtual
//!                           clock, so wall-clock ops/sec is meaningless)
//!   --band FACTOR           allowed ops/sec slowdown factor vs the
//!                           baseline (default: 5)
//!   --tolerance PCT         allowed message growth in percent (default: 25)
//!   --sim-workers N         parallel worker count for the sim-scheduler
//!                           wall-clock comparison rows (default: 4; 1
//!                           skips the comparison)
//! ```
//!
//! `scripts/bench_gate.sh` runs this in `--gate` mode after the modeled
//! gate, so both sections of `BENCH_PR.json` are produced locally by one
//! command.

use dsm_apps::kv::KvParams;
use dsm_bench::{fabric_from_args, throughput};
use dsm_runtime::FabricMode;
use std::process::ExitCode;

struct Options {
    output: String,
    baseline: String,
    write_baseline: bool,
    gate: bool,
    nodes: usize,
    ops: Option<u64>,
    seed: u64,
    band: f64,
    tolerance: f64,
    sim_workers: usize,
}

fn parse_args() -> Options {
    let mut options = Options {
        output: "BENCH_PR.json".to_string(),
        baseline: "bench/throughput_baseline.json".to_string(),
        write_baseline: false,
        gate: false,
        nodes: 4,
        ops: None,
        seed: 2004,
        band: throughput::DEFAULT_WALL_BAND,
        tolerance: throughput::DEFAULT_MESSAGE_TOLERANCE,
        sim_workers: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--output" => options.output = args.next().expect("--output needs a path"),
            "--baseline" => options.baseline = args.next().expect("--baseline needs a path"),
            "--write-baseline" => options.write_baseline = true,
            "--gate" => options.gate = true,
            "--nodes" => {
                options.nodes = args
                    .next()
                    .expect("--nodes needs a count")
                    .parse()
                    .expect("--nodes must be a number");
            }
            "--ops" => {
                options.ops = Some(
                    args.next()
                        .expect("--ops needs a count")
                        .parse()
                        .expect("--ops must be a number"),
                );
            }
            "--seed" => {
                let s = args.next().expect("--seed needs a value");
                options.seed = dsm_util::parse_seed(&s)
                    .unwrap_or_else(|e| panic!("--seed {s:?} is invalid: {e}"));
            }
            "--band" => {
                options.band = args
                    .next()
                    .expect("--band needs a factor")
                    .parse()
                    .expect("--band must be a number");
            }
            "--tolerance" => {
                let pct: f64 = args
                    .next()
                    .expect("--tolerance needs a percentage")
                    .parse()
                    .expect("--tolerance must be a number");
                options.tolerance = pct / 100.0;
            }
            "--sim-workers" => {
                options.sim_workers = args
                    .next()
                    .expect("--sim-workers needs a count")
                    .parse()
                    .expect("--sim-workers must be a number");
            }
            // Consumed by fabric_from_args.
            "--fabric" => {
                args.next();
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    options
}

fn main() -> ExitCode {
    let options = parse_args();
    let fabric = fabric_from_args();
    if matches!(fabric, FabricMode::Sim(_)) {
        panic!(
            "--fabric sim runs on a virtual clock; wall-clock ops/sec is meaningless there — \
             use threaded or tcp"
        );
    }
    let mut params = if options.gate {
        KvParams::gate()
    } else {
        KvParams::serving()
    };
    if let Some(ops) = options.ops {
        params.ops_per_node = ops;
    }
    eprintln!(
        "measuring KV serving throughput: {} nodes, {} ops/node, zipf s={}, {}% writes, \
         {} phases x {} windows, {:?} fabric ...",
        options.nodes,
        params.ops_per_node,
        params.zipf_s,
        params.write_percent,
        params.phases,
        params.windows_per_phase,
        fabric
    );
    let rows = throughput::collect(&params, options.nodes, &fabric, options.seed);

    println!("Throughput serving mode — wall-clock, Zipfian KV workload\n");
    println!("{}", throughput::render(&rows).render());

    // The executor row: the same KV workload under the event-driven
    // executor vs per-node polling threads, on identical seeds. The
    // invariants (equal fingerprints, executor strictly quieter on idle
    // wakeups) are machine-independent, so they gate in every mode; the
    // wall-clock columns are report-only.
    let mut sched_rows =
        throughput::collect_scheduler(&params, options.nodes, &fabric, options.seed);
    println!("Server scheduling — executor vs polling, same workload and seed\n");
    println!("{}", throughput::render_scheduler(&sched_rows).render());

    let mut failures = throughput::check_rows(&rows, &params);
    failures.extend(throughput::check_scheduler(&sched_rows));

    // The sim-scheduler comparison: the conformance-matrix workloads on the
    // virtual-clock fabric, sequential vs parallel frontier scheduling.
    // Fingerprints and event counts gate (worker count must never change
    // the schedule); the wall-clock speedup is report-only.
    if options.sim_workers > 1 {
        let sim_rows = throughput::collect_sim_workers(options.seed, options.sim_workers);
        println!(
            "Sim scheduler — single-worker reference vs {} frontier workers\n",
            options.sim_workers
        );
        println!("{}", throughput::render_scheduler(&sim_rows).render());
        if sim_rows[1].wall_ms > 0.0 {
            println!(
                "sim wall-clock speedup: {:.2}x ({:.1} ms -> {:.1} ms)\n",
                sim_rows[0].wall_ms / sim_rows[1].wall_ms,
                sim_rows[0].wall_ms,
                sim_rows[1].wall_ms
            );
        }
        failures.extend(throughput::check_sim_workers(&sim_rows));
        sched_rows.extend(sim_rows);
    }

    if options.write_baseline {
        // Never commit a baseline that violates its own invariants.
        if !failures.is_empty() {
            eprintln!("refusing to write a baseline from an unhealthy run:");
            for failure in &failures {
                eprintln!("  - {failure}");
            }
            return ExitCode::FAILURE;
        }
        // Scheduler rows are report-only and deliberately excluded from
        // the committed baseline: their wall-clock columns are the most
        // machine-dependent numbers in the harness.
        std::fs::write(
            &options.baseline,
            throughput::document_json(&[], &rows, &[]),
        )
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", options.baseline));
        println!("baseline written to {}", options.baseline);
        return ExitCode::SUCCESS;
    }

    // Merge into the shared document: keep the modeled gate's workloads
    // section if the output file already has one, salvaging whatever a
    // truncated or corrupt file still carries rather than silently
    // dropping the other gate's results.
    let existing = throughput::read_for_merge(&options.output);
    for warning in &existing.warnings {
        eprintln!("warning: {warning} — keeping the rows that survived");
    }
    std::fs::write(
        &options.output,
        throughput::document_json(&existing.workloads, &rows, &sched_rows),
    )
    .unwrap_or_else(|e| panic!("cannot write {}: {e}", options.output));
    println!("results merged into {}", options.output);

    if options.gate {
        match std::fs::read_to_string(&options.baseline) {
            Ok(text) => match throughput::parse_document(&text) {
                Ok((_, baseline)) => failures.extend(throughput::compare(
                    &rows,
                    &baseline,
                    options.band,
                    options.tolerance,
                )),
                Err(e) => failures.push(format!("cannot parse {}: {e}", options.baseline)),
            },
            Err(e) => {
                // A missing baseline is a hard failure in CI: the gate would
                // otherwise silently pass on a branch that deleted it.
                failures.push(format!("cannot read baseline {}: {e}", options.baseline));
            }
        }
    } else {
        println!("(invariants only — run with --gate to compare against the committed baseline)");
    }

    if failures.is_empty() {
        println!("\nthroughput gate PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nthroughput gate FAIL:");
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        ExitCode::FAILURE
    }
}
