//! Ablation A3: the paper's adaptive policy against related-work policies
//! (JUMP migrating-home, Jackal lazy flushing, fixed threshold, none) on the
//! SOR workload.
//!
//! Usage: `cargo run -p dsm-bench --release --bin ablation_related [--full]`

use dsm_bench::{ablation, Scale};

fn main() {
    let scale = Scale::from_args();
    let points = ablation::related_work_comparison(scale);
    println!("Ablation A3 — migration policy comparison on SOR (8 nodes)\n");
    println!("{}", ablation::render(&points).render());
}
