//! Multi-process TCP cluster launcher.
//!
//! Three modes:
//!
//! * **Default (no flags):** in-process conformance — runs the SOR and
//!   synthetic matrix workloads plus this binary's own lock/array workload
//!   on the TCP fabric (N in-process listeners on `127.0.0.1` ephemeral
//!   ports) and on the threaded loopback fabric, and requires bit-identical
//!   result fingerprints. Exits non-zero on any mismatch.
//! * **`--processes N`:** real multi-process mode — spawns N child worker
//!   processes of this same binary, each owning one node of the cluster in
//!   its own address space. The parent collects the children's listener
//!   addresses from their stdout (`ADDR host:port`), broadcasts the full
//!   roster to every child's stdin (`PEERS a0 a1 ...`), waits for the run,
//!   and compares the master child's result fingerprint against an
//!   in-process loopback reference of the same workload.
//! * **`--worker I --nodes N`** (internal): one spawned worker.
//!
//! The workload is deterministic and commutative (every node adds a fixed
//! per-(node, cell, repetition) increment under a global lock, with a
//! barrier per repetition), so its fingerprint is schedule-independent —
//! any divergence is a transport correctness bug, not timing noise.

use dsm_bench::matrix;
use dsm_core::{ProtocolConfig, ProtocolMsg};
use dsm_model::ComputeModel;
use dsm_net::{StatsCollector, TcpConfig, TcpNodeBinding};
use dsm_objspace::{BarrierId, LockId, NodeId};
use dsm_runtime::{ArrayHandle, Cluster, ClusterBuilder, FabricMode, NodeCtx};
use dsm_util::Mutex;
use dsm_wire::ProtocolCodec;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

const CELLS_PER_NODE: usize = 4;
const REPETITIONS: u64 = 6;
const DEFAULT_NODES: usize = 4;

fn fnv(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Build the launcher workload's cluster: one shared u64 array, global
/// lock, adaptive migration. Registration is deterministic, so every
/// process of a multi-process run reconstructs the identical registry.
fn build_cluster(nodes: usize, fabric: FabricMode) -> (ClusterBuilder, ArrayHandle<u64>) {
    let mut builder = Cluster::builder()
        .nodes(nodes)
        .protocol(ProtocolConfig::adaptive())
        .compute(ComputeModel::free())
        .fast_poll()
        .fabric(fabric);
    let cells = builder.register_array::<u64>("tcp_cluster.cells", nodes * CELLS_PER_NODE);
    (builder, cells)
}

/// The per-node application: commutative increments under a global lock,
/// one barrier per repetition, fingerprint read on the master.
fn run_workload(ctx: &NodeCtx, cells: &ArrayHandle<u64>, result: &Mutex<Option<u64>>) {
    let lock = LockId::derive("tcp_cluster.lock");
    let weight = u64::from(ctx.node_id().0) + 1;
    for rep in 0..REPETITIONS {
        ctx.synchronized(lock, || {
            ctx.update(cells, |values| {
                for (i, cell) in values.iter_mut().enumerate() {
                    *cell += weight * (i as u64 + 1) * (rep + 1);
                }
            });
        });
        ctx.barrier(BarrierId(1));
    }
    if ctx.is_master() {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for value in ctx.read(cells) {
            hash = fnv(hash, value);
        }
        *result.lock() = Some(hash);
    }
}

/// Run the launcher workload fully in-process on the given fabric.
fn run_in_process(nodes: usize, fabric: FabricMode) -> u64 {
    let (builder, cells) = build_cluster(nodes, fabric);
    let result = Mutex::new(None);
    builder
        .build()
        .run(|ctx| run_workload(ctx, &cells, &result));
    // The poison-ignoring lock keeps this readable even if a worker thread
    // panicked mid-workload; a missing fingerprint then names that cause
    // instead of dying on a `PoisonError`.
    let fingerprint = result.lock().take();
    fingerprint.expect("no workload fingerprint — the master worker panicked before publishing it")
}

fn value_of<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// One spawned worker: bind, publish the address, learn the roster,
/// connect, run this node's slice of the workload.
fn worker(node: usize, nodes: usize) {
    let (builder, cells) = build_cluster(nodes, FabricMode::Threaded);
    let config = builder.config();
    let stats = StatsCollector::new();
    let binding = TcpNodeBinding::<ProtocolMsg>::bind::<ProtocolCodec>(
        NodeId::from(node),
        nodes,
        config.protocol.network,
        stats.clone(),
        TcpConfig::default(),
    )
    .expect("worker failed to bind a 127.0.0.1 listener");
    let addr = binding.local_addr().expect("listener has a local address");
    println!("ADDR {addr}");
    std::io::stdout().flush().expect("flush ADDR line");

    let stdin = std::io::stdin();
    let mut roster = String::new();
    stdin
        .lock()
        .read_line(&mut roster)
        .expect("read PEERS line");
    let peers: Vec<SocketAddr> = roster
        .trim()
        .strip_prefix("PEERS ")
        .expect("roster line starts with PEERS")
        .split_whitespace()
        .map(|a| a.parse().expect("valid peer address"))
        .collect();
    assert_eq!(peers.len(), nodes, "roster size disagrees with --nodes");

    let endpoint = binding.connect(&peers).expect("mesh connect failed");
    let result = Mutex::new(None);
    let report = builder
        .build()
        .run_tcp_worker(endpoint, stats, |ctx| run_workload(ctx, &cells, &result));
    if let Some(fingerprint) = result.lock().take() {
        println!("FINGERPRINT {fingerprint:#018x}");
    }
    let view = report
        .membership
        .as_ref()
        .expect("TCP worker report carries membership");
    println!(
        "DONE node={node} messages={} peers_alive={}",
        report.total_messages(),
        view.all_alive()
    );
}

/// Parent of a multi-process run: spawn, exchange addresses, compare the
/// distributed fingerprint against the in-process loopback reference.
fn launch(nodes: usize) {
    assert!(nodes >= 2, "--processes needs at least 2 nodes");
    let exe = std::env::current_exe().expect("own executable path");
    let mut children: Vec<(Child, BufReader<std::process::ChildStdout>)> = (0..nodes)
        .map(|node| {
            let mut child = Command::new(&exe)
                .args(["--worker", &node.to_string(), "--nodes", &nodes.to_string()])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn worker process");
            let stdout = BufReader::new(child.stdout.take().expect("worker stdout piped"));
            (child, stdout)
        })
        .collect();

    let mut addrs = Vec::with_capacity(nodes);
    for (node, (_, stdout)) in children.iter_mut().enumerate() {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read worker ADDR line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("worker {node} printed {line:?}, expected ADDR"))
            .to_string();
        addrs.push(addr);
    }
    let roster = format!("PEERS {}\n", addrs.join(" "));
    eprintln!("launcher: {nodes} workers bound, broadcasting roster");
    for (child, _) in children.iter_mut() {
        child
            .stdin
            .as_mut()
            .expect("worker stdin piped")
            .write_all(roster.as_bytes())
            .expect("send roster to worker");
    }

    let mut distributed = None;
    for (node, (mut child, stdout)) in children.into_iter().enumerate() {
        for line in stdout.lines() {
            let line = line.expect("read worker output");
            if let Some(hex) = line.strip_prefix("FINGERPRINT ") {
                distributed =
                    Some(dsm_util::parse_seed(hex).expect("worker printed a valid fingerprint"));
            }
            eprintln!("worker {node}: {line}");
        }
        let status = child.wait().expect("join worker process");
        assert!(status.success(), "worker {node} exited with {status}");
    }
    let distributed = distributed.expect("master worker printed a fingerprint");

    let reference = run_in_process(nodes, FabricMode::Threaded);
    println!("multi-process fingerprint: {distributed:#018x}");
    println!("loopback     fingerprint: {reference:#018x}");
    if distributed == reference {
        println!("conformance: ok ({nodes} processes)");
    } else {
        println!("conformance: FAILED");
        std::process::exit(1);
    }
}

/// In-process conformance: matrix workloads + the launcher workload on the
/// TCP fabric vs. the threaded loopback reference.
fn conformance_in_process() {
    let mut failures = 0usize;
    println!("in-process TCP conformance ({DEFAULT_NODES} nodes, adaptive policy)\n");
    for workload in matrix::workloads() {
        if !matches!(workload.name, "SOR" | "synthetic") {
            continue;
        }
        let reference = workload
            .run(matrix::matrix_cluster(
                ProtocolConfig::adaptive(),
                FabricMode::Threaded,
            ))
            .fingerprint;
        let tcp_run = workload.run(matrix::matrix_cluster(
            ProtocolConfig::adaptive(),
            FabricMode::Tcp(TcpConfig::default()),
        ));
        let ok = tcp_run.fingerprint == reference;
        let membership_ok = tcp_run
            .report
            .membership
            .as_ref()
            .is_some_and(|m| m.all_alive());
        println!(
            "  {:>10}: tcp {:#018x}  loopback {:#018x}  [{}]  membership alive: {}",
            workload.name,
            tcp_run.fingerprint,
            reference,
            if ok { "ok" } else { "MISMATCH" },
            membership_ok,
        );
        failures += usize::from(!ok) + usize::from(!membership_ok);
    }
    let tcp = run_in_process(DEFAULT_NODES, FabricMode::Tcp(TcpConfig::default()));
    let loopback = run_in_process(DEFAULT_NODES, FabricMode::Threaded);
    let ok = tcp == loopback;
    println!(
        "  {:>10}: tcp {:#018x}  loopback {:#018x}  [{}]",
        "launcher",
        tcp,
        loopback,
        if ok { "ok" } else { "MISMATCH" },
    );
    failures += usize::from(!ok);
    if failures > 0 {
        println!("\n{failures} conformance failure(s)");
        std::process::exit(1);
    }
    println!("\nall fingerprints identical across fabrics");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(node) = value_of(&args, "--worker") {
        let node: usize = node.parse().expect("--worker takes a node index");
        let nodes: usize = value_of(&args, "--nodes")
            .expect("--worker requires --nodes")
            .parse()
            .expect("--nodes takes a cluster size");
        worker(node, nodes);
    } else if let Some(n) = value_of(&args, "--processes") {
        launch(n.parse().expect("--processes takes a process count"));
    } else {
        conformance_in_process();
    }
}
