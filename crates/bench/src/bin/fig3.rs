//! Regenerates Figure 3 of the paper: improvement of the adaptive-threshold
//! protocol (AT) over the fixed threshold FT2 against problem size, for ASP
//! and SOR on eight nodes.
//!
//! Usage: `cargo run -p dsm-bench --release --bin fig3 [--full]
//! [--fabric sim --seed N | --fabric tcp]` — the sim fabric makes the whole
//! reproduction replayable seed-exactly; the tcp fabric moves the same
//! traffic over real sockets (the modeled-time figures are unchanged).

use dsm_bench::{fabric_from_args, fabric_note, fig3, gate, Scale};

fn main() {
    let scale = Scale::from_args();
    let fabric = fabric_from_args();
    eprintln!("collecting Figure 3 data at {scale:?} scale on the {fabric:?} fabric ...");
    if let Some(note) = fabric_note(&fabric) {
        eprintln!("{note}");
    }
    let points = fig3::collect_on(scale, &fabric);
    let table = fig3::render(&points);
    println!("Figure 3 — improvement of AT over FT2 against problem size (8 nodes)\n");
    println!("{}", table.render());
    println!(
        "shape check (AT never worse than FT2): {}",
        fig3::shape_holds(&points)
    );
    println!("\nCSV:\n{}", table.to_csv());
    println!("\nFlush batching — Figure 3's gate workloads in both wire modes:\n");
    println!(
        "{}",
        gate::render(&gate::collect_prefixed(scale, "fig3")).render()
    );
}
