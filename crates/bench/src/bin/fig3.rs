//! Regenerates Figure 3 of the paper: improvement of the adaptive-threshold
//! protocol (AT) over the fixed threshold FT2 against problem size, for ASP
//! and SOR on eight nodes.
//!
//! Usage: `cargo run -p dsm-bench --release --bin fig3 [--full]`

use dsm_bench::{fig3, gate, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("collecting Figure 3 data at {scale:?} scale ...");
    let points = fig3::collect(scale);
    let table = fig3::render(&points);
    println!("Figure 3 — improvement of AT over FT2 against problem size (8 nodes)\n");
    println!("{}", table.render());
    println!(
        "shape check (AT never worse than FT2): {}",
        fig3::shape_holds(&points)
    );
    println!("\nCSV:\n{}", table.to_csv());
    println!("\nFlush batching — Figure 3's gate workloads in both wire modes:\n");
    println!(
        "{}",
        gate::render(&gate::collect_prefixed(scale, "fig3")).render()
    );
}
